//! Compares CBG against the commercial-database simulators of §6
//! (MaxMind-free-like and IPinfo-like) on the anchor targets.
//!
//! ```sh
//! cargo run --release -p ipgeo --example compare_databases
//! ```

use geo_model::ip::Prefix24;
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use ipgeo::cbg::{cbg, VpMeasurement};
use ipgeo::dbsim::GeoDatabase;
use net_sim::Network;
use world_sim::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small(Seed(2023))).expect("valid preset");
    let net = Network::new(Seed(2023));
    let prefixes: Vec<Prefix24> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();

    let maxmind = GeoDatabase::maxmind_like(&world, &prefixes, Seed(2023));
    let ipinfo = GeoDatabase::ipinfo_like(&world, &net, &prefixes, Seed(2023));

    // CBG baseline with all sanitized probes.
    let vps: Vec<_> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let mut cbg_errs = Vec::new();
    for &a in &world.anchors {
        let target = world.host(a);
        let ms: Vec<VpMeasurement> = vps
            .iter()
            .filter_map(|&vp| {
                net.ping_min(&world, vp, target.ip, 3, 3)
                    .rtt()
                    .map(|rtt| VpMeasurement {
                        vp,
                        location: world.host(vp).registered_location,
                        rtt,
                    })
            })
            .collect();
        if let Some(r) = cbg(&ms, SpeedOfInternet::CBG) {
            cbg_errs.push(r.estimate.distance(&target.location).value());
        }
    }

    let db_errs = |db: &GeoDatabase| -> Vec<f64> {
        world
            .anchors
            .iter()
            .filter_map(|&a| {
                let h = world.host(a);
                db.lookup(h.ip).map(|p| p.distance(&h.location).value())
            })
            .collect()
    };

    println!("technique            median_km  city_level(<=40km)");
    for (name, errs) in [
        ("CBG (all VPs)", cbg_errs),
        (maxmind.name(), db_errs(&maxmind)),
        (ipinfo.name(), db_errs(&ipinfo)),
    ] {
        println!(
            "{name:<20} {:>8.1}  {:>17.0}%",
            stats::median(&errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(&errs, 40.0)
        );
    }
}
