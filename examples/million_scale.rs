//! The million-scale vantage-point selection (Hu et al., IMC 2012) and
//! the replication's two-step extension, side by side on one target.
//!
//! ```sh
//! cargo run --release -p ipgeo --example million_scale
//! ```

use geo_model::rng::Seed;
use ipgeo::million::{geolocate_with_selection, probe_representatives};
use ipgeo::two_step::{geolocate as two_step, greedy_coverage};
use net_sim::Network;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::small(Seed(7))).expect("valid preset");
    let net = Network::new(Seed(7));
    let vps: Vec<HostId> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let target = world.host(world.anchors[3]);
    println!("target {} in {}", target.ip, world.city(target.city).name);

    // --- Original algorithm: all VPs probe the /24 representatives. ---
    let probe = probe_representatives(&world, &net, &vps, target.ip, 1);
    println!(
        "representatives of {}: {:?}",
        target.ip.prefix24(),
        probe
            .representatives
            .iter()
            .map(|r| r.ip.to_string())
            .collect::<Vec<_>>()
    );
    for k in [1usize, 3, 10] {
        let out = geolocate_with_selection(&world, &net, &probe, target.ip, k, 1);
        let err = out
            .cbg
            .as_ref()
            .map(|r| r.estimate.distance(&target.location).value());
        println!(
            "k={k}: {} measurements, error {:?} km (selected VPs: {:?})",
            out.measurements,
            err.map(|e| (e * 10.0).round() / 10.0),
            out.selected_vps.len()
        );
    }

    // --- Two-step extension (§5.1.4): coverage subset first. ---
    let full_overhead = vps.len() as u64 * 3;
    for s in [10usize, 30, 60] {
        let coverage = greedy_coverage(&world, &vps, s);
        let out = two_step(&world, &net, &coverage, &vps, target.ip, 2);
        let err = out
            .cbg
            .as_ref()
            .map(|r| r.estimate.distance(&target.location).value());
        println!(
            "two-step s={s}: {} measurements ({:.0}% of full {}), {} step-2 candidates, error {:?} km",
            out.measurements,
            100.0 * out.measurements as f64 / full_overhead as f64,
            full_overhead,
            out.step2_candidates,
            err.map(|e| (e * 10.0).round() / 10.0)
        );
    }
}
