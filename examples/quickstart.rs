//! Quickstart: geolocate one IP address with Constraint-Based Geolocation
//! over a simulated measurement platform.
//!
//! ```sh
//! cargo run --release -p ipgeo --example quickstart
//! ```

use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use ipgeo::cbg::{cbg, shortest_ping, VpMeasurement};
use net_sim::Network;
use world_sim::{World, WorldConfig};

fn main() {
    // 1. A deterministic synthetic Internet: cities, ASes, anchors, probes.
    let world = World::generate(WorldConfig::small(Seed(42))).expect("valid preset");
    let net = Network::new(Seed(42));
    println!(
        "world: {} cities, {} ASes, {} anchors, {} probes",
        world.cities.len(),
        world.ases.len(),
        world.anchors.len(),
        world.probes.len()
    );

    // 2. Pick a target (one of the anchors) and ping it from every probe.
    let target = world.host(world.anchors[0]);
    println!("target {} at {}", target.ip, target.location);

    let measurements: Vec<VpMeasurement> = world
        .probes
        .iter()
        .filter(|&&p| !world.host(p).is_mis_geolocated())
        .filter_map(|&vp| {
            net.ping_min(&world, vp, target.ip, 3, 1)
                .rtt()
                .map(|rtt| VpMeasurement {
                    vp,
                    location: world.host(vp).registered_location,
                    rtt,
                })
        })
        .collect();
    println!("{} vantage points answered", measurements.len());

    // 3. Shortest Ping: the lowest-RTT vantage point is the estimate.
    let sp = shortest_ping(&measurements).expect("measurements exist");
    println!(
        "shortest ping: VP {} at {} (rtt {}) -> error {:.1} km",
        sp.vp,
        sp.location,
        sp.rtt,
        sp.location.distance(&target.location).value()
    );

    // 4. CBG: intersect the speed-of-internet constraint circles.
    let result = cbg(&measurements, SpeedOfInternet::CBG).expect("region nonempty");
    println!(
        "CBG: estimate {} (region area {:.0} km², {} active constraints) -> error {:.1} km",
        result.estimate,
        result.region_estimate.area_km2,
        result.region.active_circles().len(),
        result.estimate.distance(&target.location).value()
    );
}
