//! A walkthrough of the street-level three-tier technique (Wang et al.,
//! NSDI 2011) for one target: tier-1 CBG, landmark discovery through the
//! mapping services, `D1 + D2` delays, and the final mapping.
//!
//! ```sh
//! cargo run --release -p ipgeo --example street_level
//! ```

use geo_model::rng::Seed;
use ipgeo::street::{geolocate, StreetConfig};
use net_sim::Network;
use web_sim::ecosystem::{WebConfig, WebEcosystem};
use world_sim::{World, WorldConfig};

fn main() {
    let mut world = World::generate(WorldConfig::small(Seed(99))).expect("valid preset");
    let eco = WebEcosystem::generate(&mut world, &WebConfig::default()).expect("valid web config");
    let net = Network::new(Seed(99));
    println!(
        "web ecosystem: {} entities, {} websites",
        eco.entities.len(),
        eco.websites.len()
    );

    let target = world.anchors[2];
    let target_host = world.host(target).clone();
    let vps: Vec<_> = world
        .anchors
        .iter()
        .copied()
        .filter(|&a| a != target && !world.host(a).is_mis_geolocated())
        .collect();

    let out = geolocate(
        &world,
        &net,
        &eco,
        &vps,
        target,
        &StreetConfig::default(),
        0,
    );

    if let Some(t1) = &out.tier1 {
        println!(
            "tier 1: CBG centroid {} ({}), error {:.1} km",
            t1.estimate,
            if out.used_fallback_soi {
                "2/3c fallback"
            } else {
                "4/9c"
            },
            t1.estimate.distance(&target_host.location).value()
        );
    }
    println!(
        "tiers 2+3: {} mapping queries, {} locality tests, {} landmarks, {} traceroutes",
        out.mapping_queries,
        out.locality_tests,
        out.landmarks.len(),
        out.traceroutes
    );
    let unusable = out
        .landmarks
        .iter()
        .filter(|l| l.delay_ms.is_none_or(|d| d < 0.0))
        .count();
    println!(
        "{unusable}/{} landmarks have no usable D1+D2 delay",
        out.landmarks.len()
    );
    match (out.estimate, out.chosen_landmark) {
        (Some(est), Some(lm)) => println!(
            "final: mapped to landmark {:?} at {} -> error {:.1} km (virtual time {:.0} s)",
            lm,
            est,
            est.distance(&target_host.location).value(),
            out.virtual_secs
        ),
        (Some(est), None) => println!(
            "final: centroid fallback {} -> error {:.1} km (virtual time {:.0} s)",
            est,
            est.distance(&target_host.location).value(),
            out.virtual_secs
        ),
        _ => println!("tier 1 failed; no estimate"),
    }
}
