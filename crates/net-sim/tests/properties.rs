//! Property-based tests for the network simulator's invariants.

use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use net_sim::route::{synthesize, Endpoint};
use net_sim::{NetParams, Network, PingOutcome};
use proptest::prelude::*;
use world_sim::{World, WorldConfig};

fn world() -> &'static (World, Network) {
    use std::sync::OnceLock;
    static W: OnceLock<(World, Network)> = OnceLock::new();
    W.get_or_init(|| {
        let w = World::generate(WorldConfig::small(Seed(3001))).expect("world");
        let net = Network::new(Seed(3001));
        (w, net)
    })
}

proptest! {
    /// The foundation of CBG soundness: no measured RTT is ever faster
    /// than 2/3 c over the true geodesic.
    #[test]
    fn rtt_respects_speed_of_internet(
        probe_sel in 0usize..200,
        anchor_sel in 0usize..25,
        nonce in 0u64..1000,
    ) {
        let (w, net) = world();
        let src = w.probes[probe_sel % w.probes.len()];
        let dst = w.host(w.anchors[anchor_sel % w.anchors.len()]).clone();
        if let PingOutcome::Reply(rtt) = net.ping(w, src, dst.ip, nonce) {
            let dist = w.host(src).location.distance(&dst.location);
            prop_assert!(
                !SpeedOfInternet::CBG.violates(dist, rtt),
                "SOI violation: {dist} in {rtt}"
            );
        }
    }

    /// Measurements are a pure function of (seed, src, dst, nonce).
    #[test]
    fn ping_is_deterministic(
        probe_sel in 0usize..200,
        anchor_sel in 0usize..25,
        nonce in 0u64..1000,
    ) {
        let (w, net) = world();
        let src = w.probes[probe_sel % w.probes.len()];
        let dst = w.host(w.anchors[anchor_sel % w.anchors.len()]).ip;
        prop_assert_eq!(net.ping(w, src, dst, nonce), net.ping(w, src, dst, nonce));
    }

    /// `ping_min` over n packets never exceeds any individual packet.
    #[test]
    fn ping_min_is_minimum(
        probe_sel in 0usize..100,
        anchor_sel in 0usize..25,
    ) {
        let (w, net) = world();
        let src = w.probes[probe_sel % w.probes.len()];
        let dst = w.host(w.anchors[anchor_sel % w.anchors.len()]).ip;
        let single = net.ping_min(w, src, dst, 1, 9);
        let many = net.ping_min(w, src, dst, 8, 9);
        if let (PingOutcome::Reply(m), PingOutcome::Reply(s)) = (many, single) {
            prop_assert!(m <= s, "min of 8 ({m}) exceeds min of 1 ({s})");
        }
    }

    /// Paths are short (the synthesizer never builds more than 6 hops)
    /// and begin at the source's attachment PoP.
    #[test]
    fn paths_are_short_and_anchored(
        a_sel in 0usize..200,
        b_sel in 0usize..200,
    ) {
        let (w, net) = world();
        let a = w.probes[a_sel % w.probes.len()];
        let b = w.probes[b_sel % w.probes.len()];
        if a == b {
            return Ok(());
        }
        let path = synthesize(w, net.params(), Endpoint::Host(a), Endpoint::Host(b));
        prop_assert!(path.len() <= 6, "path too long: {}", path.len());
        prop_assert!(!path.waypoints.is_empty());
        let first = path.waypoints[0];
        prop_assert_eq!(first.asn, w.host(a).asn);
        prop_assert_eq!(first.city, w.host(a).city);
        let last = path.waypoints.last().expect("non-empty");
        prop_assert_eq!(last.city, w.host(b).city);
        for win in path.waypoints.windows(2) {
            prop_assert_ne!(win[0], win[1], "consecutive duplicate waypoint");
        }
    }

    /// Traceroute hops follow the forward path, and every answered hop
    /// reports a strictly positive RTT.
    #[test]
    fn traceroute_hops_are_positive(
        probe_sel in 0usize..100,
        anchor_sel in 0usize..25,
        nonce in 0u64..500,
    ) {
        let (w, net) = world();
        let src = w.probes[probe_sel % w.probes.len()];
        let dst = w.host(w.anchors[anchor_sel % w.anchors.len()]).ip;
        let tr = net.traceroute(w, src, dst, nonce);
        for hop in &tr.hops {
            if let Some(rtt) = hop.rtt {
                prop_assert!(rtt.value() > 0.0);
            }
        }
        if let Some(rtt) = tr.dst_rtt {
            prop_assert!(rtt.value() > 0.0);
        }
    }

    /// A fully symmetric configuration produces identical transit picks in
    /// both directions for every AS pair.
    #[test]
    fn zero_asymmetry_is_symmetric(a_sel in 0usize..60, b_sel in 0usize..60) {
        let (w, _) = world();
        let p = NetParams {
            asymmetry_rate: 0.0,
            ..NetParams::default()
        };
        let a = w.ases[a_sel % w.ases.len()].id;
        let b = w.ases[b_sel % w.ases.len()].id;
        prop_assert_eq!(
            net_sim::route::pick_transit(w, &p, a, b),
            net_sim::route::pick_transit(w, &p, b, a)
        );
    }
}
