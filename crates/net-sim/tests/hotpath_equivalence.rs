//! Pair-by-pair bit-equivalence of the memoized hot path
//! ([`net_sim::hotpath`]) against the reference implementation
//! (`route::synthesize` + `delay::one_way_delay` + per-packet noise).
//!
//! The end-to-end digests live in `crates/core/tests/hotpath_equivalence.rs`;
//! this test localizes any drift to the exact primitive that diverged.

use geo_model::rng::{splitmix64, Seed};
use net_sim::measure;
use net_sim::route::{synthesize, Endpoint};
use net_sim::{delay, Network, NoiseModel, RouteCache};
use world_sim::{World, WorldConfig};

fn world() -> World {
    World::generate(WorldConfig::small(Seed(351))).unwrap()
}

#[test]
fn shapes_match_synthesize() {
    let w = world();
    let net = Network::new(Seed(351));
    let cache = RouteCache::new(net.params());
    let mut host_pairs = 0;
    let mut router_pairs = 0;
    for i in 0..w.probes.len().min(120) {
        for j in 0..w.anchors.len().min(40) {
            let src = Endpoint::Host(w.probes[i]);
            let dst = Endpoint::Host(w.anchors[j]);
            for (a, b) in [(src, dst), (dst, src)] {
                let slow = synthesize(&w, net.params(), a, b);
                let fast = cache.shape(&w, net.params(), a, b);
                let slow_wps: Vec<_> = slow.waypoints.iter().map(|wp| (wp.asn, wp.city)).collect();
                assert_eq!(fast.waypoints(), &slow_wps[..], "{a:?} -> {b:?}");
                host_pairs += 1;
            }
            // Router-sourced reverse paths (traceroute semantics).
            let h = w.host(w.anchors[j]);
            let router = Endpoint::Router(h.asn, h.city);
            let slow = synthesize(&w, net.params(), router, src);
            let fast = cache.shape(&w, net.params(), router, src);
            let slow_wps: Vec<_> = slow.waypoints.iter().map(|wp| (wp.asn, wp.city)).collect();
            assert_eq!(fast.waypoints(), &slow_wps[..], "{router:?} -> {src:?}");
            router_pairs += 1;
        }
    }
    assert!(host_pairs > 1000 && router_pairs > 500);
}

#[test]
fn one_way_and_base_rtt_bits_match() {
    let w = world();
    let net = Network::new(Seed(351));
    let cache = RouteCache::new(net.params());
    for i in 0..w.probes.len().min(150) {
        let src = w.probes[i];
        let dst = w.anchors[i % w.anchors.len()];
        // Full base RTT, both through a cold cache and replayed warm.
        for _ in 0..2 {
            let fast = cache.base_rtt_ms(&w, net.params(), src, dst);
            let slow = measure::base_rtt(&w, net.params(), src, dst).value();
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "base_rtt bits diverged for {src:?} -> {dst:?}: {fast} vs {slow}"
            );
        }
        // Each direction's one-way delay separately.
        for (a, b) in [
            (Endpoint::Host(src), Endpoint::Host(dst)),
            (Endpoint::Host(dst), Endpoint::Host(src)),
        ] {
            let shape = cache.shape(&w, net.params(), a, b);
            let fast = cache.one_way_ms(&w, net.params(), a, b, &shape);
            let slow =
                delay::one_way_delay(&w, net.params(), &synthesize(&w, net.params(), a, b)).value();
            assert_eq!(fast.to_bits(), slow.to_bits());
        }
        // Router-sourced one-way delay (reverse path from a hop).
        let h = w.host(dst);
        let rev_src = Endpoint::Router(h.asn, h.city);
        let shape = cache.shape(&w, net.params(), rev_src, Endpoint::Host(src));
        let fast = cache.one_way_ms(&w, net.params(), rev_src, Endpoint::Host(src), &shape);
        let slow = delay::one_way_delay(
            &w,
            net.params(),
            &synthesize(&w, net.params(), rev_src, Endpoint::Host(src)),
        )
        .value();
        assert_eq!(fast.to_bits(), slow.to_bits());
    }
}

#[test]
fn cumulative_delays_match() {
    let w = world();
    let net = Network::new(Seed(351));
    let cache = RouteCache::new(net.params());
    let mut buf = Vec::new();
    for i in 0..w.probes.len().min(80) {
        let src = Endpoint::Host(w.probes[i]);
        let dst = Endpoint::Host(w.anchors[i % w.anchors.len()]);
        let shape = cache.shape(&w, net.params(), src, dst);
        cache.cumulative_ms(&w, net.params(), src, &shape, &mut buf);
        let slow =
            delay::cumulative_delays(&w, net.params(), &synthesize(&w, net.params(), src, dst));
        assert_eq!(buf.len(), slow.len());
        for (f, s) in buf.iter().zip(&slow) {
            assert_eq!(f.value().to_bits(), s.value().to_bits());
        }
    }
}

#[test]
fn noise_model_matches_reference_packets() {
    let w = world();
    let net = Network::new(Seed(351));
    let noise = NoiseModel::new(net.params());
    for i in 0..w.probes.len().min(200) {
        let src = w.probes[i];
        let dst_host = w.host(w.anchors[i % w.anchors.len()]);
        let base = measure::base_rtt(&w, net.params(), src, dst_host.id);
        let nonce = 0xC0FFEE ^ i as u64;
        let slow = measure::ping_min_with_base(
            &w,
            net.params(),
            net.seed(),
            src,
            dst_host.ip,
            dst_host.id,
            base,
            3,
            nonce,
        );
        let fast = noise.ping_min(
            net.seed(),
            src,
            dst_host.ip,
            w.host(src).last_mile,
            dst_host.last_mile,
            base,
            3,
            nonce,
        );
        assert_eq!(fast, slow, "ping_min diverged for pair {i}");
    }
}

#[test]
fn network_ping_and_traceroute_match_reference() {
    let w = world();
    let net = Network::new(Seed(351));
    for i in 0..w.probes.len().min(100) {
        let src = w.probes[i];
        let dst = w.host(w.anchors[i % w.anchors.len()]).ip;
        let nonce = 0xBEEF ^ i as u64;
        assert_eq!(
            net.ping(&w, src, dst, nonce),
            measure::ping(&w, net.params(), net.seed(), src, dst, nonce)
        );
        assert_eq!(
            net.ping_min(&w, src, dst, 3, nonce),
            measure::ping_min(&w, net.params(), net.seed(), src, dst, 3, nonce)
        );
        assert_eq!(
            net.ping_min_once(&w, src, dst, 3, nonce),
            measure::ping_min(&w, net.params(), net.seed(), src, dst, 3, nonce)
        );
        assert_eq!(
            net.traceroute(&w, src, dst, nonce),
            measure::traceroute(&w, net.params(), net.seed(), src, dst, nonce)
        );
    }
    // Traceroute corner cases: unrouted prefix, allocated-but-unresponsive.
    let unrouted = geo_model::ip::Ipv4::from_octets(250, 1, 2, 3);
    assert_eq!(
        net.traceroute(&w, w.probes[0], unrouted, 1),
        measure::traceroute(&w, net.params(), net.seed(), w.probes[0], unrouted, 1)
    );
    let ghost = w.host(w.anchors[0]).ip.prefix24().host(251);
    assert!(w.host_by_ip(ghost).is_none());
    assert_eq!(
        net.traceroute(&w, w.probes[0], ghost, splitmix64(7)),
        measure::traceroute(
            &w,
            net.params(),
            net.seed(),
            w.probes[0],
            ghost,
            splitmix64(7)
        )
    );
}
