//! Measurement primitives: ping and traceroute.
//!
//! A ping's RTT composes the forward and reverse one-way path delays with
//! both endpoints' last-mile contributions and a per-packet jitter. A
//! traceroute reports, for each hop on the *forward* path, the cumulative
//! forward delay plus the delay of the *reverse path from that hop* — the
//! destination-based-routing semantics that Appendix B of the replication
//! identifies as the reason `D1 + D2` cannot be computed reliably.

use crate::delay;
use crate::params::NetParams;
use crate::route::{synthesize, Endpoint, Waypoint};
use geo_model::ip::Ipv4;
use geo_model::rng::{fnv1a, splitmix64, Seed};
use geo_model::units::Ms;
use world_sim::ids::HostId;
use world_sim::World;

/// Outcome of one ping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PingOutcome {
    /// The target answered with this round-trip time.
    Reply(Ms),
    /// No answer (packet loss or unresponsive address).
    Timeout,
}

impl PingOutcome {
    /// The RTT, if the target answered.
    pub fn rtt(&self) -> Option<Ms> {
        match self {
            PingOutcome::Reply(ms) => Some(*ms),
            PingOutcome::Timeout => None,
        }
    }
}

/// One traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// The router at this hop.
    pub waypoint: Waypoint,
    /// Round-trip time to this hop, `None` if the router did not answer.
    pub rtt: Option<Ms>,
}

/// A complete traceroute.
#[derive(Debug, Clone, PartialEq)]
pub struct Traceroute {
    /// The source host.
    pub src: HostId,
    /// The probed address.
    pub dst: Ipv4,
    /// Hops along the forward path.
    pub hops: Vec<Hop>,
    /// RTT of the final destination answer, if it answered.
    pub dst_rtt: Option<Ms>,
}

impl Traceroute {
    /// True if the destination answered.
    pub fn reached(&self) -> bool {
        self.dst_rtt.is_some()
    }

    /// The last hop shared with another traceroute from the same source
    /// (compared by router identity), with its index in `self.hops`.
    /// This is the street-level paper's "last common router R1".
    pub fn last_common_hop(&self, other: &Traceroute) -> Option<(usize, Waypoint)> {
        let mut last = None;
        for (i, hop) in self.hops.iter().enumerate() {
            if other.hops.iter().any(|h| h.waypoint == hop.waypoint) {
                last = Some((i, hop.waypoint));
            }
        }
        last
    }
}

/// A stable measurement key mixing endpoints and nonce.
pub(crate) fn measurement_key(src: HostId, dst: Ipv4, nonce: u64) -> u64 {
    splitmix64((src.0 as u64) << 32 ^ dst.0 as u64 ^ splitmix64(nonce ^ fnv1a(b"measurement")))
}

/// Deterministic round-trip time between two hosts: forward plus reverse
/// one-way delay, no jitter, loss or last-mile. The bulk-cacheable part.
pub fn base_rtt(world: &World, params: &NetParams, src: HostId, dst: HostId) -> Ms {
    let fwd = synthesize(world, params, Endpoint::Host(src), Endpoint::Host(dst));
    let rev = synthesize(world, params, Endpoint::Host(dst), Endpoint::Host(src));
    delay::one_way_delay(world, params, &fwd) + delay::one_way_delay(world, params, &rev)
}

/// The per-packet noise on top of a known base RTT: loss decision, both
/// last-mile samples, and jitter.
fn packet_outcome(
    world: &World,
    params: &NetParams,
    seed: Seed,
    src: HostId,
    dst_host: HostId,
    base: Ms,
    key: u64,
) -> PingOutcome {
    if delay::unit_sample(seed, key, "loss") < params.loss_rate {
        return PingOutcome::Timeout;
    }
    let src_lm = delay::last_mile(params, world.host(src).last_mile, seed, key ^ 0x51);
    let dst_lm = delay::last_mile(params, world.host(dst_host).last_mile, seed, key ^ 0xD5);
    let j = delay::jitter(params, seed, key);
    PingOutcome::Reply(base + src_lm + dst_lm + j)
}

/// One ping packet.
pub fn ping(
    world: &World,
    params: &NetParams,
    seed: Seed,
    src: HostId,
    dst: Ipv4,
    nonce: u64,
) -> PingOutcome {
    let Some(dst_host) = world.host_by_ip(dst) else {
        return PingOutcome::Timeout;
    };
    let base = base_rtt(world, params, src, dst_host.id);
    ping_with_base(world, params, seed, src, dst, dst_host.id, base, nonce)
}

/// [`ping`] with a precomputed base RTT — the cached fast path.
#[allow(clippy::too_many_arguments)]
pub fn ping_with_base(
    world: &World,
    params: &NetParams,
    seed: Seed,
    src: HostId,
    dst: Ipv4,
    dst_host: HostId,
    base: Ms,
    nonce: u64,
) -> PingOutcome {
    let key = measurement_key(src, dst, nonce);
    packet_outcome(world, params, seed, src, dst_host, base, key)
}

/// Minimum RTT over `count` packets (RIPE Atlas ping semantics). The
/// deterministic base RTT is computed once; only the noise varies per
/// packet.
pub fn ping_min(
    world: &World,
    params: &NetParams,
    seed: Seed,
    src: HostId,
    dst: Ipv4,
    count: usize,
    nonce: u64,
) -> PingOutcome {
    let Some(dst_host) = world.host_by_ip(dst) else {
        return PingOutcome::Timeout;
    };
    let dst_id = dst_host.id;
    let base = base_rtt(world, params, src, dst_id);
    ping_min_with_base(world, params, seed, src, dst, dst_id, base, count, nonce)
}

/// [`ping_min`] with a precomputed base RTT — the bulk-campaign fast path.
#[allow(clippy::too_many_arguments)]
pub fn ping_min_with_base(
    world: &World,
    params: &NetParams,
    seed: Seed,
    src: HostId,
    dst: Ipv4,
    dst_host: HostId,
    base: Ms,
    count: usize,
    nonce: u64,
) -> PingOutcome {
    let mut best: Option<Ms> = None;
    for i in 0..count {
        let key = measurement_key(src, dst, splitmix64(nonce ^ i as u64));
        if let PingOutcome::Reply(ms) =
            packet_outcome(world, params, seed, src, dst_host, base, key)
        {
            best = Some(match best {
                Some(b) => b.min(ms),
                None => ms,
            });
        }
    }
    match best {
        Some(ms) => PingOutcome::Reply(ms),
        None => PingOutcome::Timeout,
    }
}

/// A traceroute from `src` to `dst`.
pub fn traceroute(
    world: &World,
    params: &NetParams,
    seed: Seed,
    src: HostId,
    dst: Ipv4,
    nonce: u64,
) -> Traceroute {
    let dst_host = world.host_by_ip(dst);
    let key = measurement_key(src, dst, splitmix64(nonce ^ fnv1a(b"traceroute")));

    // Forward path: to the host if it exists, else toward the prefix's PoP
    // (the route exists even when the address does not answer).
    let fwd_dst = match dst_host {
        Some(h) => Endpoint::Host(h.id),
        None => match world.plan.owner(dst.prefix24()) {
            Some((asn, city)) => Endpoint::Router(asn, city),
            None => {
                // Unrouted address: no hops at all.
                return Traceroute {
                    src,
                    dst,
                    hops: Vec::new(),
                    dst_rtt: None,
                };
            }
        },
    };
    let fwd = synthesize(world, params, Endpoint::Host(src), fwd_dst);
    let cumulative = delay::cumulative_delays(world, params, &fwd);
    let src_lm_key = key ^ 0x17;

    let mut hops = Vec::with_capacity(fwd.waypoints.len());
    for (i, wp) in fwd.waypoints.iter().enumerate() {
        let hop_key = splitmix64(key ^ (i as u64 + 1));
        let responds =
            delay::unit_sample(seed, hop_key, "hop-responds") >= params.hop_unresponsive_rate;
        let rtt = if responds {
            // Reverse path *from this router* to the source.
            let rev = synthesize(
                world,
                params,
                Endpoint::Router(wp.asn, wp.city),
                Endpoint::Host(src),
            );
            let rev_delay = delay::one_way_delay(world, params, &rev);
            let j = delay::jitter(params, seed, hop_key);
            let lm = delay::last_mile(params, world.host(src).last_mile, seed, src_lm_key);
            let slowpath = delay::icmp_slowpath(params, seed, hop_key);
            Some(cumulative[i] + rev_delay + j + lm + slowpath)
        } else {
            None
        };
        hops.push(Hop { waypoint: *wp, rtt });
    }

    let dst_rtt = match dst_host {
        Some(h) => ping(world, params, seed, src, dst, splitmix64(nonce ^ 0xF1))
            .rtt()
            .inspect(|_ms| {
                let _ = h;
            }),
        None => None,
    };

    Traceroute {
        src,
        dst,
        hops,
        dst_rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::soi::SpeedOfInternet;
    use world_sim::{World, WorldConfig};

    fn setup() -> (World, NetParams, Seed) {
        let w = World::generate(WorldConfig::small(Seed(101))).unwrap();
        (w, NetParams::default(), Seed(101))
    }

    #[test]
    fn ping_replies_are_deterministic() {
        let (w, p, s) = setup();
        let src = w.probes[0];
        let dst = w.host(w.anchors[0]).ip;
        assert_eq!(ping(&w, &p, s, src, dst, 1), ping(&w, &p, s, src, dst, 1));
    }

    #[test]
    fn ping_to_unknown_address_times_out() {
        let (w, p, s) = setup();
        let src = w.probes[0];
        assert_eq!(
            ping(&w, &p, s, src, Ipv4::from_octets(240, 0, 0, 1), 1),
            PingOutcome::Timeout
        );
    }

    #[test]
    fn rtt_never_violates_speed_of_internet() {
        // The foundation of CBG soundness at 2/3 c.
        let (w, p, s) = setup();
        let soi = SpeedOfInternet::CBG;
        for i in 0..w.probes.len().min(40) {
            for j in 0..w.anchors.len().min(10) {
                let src = w.probes[i];
                let dst_host = w.host(w.anchors[j]);
                if let PingOutcome::Reply(rtt) = ping(&w, &p, s, src, dst_host.ip, 3) {
                    let dist = w.host(src).location.distance(&dst_host.location);
                    assert!(!soi.violates(dist, rtt), "SOI violation: {dist} in {rtt}");
                }
            }
        }
    }

    #[test]
    fn ping_min_improves_on_singles() {
        let (w, p, s) = setup();
        let src = w.probes[1];
        let dst = w.host(w.anchors[1]).ip;
        if let PingOutcome::Reply(min) = ping_min(&w, &p, s, src, dst, 5, 7) {
            for i in 0..5u64 {
                if let PingOutcome::Reply(one) = ping(&w, &p, s, src, dst, splitmix64(7 ^ i)) {
                    assert!(min <= one);
                }
            }
        } else {
            panic!("all five packets lost is wildly improbable");
        }
    }

    #[test]
    fn close_pairs_have_small_rtt() {
        let (w, p, s) = setup();
        // Find a probe/anchor pair in the same city.
        let pair = w.probes.iter().find_map(|&pid| {
            let ph = w.host(pid);
            w.anchors.iter().find_map(|&aid| {
                let ah = w.host(aid);
                (ah.city == ph.city).then_some((pid, ah.ip))
            })
        });
        if let Some((src, dst)) = pair {
            if let PingOutcome::Reply(rtt) = ping_min(&w, &p, s, src, dst, 3, 1) {
                assert!(
                    rtt.value() < 25.0,
                    "same-city RTT suspiciously large: {rtt}"
                );
            }
        }
    }

    #[test]
    fn traceroute_hops_match_forward_path() {
        let (w, p, s) = setup();
        let src = w.probes[2];
        let dst_host = w.host(w.anchors[2]);
        let tr = traceroute(&w, &p, s, src, dst_host.ip, 1);
        assert!(!tr.hops.is_empty());
        let fwd = synthesize(&w, &p, Endpoint::Host(src), Endpoint::Host(dst_host.id));
        assert_eq!(tr.hops.len(), fwd.waypoints.len());
        for (hop, wp) in tr.hops.iter().zip(&fwd.waypoints) {
            assert_eq!(hop.waypoint, *wp);
        }
        assert!(tr.reached());
    }

    #[test]
    fn traceroute_to_unrouted_prefix_is_empty() {
        let (w, p, s) = setup();
        let tr = traceroute(&w, &p, s, w.probes[0], Ipv4::from_octets(250, 1, 2, 3), 1);
        assert!(tr.hops.is_empty());
        assert!(!tr.reached());
    }

    #[test]
    fn traceroute_to_unresponsive_address_still_has_hops() {
        let (w, p, s) = setup();
        // An address inside an allocated prefix with no host behind it.
        let anchor = w.host(w.anchors[0]);
        let ghost = anchor.ip.prefix24().host(251);
        assert!(w.host_by_ip(ghost).is_none());
        let tr = traceroute(&w, &p, s, w.probes[0], ghost, 1);
        assert!(!tr.hops.is_empty());
        assert!(!tr.reached());
    }

    #[test]
    fn some_hops_are_unresponsive() {
        let (w, p, s) = setup();
        let mut answered = 0;
        let mut silent = 0;
        for i in 0..w.probes.len().min(60) {
            let tr = traceroute(&w, &p, s, w.probes[i], w.host(w.anchors[0]).ip, 1);
            for h in &tr.hops {
                if h.rtt.is_some() {
                    answered += 1;
                } else {
                    silent += 1;
                }
            }
        }
        assert!(answered > 0);
        assert!(silent > 0, "expected some unresponsive hops");
    }

    #[test]
    fn last_common_hop_detection() {
        let (w, p, s) = setup();
        let src = w.probes[3];
        // Two anchors in the same city share most of the path from a
        // distant probe.
        let t1 = traceroute(&w, &p, s, src, w.host(w.anchors[0]).ip, 1);
        let t2 = traceroute(&w, &p, s, src, w.host(w.anchors[1]).ip, 1);
        if let Some((i, wp)) = t1.last_common_hop(&t2) {
            assert!(i < t1.hops.len());
            assert!(t2.hops.iter().any(|h| h.waypoint == wp));
        }
        // First hop (the source PoP) is always shared with itself.
        assert!(t1.last_common_hop(&t1).is_some());
    }
}
