//! Delay composition: link propagation, router processing, jitter and
//! last-mile sampling.
//!
//! Every delay is a pure function of the world, the parameters, and a
//! 64-bit key derived from (seed, endpoints, nonce) — no global state.

use crate::params::NetParams;
use crate::route::{Endpoint, Path, Waypoint};
use geo_model::distr::{LogNormal, Sample};
use geo_model::point::GeoPoint;
use geo_model::rng::{fnv1a, splitmix64, KeyRng, Seed};
use geo_model::units::{Km, Ms};
use world_sim::host::LastMile;
use world_sim::World;

/// Threshold below which a link is "metro" and gets the local-loop detour.
const METRO_LINK_KM: f64 = 30.0;

/// Deterministic cable-inflation factor for a link, from its key and the
/// link distance. Short-haul paths inflate far more than long-haul ones
/// (local detours dominate short links; submarine cables approach the
/// geodesic) — the reason the street-level paper could afford the 4/9 c
/// conversion: at the distances its landmarks live at, real RTTs carry
/// roughly twice the geodesic propagation time.
fn inflation(params: &NetParams, dist_km: f64, key: u64) -> f64 {
    let h = splitmix64(key ^ fnv1a(b"cable"));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let base =
        params.cable_inflation_min + u * (params.cable_inflation_max - params.cable_inflation_min);
    let u2 = ((splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64) * 0.5 + 0.5;
    base + params.short_haul_inflation * u2 * (-dist_km / 800.0).exp()
}

/// One-way delay of a single link between two physical locations.
pub fn link_delay(params: &NetParams, a: &GeoPoint, b: &GeoPoint, key: u64) -> Ms {
    let dist: Km = a.distance(b);
    let mut ms = dist.value() * inflation(params, dist.value(), key) / params.km_per_ms();
    if dist.value() < METRO_LINK_KM {
        ms += params.metro_detour_ms;
    }
    Ms(ms)
}

/// Resolves an endpoint's physical location.
pub fn endpoint_location(world: &World, ep: Endpoint) -> GeoPoint {
    match ep {
        Endpoint::Host(id) => world.host(id).location,
        Endpoint::Router(asn, city) => Waypoint { asn, city }.location(world),
    }
}

/// A stable key for the link between two abstract link endpoints.
pub(crate) fn link_key(a_tag: u64, b_tag: u64) -> u64 {
    // Symmetric: the same cable is used in both directions.
    let (lo, hi) = if a_tag <= b_tag {
        (a_tag, b_tag)
    } else {
        (b_tag, a_tag)
    };
    splitmix64(lo ^ splitmix64(hi))
}

pub(crate) fn endpoint_tag(ep: Endpoint) -> u64 {
    match ep {
        Endpoint::Host(id) => splitmix64(id.0 as u64 ^ fnv1a(b"host-tag")),
        Endpoint::Router(asn, city) => {
            splitmix64(((asn.0 as u64) << 32 | city.0 as u64) ^ fnv1a(b"router-tag"))
        }
    }
}

pub(crate) fn waypoint_tag(wp: &Waypoint) -> u64 {
    endpoint_tag(Endpoint::Router(wp.asn, wp.city))
}

/// Deterministic one-way delay along a path: link propagation plus
/// per-router processing. No jitter, no last-mile.
pub fn one_way_delay(world: &World, params: &NetParams, path: &Path) -> Ms {
    let mut total = Ms::ZERO;
    let mut prev_loc = endpoint_location(world, path.src);
    let mut prev_tag = endpoint_tag(path.src);
    for wp in &path.waypoints {
        let loc = wp.location(world);
        let tag = waypoint_tag(wp);
        total += link_delay(params, &prev_loc, &loc, link_key(prev_tag, tag));
        total += Ms(params.hop_processing_ms);
        prev_loc = loc;
        prev_tag = tag;
    }
    let dst_loc = endpoint_location(world, path.dst);
    total += link_delay(
        params,
        &prev_loc,
        &dst_loc,
        link_key(prev_tag, endpoint_tag(path.dst)),
    );
    total
}

/// Cumulative one-way delays from the path source to each waypoint (used
/// for traceroute per-hop timing). Entry `i` is the delay to waypoint `i`.
pub fn cumulative_delays(world: &World, params: &NetParams, path: &Path) -> Vec<Ms> {
    let mut out = Vec::with_capacity(path.waypoints.len());
    let mut total = Ms::ZERO;
    let mut prev_loc = endpoint_location(world, path.src);
    let mut prev_tag = endpoint_tag(path.src);
    for wp in &path.waypoints {
        let loc = wp.location(world);
        let tag = waypoint_tag(wp);
        total += link_delay(params, &prev_loc, &loc, link_key(prev_tag, tag));
        total += Ms(params.hop_processing_ms);
        out.push(total);
        prev_loc = loc;
        prev_tag = tag;
    }
    out
}

/// Per-packet jitter sample: lognormal with the configured median.
pub fn jitter(params: &NetParams, seed: Seed, key: u64) -> Ms {
    if params.jitter_median_ms <= 0.0 {
        return Ms::ZERO;
    }
    let mut rng = KeyRng::new(seed.0 ^ splitmix64(key ^ fnv1a(b"jitter")));
    let d = LogNormal::with_median(params.jitter_median_ms, params.jitter_sigma);
    Ms(d.sample(&mut rng))
}

/// Per-packet last-mile sample for a host profile: the total access-link
/// contribution to one round trip.
pub fn last_mile(_params: &NetParams, profile: LastMile, seed: Seed, key: u64) -> Ms {
    let mut rng = KeyRng::new(seed.0 ^ splitmix64(key ^ fnv1a(b"last-mile")));
    match profile {
        LastMile::Negligible => {
            // Well-connected server: tens of microseconds.
            let d = LogNormal::with_median(0.08, 0.6);
            Ms(d.sample(&mut rng))
        }
        LastMile::Access { mean_ms } => {
            // The access line's delay is a per-host constant (DSL
            // interleaving, DOCSIS scheduling); packets see only a small
            // multiplicative variation around it. Modelling it per-packet
            // would let min-of-N wash the last mile out entirely.
            let variation = LogNormal::new(0.0, 0.12);
            Ms(mean_ms * variation.sample(&mut rng))
        }
    }
}

/// Per-reply ICMP slow-path delay: the control-plane cost of generating a
/// TTL-exceeded message. Lognormal with a heavy tail (routers under load
/// answer late by tens of milliseconds).
pub fn icmp_slowpath(params: &NetParams, seed: Seed, key: u64) -> Ms {
    if params.icmp_slowpath_median_ms <= 0.0 {
        return Ms::ZERO;
    }
    let mut rng = KeyRng::new(seed.0 ^ splitmix64(key ^ fnv1a(b"icmp-slowpath")));
    let d = LogNormal::with_median(params.icmp_slowpath_median_ms, params.icmp_slowpath_sigma);
    Ms(d.sample(&mut rng))
}

/// Uniform unit sample from a key (loss and responsiveness decisions).
pub fn unit_sample(seed: Seed, key: u64, domain: &str) -> f64 {
    let h = splitmix64(seed.0 ^ splitmix64(key ^ fnv1a(domain.as_bytes())));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::synthesize;
    use geo_model::rng::Seed;
    use world_sim::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(91))).unwrap()
    }

    #[test]
    fn link_delay_respects_propagation_floor() {
        let p = NetParams::default();
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 10.0);
        let d = a.distance(&b);
        let floor = d.value() / p.km_per_ms();
        for key in 0..50u64 {
            let delay = link_delay(&p, &a, &b, key).value();
            assert!(delay >= floor, "delay {delay} under floor {floor}");
            assert!(delay <= floor * (p.cable_inflation_max + p.short_haul_inflation) + 0.2);
        }
    }

    #[test]
    fn metro_links_pay_detour() {
        let p = NetParams::default();
        let a = GeoPoint::new(48.0, 2.0);
        let b = a.destination(90.0, Km(5.0));
        let delay = link_delay(&p, &a, &b, 7).value();
        assert!(delay >= p.metro_detour_ms);
    }

    #[test]
    fn link_delay_symmetric_same_key() {
        let p = NetParams::default();
        let a = GeoPoint::new(10.0, 10.0);
        let b = GeoPoint::new(20.0, 20.0);
        assert_eq!(link_delay(&p, &a, &b, 42), link_delay(&p, &b, &a, 42));
    }

    #[test]
    fn one_way_delay_exceeds_geodesic_floor() {
        let w = world();
        let p = NetParams::default();
        for i in 0..w.anchors.len().min(10) {
            let src = w.probes[i];
            let dst = w.anchors[i];
            let path = synthesize(&w, &p, Endpoint::Host(src), Endpoint::Host(dst));
            let delay = one_way_delay(&w, &p, &path).value();
            let floor =
                w.host(src).location.distance(&w.host(dst).location).value() / p.km_per_ms();
            assert!(delay >= floor, "delay {delay} under geodesic floor {floor}");
        }
    }

    #[test]
    fn cumulative_delays_are_monotone() {
        let w = world();
        let p = NetParams::default();
        let path = synthesize(
            &w,
            &p,
            Endpoint::Host(w.probes[0]),
            Endpoint::Host(w.anchors[0]),
        );
        let cum = cumulative_delays(&w, &p, &path);
        assert_eq!(cum.len(), path.waypoints.len());
        for win in cum.windows(2) {
            assert!(win[0] < win[1]);
        }
        let total = one_way_delay(&w, &p, &path);
        assert!(cum.last().unwrap() < &total);
    }

    #[test]
    fn jitter_is_positive_and_deterministic() {
        let p = NetParams::default();
        let s = Seed(5);
        let a = jitter(&p, s, 1);
        let b = jitter(&p, s, 1);
        let c = jitter(&p, s, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.value() > 0.0);
    }

    #[test]
    fn zero_jitter_configurable() {
        let p = NetParams {
            jitter_median_ms: 0.0,
            ..NetParams::default()
        };
        assert_eq!(jitter(&p, Seed(5), 1), Ms::ZERO);
    }

    #[test]
    fn last_mile_profiles_differ() {
        let p = NetParams::default();
        let s = Seed(6);
        let mut neg_sum = 0.0;
        let mut acc_sum = 0.0;
        let mut acc_min = f64::INFINITY;
        for k in 0..200 {
            neg_sum += last_mile(&p, LastMile::Negligible, s, k).value();
            let a = last_mile(&p, LastMile::Access { mean_ms: 4.0 }, s, k).value();
            acc_sum += a;
            acc_min = acc_min.min(a);
        }
        assert!(neg_sum / 200.0 < 0.5);
        assert!((acc_sum / 200.0 - 4.0).abs() < 1.0);
        // The access delay is a per-line constant: even the minimum over
        // many packets stays near the line's value.
        assert!(
            acc_min > 2.5,
            "min-of-N washed out the last mile: {acc_min}"
        );
    }

    #[test]
    fn unit_sample_uniformish() {
        let s = Seed(7);
        let mean: f64 = (0..1000).map(|k| unit_sample(s, k, "loss")).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.05);
    }
}
