//! Path synthesis: deterministic router-level paths over the AS topology.
//!
//! Rather than running a global routing protocol, paths are synthesized
//! per-pair with the decision rules that shape real interdomain paths:
//!
//! 1. intra-AS traffic rides the AS backbone between its PoPs;
//! 2. if the two ASes share a city, they peer there — preferring a handoff
//!    near the *source* (hot-potato);
//! 3. otherwise traffic goes through a transit AS whose identity depends on
//!    the ordered (src-AS, dst-AS) pair, entering at the transit PoP
//!    nearest the source and leaving at the PoP nearest the destination.
//!
//! Rule 3's direction dependence is what produces asymmetric forward and
//! reverse paths — the noise source behind the street-level paper's
//! unusable `D1 + D2` delays.

use crate::params::NetParams;
use geo_model::point::GeoPoint;
use geo_model::rng::{fnv1a, splitmix64};

use world_sim::ids::{AsId, CityId, HostId};
use world_sim::World;

/// One endpoint of a path: a host, or a bare router PoP (used when
/// computing reverse paths from a traceroute hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A host in the world.
    Host(HostId),
    /// A router at an AS point of presence.
    Router(AsId, CityId),
}

/// A router on a path, identified by its PoP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Waypoint {
    /// The AS operating the router.
    pub asn: AsId,
    /// The city of the PoP.
    pub city: CityId,
}

impl Waypoint {
    /// The router's physical location: the city center nudged by a
    /// deterministic per-PoP offset (so different ASes' routers in one city
    /// don't coincide exactly).
    pub fn location(&self, world: &World) -> GeoPoint {
        let center = world.city(self.city).center;
        let h = splitmix64((self.asn.0 as u64) << 32 | self.city.0 as u64 ^ fnv1a(b"router-site"));
        let bearing = (h % 360) as f64;
        let dist = 1.0 + ((h >> 16) % 60) as f64 / 10.0; // 1..7 km
        center.destination(bearing, geo_model::units::Km(dist))
    }
}

/// A synthesized one-way path: source endpoint, the router waypoints in
/// order, and the destination endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Source endpoint.
    pub src: Endpoint,
    /// Router waypoints from source side to destination side.
    pub waypoints: Vec<Waypoint>,
    /// Destination endpoint.
    pub dst: Endpoint,
}

impl Path {
    /// Number of router hops.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// True if there are no router hops (src and dst co-located).
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }
}

/// Resolves an endpoint's attachment PoP and physical location.
fn attachment(world: &World, ep: Endpoint) -> (AsId, CityId, GeoPoint) {
    match ep {
        Endpoint::Host(id) => {
            let h = world.host(id);
            (h.asn, h.city, h.location)
        }
        Endpoint::Router(asn, city) => {
            let wp = Waypoint { asn, city };
            (asn, city, wp.location(world))
        }
    }
}

/// Synthesizes the forward path from `src` to `dst`.
pub fn synthesize(world: &World, _params: &NetParams, src: Endpoint, dst: Endpoint) -> Path {
    let (src_as, src_city, _) = attachment(world, src);
    let (dst_as, dst_city, _) = attachment(world, dst);

    let mut waypoints: Vec<Waypoint> = Vec::with_capacity(6);
    waypoints.push(Waypoint {
        asn: src_as,
        city: src_city,
    });

    if src_as == dst_as {
        // Intra-AS backbone hop.
        waypoints.push(Waypoint {
            asn: src_as,
            city: dst_city,
        });
    } else if world.has_pop(dst_as, src_city) {
        // Peer in the source city (hot-potato: hand off immediately).
        waypoints.push(Waypoint {
            asn: dst_as,
            city: src_city,
        });
        waypoints.push(Waypoint {
            asn: dst_as,
            city: dst_city,
        });
    } else if world.has_pop(src_as, dst_city) {
        // Source AS reaches into the destination city.
        waypoints.push(Waypoint {
            asn: src_as,
            city: dst_city,
        });
        waypoints.push(Waypoint {
            asn: dst_as,
            city: dst_city,
        });
    } else if let Some(meet) = best_shared_pop(world, src_as, dst_as, src_city, dst_city) {
        // Private peering at a shared PoP city.
        waypoints.push(Waypoint {
            asn: src_as,
            city: meet,
        });
        waypoints.push(Waypoint {
            asn: dst_as,
            city: meet,
        });
        waypoints.push(Waypoint {
            asn: dst_as,
            city: dst_city,
        });
    } else {
        // Transit. Direction-dependent provider choice.
        let transit = pick_transit(world, _params, src_as, dst_as);
        let t_in = world.nearest_pop(transit, src_city);
        let t_out = world.nearest_pop(transit, dst_city);
        waypoints.push(Waypoint {
            asn: transit,
            city: t_in,
        });
        if t_out != t_in {
            waypoints.push(Waypoint {
                asn: transit,
                city: t_out,
            });
        }
        waypoints.push(Waypoint {
            asn: dst_as,
            city: dst_city,
        });
    }

    dedup_consecutive(&mut waypoints);
    Path {
        src,
        waypoints,
        dst,
    }
}

fn dedup_consecutive(waypoints: &mut Vec<Waypoint>) {
    waypoints.dedup();
}

/// The shared PoP city minimizing the detour `src_city -> X -> dst_city`,
/// if the two ASes share any.
fn best_shared_pop(
    world: &World,
    a: AsId,
    b: AsId,
    src_city: CityId,
    dst_city: CityId,
) -> Option<CityId> {
    // Scan the smaller footprint, membership-test against the other.
    let (scan, other) = if world.asn(a).pops.len() <= world.asn(b).pops.len() {
        (a, b)
    } else {
        (b, a)
    };
    let src_p = world.city(src_city).center;
    let dst_p = world.city(dst_city).center;
    let mut best: Option<(CityId, f64)> = None;
    for &c in &world.asn(scan).pops {
        if !world.has_pop(other, c) {
            continue;
        }
        let p = world.city(c).center;
        let detour = src_p.distance(&p).value() + p.distance(&dst_p).value();
        if best.is_none_or(|(_, d)| detour < d) {
            best = Some((c, detour));
        }
    }
    best.map(|(c, _)| c)
}

/// Picks the transit provider for the ordered (src, dst) AS pair.
///
/// Hot-potato reality: the *source* AS hands traffic to one of its own
/// upstream providers, so traceroutes from one vantage point toward two
/// nearby destinations share the provider (and its destination-side PoP —
/// the street-level paper's "last common router"), while the reverse
/// direction rides the *destination's* provider. That is the interdomain
/// asymmetry behind the unusable `D1 + D2` values.
///
/// `asymmetry_rate` interpolates toward a symmetric Internet: with
/// probability `1 - asymmetry_rate` (hashed on the unordered pair) both
/// directions agree on one provider — the ablation knob for the
/// `D1 + D2` noise.
pub fn pick_transit(world: &World, params: &NetParams, src_as: AsId, dst_as: AsId) -> AsId {
    let (lo, hi) = if src_as.0 <= dst_as.0 {
        (src_as.0, dst_as.0)
    } else {
        (dst_as.0, src_as.0)
    };
    let unordered = splitmix64(((lo as u64) << 32 | hi as u64) ^ fnv1a(b"transit-pick"));
    let symmetric = (unordered >> 11) as f64 / (1u64 << 53) as f64 >= params.asymmetry_rate;
    if symmetric {
        // Symmetric regime: both directions agree on the lower AS's
        // provider set and index.
        let set = world.providers(AsId(lo));
        set[(splitmix64(unordered) % 2) as usize]
    } else {
        // Hot potato: the source's provider, selected per destination
        // (coarse traffic engineering across the two upstreams).
        let set = world.providers(src_as);
        let h = splitmix64(((src_as.0 as u64) << 32 | dst_as.0 as u64) ^ fnv1a(b"te-split"));
        set[(h % 2) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(81))).unwrap()
    }

    #[test]
    fn path_starts_and_ends_at_endpoint_pops() {
        let w = world();
        let p = NetParams::default();
        let src = w.anchors[0];
        let dst = w.anchors[1];
        let path = synthesize(&w, &p, Endpoint::Host(src), Endpoint::Host(dst));
        assert!(!path.waypoints.is_empty());
        let first = path.waypoints.first().unwrap();
        let last = path.waypoints.last().unwrap();
        assert_eq!(first.asn, w.host(src).asn);
        assert_eq!(first.city, w.host(src).city);
        assert_eq!(last.city, w.host(dst).city);
    }

    #[test]
    fn no_consecutive_duplicate_waypoints() {
        let w = world();
        let p = NetParams::default();
        for i in 0..w.anchors.len().min(10) {
            for j in 0..w.probes.len().min(10) {
                let path = synthesize(
                    &w,
                    &p,
                    Endpoint::Host(w.probes[j]),
                    Endpoint::Host(w.anchors[i]),
                );
                for win in path.waypoints.windows(2) {
                    assert_ne!(win[0], win[1]);
                }
                assert!(path.len() <= 6, "path too long: {}", path.len());
            }
        }
    }

    #[test]
    fn same_host_pair_same_path() {
        let w = world();
        let p = NetParams::default();
        let a = Endpoint::Host(w.anchors[0]);
        let b = Endpoint::Host(w.probes[0]);
        assert_eq!(synthesize(&w, &p, a, b), synthesize(&w, &p, a, b));
    }

    #[test]
    fn reverse_paths_can_differ() {
        let w = world();
        let p = NetParams::default();
        let mut asymmetric = 0;
        let mut total = 0;
        for i in 0..w.anchors.len() {
            for j in 0..w.probes.len().min(20) {
                let a = Endpoint::Host(w.anchors[i]);
                let b = Endpoint::Host(w.probes[j]);
                let fwd = synthesize(&w, &p, a, b);
                let mut rev = synthesize(&w, &p, b, a);
                rev.waypoints.reverse();
                total += 1;
                if fwd.waypoints != rev.waypoints {
                    asymmetric += 1;
                }
            }
        }
        assert!(
            asymmetric * 10 > total,
            "too little asymmetry: {asymmetric}/{total}"
        );
    }

    #[test]
    fn router_locations_near_city() {
        let w = world();
        let wp = Waypoint {
            asn: w.ases[0].id,
            city: w.ases[0].pops[0],
        };
        let d = wp.location(&w).distance(&w.city(wp.city).center).value();
        assert!(d <= 8.0, "router {d} km from city center");
    }

    #[test]
    fn transit_pick_is_deterministic() {
        let w = world();
        let p = NetParams::default();
        let a = w.ases[0].id;
        let b = w.ases[1].id;
        assert_eq!(pick_transit(&w, &p, a, b), pick_transit(&w, &p, a, b));
    }

    #[test]
    fn zero_asymmetry_gives_symmetric_transit() {
        let w = world();
        let p = NetParams {
            asymmetry_rate: 0.0,
            ..NetParams::default()
        };
        for i in 0..w.ases.len().min(20) {
            for j in 0..w.ases.len().min(20) {
                let a = w.ases[i].id;
                let b = w.ases[j].id;
                assert_eq!(pick_transit(&w, &p, a, b), pick_transit(&w, &p, b, a));
            }
        }
    }

    #[test]
    fn nearest_pop_is_nearest() {
        let w = world();
        let asn = w
            .ases
            .iter()
            .find(|a| a.pops.len() >= 3)
            .expect("some AS with several PoPs");
        let city = w.cities[0].id;
        let got = w.nearest_pop(asn.id, city);
        let target = w.city(city).center;
        for &p in &asn.pops {
            assert!(w.city(got).center.distance(&target) <= w.city(p).center.distance(&target));
        }
    }
}
