//! # net-sim
//!
//! A deterministic router-level latency and path simulator over a
//! `world-sim` world. This is the substitute for the live Internet that the
//! replication's measurement platform (RIPE Atlas in the paper,
//! `atlas-sim` here) drives.
//!
//! The simulator is built around the properties the paper's analysis
//! depends on, rather than around packet-level fidelity:
//!
//! - **Propagation floor.** Every link propagates at 2/3 c over a
//!   cable-inflated geodesic (inflation ≥ 1.1), so a CBG constraint circle
//!   computed at 2/3 c always contains the true target — while the
//!   street-level paper's more aggressive 4/9 c conversion can exclude it,
//!   as the paper observed for 5 of its targets.
//! - **Hot-potato, destination-based routing.** Paths are synthesized
//!   per-direction: an AS hands traffic to transit as early as possible and
//!   the transit choice depends on the direction, so forward and reverse
//!   paths differ routinely. Per-hop traceroute RTTs use the *reverse path
//!   from that hop*, which is exactly what makes the street-level paper's
//!   `D1 + D2` delay differences noisy and often negative (Appendix B).
//! - **Last-mile delay.** Hosts in access networks add a gamma-distributed
//!   last-mile delay to every measurement (§4.4.2), which caps how tight a
//!   latency constraint through such vantage points can be.
//! - **Determinism.** A measurement's outcome is a pure function of
//!   (seed, src, dst, nonce): reruns are bit-identical, and independent
//!   experiments can share one simulator without interference.
//!
//! Entry point: [`Network`].

pub mod cache;
pub mod delay;
pub mod measure;
pub mod params;
pub mod route;

pub use cache::{BaseDelayCache, CacheStats};
pub use measure::{Hop, PingOutcome, Traceroute};
pub use params::NetParams;
pub use route::{Endpoint, Path, Waypoint};

use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use geo_model::units::Ms;
use std::sync::Arc;
use world_sim::ids::HostId;
use world_sim::World;

/// The network simulator. Cheap to clone; clones share the base-delay
/// cache (all other state is parameters).
#[derive(Debug, Clone)]
pub struct Network {
    seed: Seed,
    params: NetParams,
    cache: Arc<BaseDelayCache>,
}

impl Network {
    /// Creates a simulator with default parameters.
    pub fn new(seed: Seed) -> Network {
        Network::with_params(seed, NetParams::default())
    }

    /// Creates a simulator with explicit parameters.
    pub fn with_params(seed: Seed, params: NetParams) -> Network {
        Network {
            seed,
            params,
            cache: Arc::new(BaseDelayCache::new()),
        }
    }

    /// The simulator's parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// The simulator's seed.
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// The forward path from one endpoint to another.
    pub fn forward_path(&self, world: &World, src: Endpoint, dst: Endpoint) -> Path {
        route::synthesize(world, &self.params, src, dst)
    }

    /// The deterministic (jitter-free, last-mile-free) round-trip time
    /// between two hosts: forward one-way plus reverse one-way delay.
    /// Memoized per unordered endpoint pair in the shared [`BaseDelayCache`]
    /// — this is the bulk-cacheable part of every ping.
    pub fn base_rtt(&self, world: &World, src: HostId, dst: HostId) -> Ms {
        Ms(self.cache.get_or_compute(src, dst, || {
            measure::base_rtt(world, &self.params, src, dst).value()
        }))
    }

    /// [`Network::base_rtt`] bypassing the cache: recomputes the full
    /// router-level path synthesis. Used by the equivalence property test
    /// and the cold-cache benchmarks.
    pub fn base_rtt_uncached(&self, world: &World, src: HostId, dst: HostId) -> Ms {
        measure::base_rtt(world, &self.params, src, dst)
    }

    /// Hit/miss counters and size of the shared base-delay cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Empties the base-delay cache and resets its counters (cold-cache
    /// benchmarks; never needed for correctness).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// One ping packet from `src` to the address `dst`. Deterministic in
    /// `(seed, src, dst, nonce)`.
    pub fn ping(&self, world: &World, src: HostId, dst: Ipv4, nonce: u64) -> PingOutcome {
        let Some(dst_host) = world.host_by_ip(dst) else {
            return PingOutcome::Timeout;
        };
        let base = self.base_rtt(world, src, dst_host.id);
        measure::ping_with_base(
            world,
            &self.params,
            self.seed,
            src,
            dst,
            dst_host.id,
            base,
            nonce,
        )
    }

    /// The minimum RTT over `count` ping packets — how latency geolocation
    /// actually measures (RIPE Atlas pings send 3 packets and keep the
    /// minimum). The deterministic base RTT is resolved once through the
    /// cache; only the per-packet noise is recomputed.
    pub fn ping_min(
        &self,
        world: &World,
        src: HostId,
        dst: Ipv4,
        count: usize,
        nonce: u64,
    ) -> PingOutcome {
        let Some(dst_host) = world.host_by_ip(dst) else {
            return PingOutcome::Timeout;
        };
        let base = self.base_rtt(world, src, dst_host.id);
        measure::ping_min_with_base(
            world,
            &self.params,
            self.seed,
            src,
            dst,
            dst_host.id,
            base,
            count,
            nonce,
        )
    }

    /// A traceroute from `src` to the address `dst`.
    pub fn traceroute(&self, world: &World, src: HostId, dst: Ipv4, nonce: u64) -> Traceroute {
        measure::traceroute(world, &self.params, self.seed, src, dst, nonce)
    }
}
