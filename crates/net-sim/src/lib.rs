//! # net-sim
//!
//! A deterministic router-level latency and path simulator over a
//! `world-sim` world. This is the substitute for the live Internet that the
//! replication's measurement platform (RIPE Atlas in the paper,
//! `atlas-sim` here) drives.
//!
//! The simulator is built around the properties the paper's analysis
//! depends on, rather than around packet-level fidelity:
//!
//! - **Propagation floor.** Every link propagates at 2/3 c over a
//!   cable-inflated geodesic (inflation ≥ 1.1), so a CBG constraint circle
//!   computed at 2/3 c always contains the true target — while the
//!   street-level paper's more aggressive 4/9 c conversion can exclude it,
//!   as the paper observed for 5 of its targets.
//! - **Hot-potato, destination-based routing.** Paths are synthesized
//!   per-direction: an AS hands traffic to transit as early as possible and
//!   the transit choice depends on the direction, so forward and reverse
//!   paths differ routinely. Per-hop traceroute RTTs use the *reverse path
//!   from that hop*, which is exactly what makes the street-level paper's
//!   `D1 + D2` delay differences noisy and often negative (Appendix B).
//! - **Last-mile delay.** Hosts in access networks add a gamma-distributed
//!   last-mile delay to every measurement (§4.4.2), which caps how tight a
//!   latency constraint through such vantage points can be.
//! - **Determinism.** A measurement's outcome is a pure function of
//!   (seed, src, dst, nonce): reruns are bit-identical, and independent
//!   experiments can share one simulator without interference.
//!
//! Entry point: [`Network`].

pub mod cache;
pub mod delay;
pub mod hotpath;
pub mod measure;
pub mod params;
pub mod route;

pub use cache::{BaseDelayCache, CacheStats};
pub use hotpath::{NoiseModel, PathShape, RouteCache, RowScratch, TargetLane};
pub use measure::{Hop, PingOutcome, Traceroute};
pub use params::NetParams;
pub use route::{Endpoint, Path, Waypoint};

use geo_model::ip::Ipv4;
use geo_model::rng::{splitmix64, Seed};
use geo_model::units::Ms;
use std::sync::Arc;
use world_sim::ids::HostId;
use world_sim::World;

/// The network simulator. Cheap to clone; clones share the base-delay
/// cache and the route cache (all other state is parameters).
#[derive(Debug, Clone)]
pub struct Network {
    seed: Seed,
    params: NetParams,
    cache: Arc<BaseDelayCache>,
    routes: Arc<RouteCache>,
    noise: NoiseModel,
}

impl Network {
    /// Creates a simulator with default parameters.
    pub fn new(seed: Seed) -> Network {
        Network::with_params(seed, NetParams::default())
    }

    /// Creates a simulator with explicit parameters.
    pub fn with_params(seed: Seed, params: NetParams) -> Network {
        let routes = Arc::new(RouteCache::new(&params));
        let noise = NoiseModel::new(&params);
        Network {
            seed,
            params,
            cache: Arc::new(BaseDelayCache::new()),
            routes,
            noise,
        }
    }

    /// The simulator's parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// The simulator's seed.
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// The forward path from one endpoint to another.
    pub fn forward_path(&self, world: &World, src: Endpoint, dst: Endpoint) -> Path {
        route::synthesize(world, &self.params, src, dst)
    }

    /// The deterministic (jitter-free, last-mile-free) round-trip time
    /// between two hosts: forward one-way plus reverse one-way delay.
    /// Memoized per unordered endpoint pair in the shared [`BaseDelayCache`]
    /// — this is the bulk-cacheable part of every ping.
    pub fn base_rtt(&self, world: &World, src: HostId, dst: HostId) -> Ms {
        Ms(self.cache.get_or_compute(src, dst, || {
            self.routes.base_rtt_ms(world, &self.params, src, dst)
        }))
    }

    /// [`Network::base_rtt`] bypassing the cache: recomputes the full
    /// router-level path synthesis. Used by the equivalence property test
    /// and the cold-cache benchmarks.
    pub fn base_rtt_uncached(&self, world: &World, src: HostId, dst: HostId) -> Ms {
        measure::base_rtt(world, &self.params, src, dst)
    }

    /// Hit/miss counters and size of the shared base-delay cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Empties the base-delay cache and resets its counters (cold-cache
    /// benchmarks; never needed for correctness).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// One ping packet from `src` to the address `dst`. Deterministic in
    /// `(seed, src, dst, nonce)`.
    pub fn ping(&self, world: &World, src: HostId, dst: Ipv4, nonce: u64) -> PingOutcome {
        let Some(dst_host) = world.host_by_ip(dst) else {
            return PingOutcome::Timeout;
        };
        let base = self.base_rtt(world, src, dst_host.id);
        let key = measure::measurement_key(src, dst, nonce);
        self.noise.packet(
            self.seed,
            world.host(src).last_mile,
            dst_host.last_mile,
            base,
            key,
        )
    }

    /// The minimum RTT over `count` ping packets — how latency geolocation
    /// actually measures (RIPE Atlas pings send 3 packets and keep the
    /// minimum). The deterministic base RTT is resolved once through the
    /// cache; only the per-packet noise is recomputed.
    pub fn ping_min(
        &self,
        world: &World,
        src: HostId,
        dst: Ipv4,
        count: usize,
        nonce: u64,
    ) -> PingOutcome {
        let Some(dst_host) = world.host_by_ip(dst) else {
            return PingOutcome::Timeout;
        };
        let base = self.base_rtt(world, src, dst_host.id);
        self.noise.ping_min(
            self.seed,
            src,
            dst,
            world.host(src).last_mile,
            dst_host.last_mile,
            base,
            count,
            nonce,
        )
    }

    /// [`Network::ping_min`] for single-visit pairs: the base RTT is
    /// resolved through the route cache but *not* inserted into the
    /// base-delay cache. Bulk campaigns that touch each (src, dst) pair
    /// exactly once (the probe campaign, the representative matrix) would
    /// otherwise pay the insert and the memory for entries never read back.
    pub fn ping_min_once(
        &self,
        world: &World,
        src: HostId,
        dst: Ipv4,
        count: usize,
        nonce: u64,
    ) -> PingOutcome {
        let Some(dst_host) = world.host_by_ip(dst) else {
            return PingOutcome::Timeout;
        };
        let base = Ms(self
            .routes
            .base_rtt_ms(world, &self.params, src, dst_host.id));
        self.noise.ping_min(
            self.seed,
            src,
            dst,
            world.host(src).last_mile,
            dst_host.last_mile,
            base,
            count,
            nonce,
        )
    }

    /// Resolves per-target constants for a bulk campaign against a fixed
    /// target list (see [`Network::campaign_row`]).
    pub fn target_lane(&self, world: &World, targets: &[HostId]) -> TargetLane {
        self.routes.target_lane(world, &self.params, targets)
    }

    /// The attach-group key of a host: campaign rows sorted by this key
    /// maximize [`RowScratch`] reuse across consecutive rows.
    pub fn attach_group(&self, world: &World, id: HostId) -> u32 {
        self.routes.attach_group(world, id)
    }

    /// One campaign row: [`Network::ping_min_once`] from `src` to every
    /// target column, bit-identical cell by cell, with the per-call
    /// constant work (`host_by_ip`, last-mile lookup, access delays,
    /// pair-memo probes) hoisted into the [`TargetLane`] and the
    /// attach-keyed [`RowScratch`]. `nonce_of(col)` supplies the per-cell
    /// nonce; `skip` omits a column (the mesh diagonal).
    // geo-lint: hot-path
    #[allow(clippy::too_many_arguments)]
    pub fn campaign_row(
        &self,
        world: &World,
        targets: &TargetLane,
        scratch: &mut RowScratch,
        src: HostId,
        count: usize,
        nonce_of: impl Fn(usize) -> u64,
        skip: Option<usize>,
        mut emit: impl FnMut(usize, PingOutcome),
    ) {
        let src_lm = world.host(src).last_mile;
        self.routes.base_row(
            world,
            &self.params,
            targets,
            scratch,
            src,
            skip,
            |c, base, ip, dst_lm| {
                let out = self.noise.ping_min(
                    self.seed,
                    src,
                    ip,
                    src_lm,
                    dst_lm,
                    base,
                    count,
                    nonce_of(c),
                );
                emit(c, out);
            },
        );
    }

    /// A traceroute from `src` to the address `dst`. Same semantics as
    /// [`measure::traceroute`], with the forward path, per-hop reverse
    /// paths and noise resolved through the shared caches.
    pub fn traceroute(&self, world: &World, src: HostId, dst: Ipv4, nonce: u64) -> Traceroute {
        let dst_host = world.host_by_ip(dst);
        let key = measure::measurement_key(src, dst, splitmix64(nonce ^ hotpath::H_TRACEROUTE));

        let fwd_dst = match dst_host {
            Some(h) => Endpoint::Host(h.id),
            None => match world.plan.owner(dst.prefix24()) {
                Some((asn, city)) => Endpoint::Router(asn, city),
                None => {
                    return Traceroute {
                        src,
                        dst,
                        hops: Vec::new(),
                        dst_rtt: None,
                    }
                }
            },
        };
        let fwd = self
            .routes
            .shape(world, &self.params, Endpoint::Host(src), fwd_dst);
        let mut cumulative = Vec::new();
        self.routes.cumulative_ms(
            world,
            &self.params,
            Endpoint::Host(src),
            &fwd,
            &mut cumulative,
        );
        // The reference samples the source last mile with the same key for
        // every hop; one sample serves all of them.
        let src_lm = self
            .noise
            .last_mile(world.host(src).last_mile, self.seed, key ^ 0x17);

        let mut hops = Vec::with_capacity(fwd.waypoints().len());
        for (i, &(asn, city)) in fwd.waypoints().iter().enumerate() {
            let hop_key = splitmix64(key ^ (i as u64 + 1));
            let rtt = if self.noise.hop_responds(self.seed, hop_key) {
                // Reverse path *from this router* to the source.
                let rev_src = Endpoint::Router(asn, city);
                let rev = self
                    .routes
                    .shape(world, &self.params, rev_src, Endpoint::Host(src));
                let rev_delay = Ms(self.routes.one_way_ms(
                    world,
                    &self.params,
                    rev_src,
                    Endpoint::Host(src),
                    &rev,
                ));
                let j = self.noise.jitter(self.seed, hop_key);
                let slowpath = self.noise.icmp_slowpath(self.seed, hop_key);
                Some(cumulative[i] + rev_delay + j + src_lm + slowpath)
            } else {
                None
            };
            hops.push(Hop {
                waypoint: Waypoint { asn, city },
                rtt,
            });
        }

        let dst_rtt = dst_host.and_then(|h| {
            let base = self.base_rtt(world, src, h.id);
            let ping_key = measure::measurement_key(src, dst, splitmix64(nonce ^ 0xF1));
            self.noise
                .packet(
                    self.seed,
                    world.host(src).last_mile,
                    h.last_mile,
                    base,
                    ping_key,
                )
                .rtt()
        });

        Traceroute {
            src,
            dst,
            hops,
            dst_rtt,
        }
    }
}
