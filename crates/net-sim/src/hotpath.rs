//! The memoized measurement hot path: route shapes, link delays and
//! per-packet noise, bit-identical to the reference implementation.
//!
//! `measure::base_rtt` is the cost center of every bulk campaign: it
//! synthesizes two router-level paths and walks them link by link, paying
//! spherical trigonometry (`Waypoint::location`, haversine) and hash
//! derivation per link, per call. Almost all of that work repeats across
//! measurements, because paths are built from a small vocabulary:
//!
//! - the **first and last links** of any host path depend only on the host
//!   (its location, its attachment PoP) — one constant per host;
//! - a path starting at a `Router` endpoint begins with a zero-length link
//!   to its own PoP, whose delay collapses to the metro detour — one
//!   constant per simulator;
//! - the **shape** of a path and all its middle (PoP-to-PoP) link delays
//!   depend only on the two endpoints' attachment PoPs `(asn, city)` —
//!   one short addend sequence per attach pair, shared by every host pair
//!   behind the same attachments;
//! - the topology tests the shape is decided by (`has_pop`, `nearest_pop`,
//!   the `best_shared_pop` scan) hit tiny key spaces — dense lanes beat
//!   hash tables.
//!
//! [`RouteCache`] memoizes exactly those pieces and replays the delay sum
//! in the *same addition order* as `delay::one_way_delay`, so every f64 is
//! bit-identical to the unmemoized reference (f64 addition is not
//! associative, so caching whole sums per pair would entangle the per-host
//! access terms; caching the middle addends and re-adding in order is safe).
//!
//! [`NoiseModel`] precomputes the per-packet distributions (`ln()` per
//! lognormal, domain hashes) that `delay::jitter`/`last_mile` re-derive on
//! every packet. Sampling itself is untouched, so draws are bit-identical.
//!
//! `crates/core/tests/hotpath_equivalence.rs` pins the end-to-end outputs
//! against pre-optimization digests; `tests/hotpath_equivalence.rs` in this
//! crate checks the fast path against the reference pair by pair.

use crate::delay;
use crate::measure::{self, PingOutcome};
use crate::params::NetParams;
use crate::route::{self, Endpoint, Waypoint};
use geo_model::distr::{LogNormal, Sample};
use geo_model::ip::Ipv4;
use geo_model::point::EARTH_RADIUS_KM;
use geo_model::rng::{fnv1a, splitmix64, KeyRng, Seed};
use geo_model::units::Ms;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use world_sim::host::LastMile;
use world_sim::ids::{AsId, CityId, HostId};
use world_sim::World;

/// Compile-time domain hashes (the reference path hashes these literals on
/// every call; see `delay::unit_sample` and friends).
const H_LOSS: u64 = fnv1a(b"loss");
const H_JITTER: u64 = fnv1a(b"jitter");
const H_LAST_MILE: u64 = fnv1a(b"last-mile");
const H_ICMP: u64 = fnv1a(b"icmp-slowpath");
const H_HOP_RESPONDS: u64 = fnv1a(b"hop-responds");
const H_CABLE: u64 = fnv1a(b"cable");
pub(crate) const H_TRACEROUTE: u64 = fnv1a(b"traceroute");

/// A cheap deterministic hasher for the memo tables: one splitmix64 round
/// per written word. The default SipHash costs more than the memoized
/// computation it guards; statistical quality here only affects bucket
/// spread, never results.
#[derive(Default)]
pub struct MixHasher(u64);

impl Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64(self.0 ^ v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
}

type MixMap<K, V> = HashMap<K, V, BuildHasherDefault<MixHasher>>;

/// Number of shards for the attach-pair memo (power of two).
const PAIR_SHARDS: usize = 64;

/// A path's waypoint list on the stack: `route::synthesize` never emits
/// more than four waypoints, so the shape of a route needs no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathShape {
    wps: [(AsId, CityId); 4],
    len: u8,
}

impl PathShape {
    fn new() -> PathShape {
        PathShape {
            wps: [(AsId(0), CityId(0)); 4],
            len: 0,
        }
    }

    /// Appends a waypoint, dropping consecutive duplicates — the same
    /// normalization `Vec::dedup` applies in `route::synthesize`.
    #[inline]
    fn push(&mut self, asn: AsId, city: CityId) {
        let n = self.len as usize;
        if n > 0 && self.wps[n - 1] == (asn, city) {
            return;
        }
        self.wps[n] = (asn, city);
        self.len += 1;
    }

    /// The waypoints in path order.
    #[inline]
    pub fn waypoints(&self) -> &[(AsId, CityId)] {
        &self.wps[..self.len as usize]
    }
}

/// An endpoint's attachment PoP (no location resolution — the hot path
/// never needs endpoint coordinates, only per-host link constants).
#[inline]
fn attach(world: &World, ep: Endpoint) -> (AsId, CityId) {
    match ep {
        Endpoint::Host(id) => {
            let h = world.host(id);
            (h.asn, h.city)
        }
        Endpoint::Router(asn, city) => (asn, city),
    }
}

#[inline]
fn pack(asn: AsId, city: CityId) -> u64 {
    (asn.0 as u64) << 32 | city.0 as u64
}

/// Precomputed trigonometry for a point, replaying `GeoPoint::distance`
/// bit-for-bit (`to_radians` and `cos` are deterministic, so hoisting them
/// changes nothing).
#[derive(Debug, Clone, Copy)]
struct PointTrig {
    lat_rad: f64,
    lon_rad: f64,
    cos_lat: f64,
}

impl PointTrig {
    fn of(p: &geo_model::point::GeoPoint) -> PointTrig {
        let lat_rad = p.lat().to_radians();
        PointTrig {
            lat_rad,
            lon_rad: p.lon().to_radians(),
            cos_lat: lat_rad.cos(),
        }
    }
}

/// Haversine between two precomputed points; the exact expression
/// sequence of `GeoPoint::distance`, minus the re-derived trig.
// geo-lint: hot-path
#[inline]
fn distance_km(a: &PointTrig, b: &PointTrig) -> f64 {
    let dlat = b.lat_rad - a.lat_rad;
    let dlon = b.lon_rad - a.lon_rad;
    let h = (dlat / 2.0).sin().powi(2) + a.cos_lat * b.cos_lat * (dlon / 2.0).sin().powi(2);
    let c = 2.0 * h.sqrt().clamp(0.0, 1.0).asin();
    EARTH_RADIUS_KM * c
}

/// Router-waypoint constants: the symmetric link-key tag and the
/// trigonometry of the router's physical location.
#[derive(Debug, Clone, Copy)]
struct WpInfo {
    tag: u64,
    trig: PointTrig,
}

impl WpInfo {
    fn of(world: &World, asn: AsId, city: CityId) -> WpInfo {
        let wp = Waypoint { asn, city };
        WpInfo {
            tag: delay::waypoint_tag(&wp),
            trig: PointTrig::of(&wp.location(world)),
        }
    }
}

/// The middle-link addends of one attach-pair direction: `route::synthesize`
/// emits at most four waypoints, so at most three PoP-to-PoP links.
#[derive(Debug, Clone, Copy)]
struct DirSeq {
    mids: [f64; 3],
    len: u8,
}

/// Both directions of an unordered attach pair: `fwd` is low→high attach
/// index. Hop processing is a parameter constant, so only the link delays
/// are stored; the fold re-interleaves them in the reference order.
#[derive(Debug, Clone, Copy)]
struct PairSeq {
    fwd: DirSeq,
    rev: DirSeq,
}

/// Dense per-world lookup lanes, built once on first use. All tables key
/// on world entity ids: one `Network` must not be reused across
/// differently-generated worlds.
#[derive(Debug)]
struct WorldLane {
    n_cities: usize,
    /// Per-city trig of city centers (detour replays in
    /// `best_shared_pop`).
    city_trig: Vec<PointTrig>,
    /// `has_pop` bitset over `as_index * n_cities + city_index`.
    pop_bits: Vec<u64>,
    /// CSR offsets into `pop_city`/`wp`, one slice per AS. A dense
    /// `(asn, city)` table at world scale is tens of megabytes of
    /// mostly-`MAX` entries, and every lookup through it is a cache miss;
    /// the CSR form is under a megabyte total, so the footprints of the
    /// ASes a campaign actually routes through stay cache-resident.
    pop_off: Vec<u32>,
    /// Each AS's PoP cities, sorted (and deduplicated) within its slice.
    pop_city: Vec<u32>,
    /// Waypoint constants, parallel to `pop_city`.
    wp: Vec<WpInfo>,
    /// `World::nearest_pop` results: one lazily-allocated row per AS
    /// (`city.0 + 1`, zero = not yet computed). Only transit-path ASes are
    /// ever queried, so almost no rows materialize. Racing fills recompute
    /// identical values.
    nearest: Vec<OnceLock<Box<[AtomicU32]>>>,
    /// Each host's attach index (into `attaches`).
    host_attach: Vec<u32>,
    /// Distinct host attachment PoPs.
    attaches: Vec<(AsId, CityId)>,
}

impl WorldLane {
    // geo-lint: allow(P1T, reason = "one-time lazy construction behind OnceLock; amortized across the whole campaign, never re-entered")
    fn build(world: &World) -> WorldLane {
        let n_cities = world.cities.len();
        let n_as = world.ases.len();
        let city_trig: Vec<PointTrig> = world
            .cities
            .iter()
            .map(|c| PointTrig::of(&c.center))
            .collect();
        let mut pop_bits = vec![0u64; (n_as * n_cities).div_ceil(64)];
        let mut pop_off = Vec::with_capacity(n_as + 1);
        let mut pop_city: Vec<u32> = Vec::new();
        let mut wp = Vec::new();
        let mut cities: Vec<u32> = Vec::new();
        pop_off.push(0);
        for a in &world.ases {
            cities.clear();
            cities.extend(a.pops.iter().map(|c| c.0));
            cities.sort_unstable();
            cities.dedup();
            for &c in &cities {
                let k = a.id.index() * n_cities + c as usize;
                pop_bits[k / 64] |= 1u64 << (k % 64);
                pop_city.push(c);
                wp.push(WpInfo::of(world, a.id, CityId(c)));
            }
            pop_off.push(pop_city.len() as u32);
        }
        let mut attach_of: MixMap<u64, u32> = MixMap::default();
        let mut attaches: Vec<(AsId, CityId)> = Vec::new();
        let host_attach = world
            .hosts
            .iter()
            .map(|h| {
                *attach_of.entry(pack(h.asn, h.city)).or_insert_with(|| {
                    attaches.push((h.asn, h.city));
                    (attaches.len() - 1) as u32
                })
            })
            .collect();
        WorldLane {
            n_cities,
            city_trig,
            pop_bits,
            pop_off,
            pop_city,
            nearest: (0..n_as).map(|_| OnceLock::new()).collect(),
            host_attach,
            attaches,
            wp,
        }
    }

    // geo-lint: hot-path
    #[inline]
    fn has_pop(&self, asn: AsId, city: CityId) -> bool {
        let k = asn.index() * self.n_cities + city.index();
        self.pop_bits[k / 64] >> (k % 64) & 1 == 1
    }

    /// The nearest-PoP memo row for an AS, allocated on the AS's first
    /// query (cold path: a handful of transit ASes per world).
    fn nearest_row(&self, asn: AsId) -> &[AtomicU32] {
        self.nearest[asn.index()].get_or_init(|| {
            (0..self.n_cities)
                .map(|_| AtomicU32::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        })
    }

    /// Memoized `World::nearest_pop` (a dot-product scan over the AS's
    /// footprint — transit ASes have hundreds of PoPs).
    // geo-lint: hot-path
    #[inline]
    fn nearest_pop(&self, world: &World, asn: AsId, city: CityId) -> CityId {
        let slot = &self.nearest_row(asn)[city.index()];
        let v = slot.load(Ordering::Relaxed);
        if v != 0 {
            return CityId(v - 1);
        }
        let c = world.nearest_pop(asn, city);
        slot.store(c.0 + 1, Ordering::Relaxed);
        c
    }
}

/// Memoized route synthesis and deterministic delay composition.
///
/// All tables are lazily filled and shared across clones of a [`Network`]
/// (`crate::Network`); racing fills recompute identical values, so the
/// cache can never perturb a measurement.
#[derive(Debug)]
pub struct RouteCache {
    /// Per-host first/last-link delay bits, indexed by `HostId`; zero means
    /// "not yet computed" (real access links are strictly positive — the
    /// metro detour alone guarantees it for co-located endpoints).
    access: OnceLock<Vec<AtomicU64>>,
    /// Delay of a router's zero-length link to its own PoP: distance zero,
    /// so exactly the metro detour. Heads every `Endpoint::Router` path.
    router_self_ms: f64,
    /// Dense per-world lookup lanes.
    lane: OnceLock<WorldLane>,
    /// Waypoint constants for non-PoP waypoints (hosts attached where
    /// their AS has no registered PoP; rare).
    virt: RwLock<MixMap<u64, WpInfo>>,
    /// Middle-link addend sequences per unordered host attach pair.
    pairs: Vec<RwLock<MixMap<u64, PairSeq>>>,
}

impl RouteCache {
    /// An empty cache for a simulator with the given parameters.
    pub fn new(params: &NetParams) -> RouteCache {
        // Any point works: the link has zero length, so only the metro
        // detour survives.
        let origin = geo_model::point::GeoPoint::new(0.0, 0.0);
        RouteCache {
            access: OnceLock::new(),
            router_self_ms: delay::link_delay(params, &origin, &origin, 0).value(),
            lane: OnceLock::new(),
            virt: RwLock::new(MixMap::default()),
            pairs: (0..PAIR_SHARDS)
                .map(|_| RwLock::new(MixMap::default()))
                .collect(),
        }
    }

    fn lane(&self, world: &World) -> &WorldLane {
        self.lane.get_or_init(|| WorldLane::build(world))
    }

    // geo-lint: allow(P1T, reason = "one-time lazy allocation behind OnceLock; later calls only read the memo")
    fn access_lane(&self, world: &World) -> &[AtomicU64] {
        self.access
            .get_or_init(|| (0..world.hosts.len()).map(|_| AtomicU64::new(0)).collect())
    }

    /// The delay of a host's access link (host to its attachment PoP) —
    /// both the first link of every path leaving it and the last link of
    /// every path reaching it, since `route::synthesize` pins the boundary
    /// waypoints to the endpoint attachments.
    // geo-lint: hot-path
    fn access_ms(&self, world: &World, params: &NetParams, id: HostId) -> f64 {
        let lane = self.access_lane(world);
        match lane.get(id.index()) {
            Some(slot) => {
                let bits = slot.load(Ordering::Relaxed);
                if bits != 0 {
                    return f64::from_bits(bits);
                }
                let v = compute_access_ms(world, params, id);
                slot.store(v.to_bits(), Ordering::Relaxed);
                v
            }
            // Host added after the lane was sized (a later `add_web_server`):
            // stay correct, just unmemoized.
            None => compute_access_ms(world, params, id),
        }
    }

    /// Waypoint constants for a (possibly virtual) PoP.
    // geo-lint: hot-path
    fn wp_info(&self, world: &World, lane: &WorldLane, asn: AsId, city: CityId) -> WpInfo {
        let s = lane.pop_off[asn.index()] as usize;
        let e = lane.pop_off[asn.index() + 1] as usize;
        if let Ok(pos) = lane.pop_city[s..e].binary_search(&city.0) {
            return lane.wp[s + pos];
        }
        let key = pack(asn, city);
        if let Some(&info) = self.virt.read().expect("virt memo poisoned").get(&key) {
            return info;
        }
        let info = WpInfo::of(world, asn, city);
        self.virt
            .write()
            .expect("virt memo poisoned")
            .insert(key, info);
        info
    }

    /// The delay of the link between two adjacent PoP waypoints, computed
    /// fresh from precomputed waypoint constants — an exact replay of
    /// `delay::link_delay` (distance, cable inflation, metro detour), and
    /// cheaper than a memo lookup at the key cardinalities involved.
    // geo-lint: hot-path
    fn mid_ms(
        &self,
        world: &World,
        params: &NetParams,
        lane: &WorldLane,
        a: (AsId, CityId),
        b: (AsId, CityId),
    ) -> f64 {
        let wa = self.wp_info(world, lane, a.0, a.1);
        let wb = self.wp_info(world, lane, b.0, b.1);
        let key = delay::link_key(wa.tag, wb.tag);
        let dist = distance_km(&wa.trig, &wb.trig);
        // `delay::inflation`, inlined with the compile-time domain hash.
        let h = splitmix64(key ^ H_CABLE);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let base = params.cable_inflation_min
            + u * (params.cable_inflation_max - params.cable_inflation_min);
        let u2 = ((splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64) * 0.5 + 0.5;
        let inflation = base + params.short_haul_inflation * u2 * (-dist / 800.0).exp();
        let mut ms = dist * inflation / params.km_per_ms();
        if dist < 30.0 {
            ms += params.metro_detour_ms;
        }
        ms
    }

    /// The first/last link delay for an endpoint.
    // geo-lint: hot-path
    fn endpoint_ms(&self, world: &World, params: &NetParams, ep: Endpoint) -> f64 {
        match ep {
            Endpoint::Host(id) => self.access_ms(world, params, id),
            Endpoint::Router(..) => self.router_self_ms,
        }
    }

    /// `route::best_shared_pop`, with PoP membership resolved through the
    /// dense bitset and the detour distances through precomputed city trig.
    /// The scan order (and so the first-minimum tie-break) matches the
    /// reference exactly.
    // geo-lint: hot-path
    fn best_shared_pop(
        &self,
        world: &World,
        lane: &WorldLane,
        a: AsId,
        b: AsId,
        src_city: CityId,
        dst_city: CityId,
    ) -> Option<CityId> {
        // Same scan/other resolution as the reference: scan the smaller
        // footprint, membership-test against the other.
        let (scan, other) = if world.asn(a).pops.len() <= world.asn(b).pops.len() {
            (a, b)
        } else {
            (b, a)
        };
        let src_t = &lane.city_trig[src_city.index()];
        let dst_t = &lane.city_trig[dst_city.index()];
        let mut best: Option<(CityId, f64)> = None;
        for &c in &world.asn(scan).pops {
            if !lane.has_pop(other, c) {
                continue;
            }
            let t = &lane.city_trig[c.index()];
            let detour = distance_km(src_t, t) + distance_km(t, dst_t);
            if best.is_none_or(|(_, d)| detour < d) {
                best = Some((c, detour));
            }
        }
        best.map(|(c, _)| c)
    }

    /// The waypoint list `route::synthesize` would emit between two
    /// attachment PoPs.
    // geo-lint: hot-path
    fn shape_of(
        &self,
        world: &World,
        params: &NetParams,
        lane: &WorldLane,
        (src_as, src_city): (AsId, CityId),
        (dst_as, dst_city): (AsId, CityId),
    ) -> PathShape {
        let mut s = PathShape::new();
        s.push(src_as, src_city);
        if src_as == dst_as {
            s.push(src_as, dst_city);
        } else if lane.has_pop(dst_as, src_city) {
            s.push(dst_as, src_city);
            s.push(dst_as, dst_city);
        } else if lane.has_pop(src_as, dst_city) {
            s.push(src_as, dst_city);
            s.push(dst_as, dst_city);
        } else if let Some(meet) =
            self.best_shared_pop(world, lane, src_as, dst_as, src_city, dst_city)
        {
            s.push(src_as, meet);
            s.push(dst_as, meet);
            s.push(dst_as, dst_city);
        } else {
            let transit = route::pick_transit(world, params, src_as, dst_as);
            let t_in = lane.nearest_pop(world, transit, src_city);
            let t_out = lane.nearest_pop(world, transit, dst_city);
            s.push(transit, t_in);
            if t_out != t_in {
                s.push(transit, t_out);
            }
            s.push(dst_as, dst_city);
        }
        s
    }

    /// The waypoint list `route::synthesize` would emit for this pair,
    /// computed allocation-free with dense lanes. Property-tested equal
    /// in `tests/hotpath_equivalence.rs`.
    // geo-lint: hot-path
    pub fn shape(
        &self,
        world: &World,
        params: &NetParams,
        src: Endpoint,
        dst: Endpoint,
    ) -> PathShape {
        let lane = self.lane(world);
        self.shape_of(world, params, lane, attach(world, src), attach(world, dst))
    }

    /// The middle-link addends of one direction between two attaches.
    // geo-lint: hot-path
    fn dir_seq(
        &self,
        world: &World,
        params: &NetParams,
        lane: &WorldLane,
        from: (AsId, CityId),
        to: (AsId, CityId),
    ) -> DirSeq {
        let shape = self.shape_of(world, params, lane, from, to);
        let wps = shape.waypoints();
        let mut mids = [0.0f64; 3];
        let mut len = 0u8;
        for w in wps.windows(2) {
            mids[len as usize] = self.mid_ms(world, params, lane, w[0], w[1]);
            len += 1;
        }
        DirSeq { mids, len }
    }

    /// One-way delay along a shape, replaying the exact addition order of
    /// `delay::one_way_delay`: first link, then per waypoint (processing,
    /// next link), then the final link.
    // geo-lint: hot-path
    pub fn one_way_ms(
        &self,
        world: &World,
        params: &NetParams,
        src: Endpoint,
        dst: Endpoint,
        shape: &PathShape,
    ) -> f64 {
        let lane = self.lane(world);
        let wps = shape.waypoints();
        let mut total = 0.0f64;
        total += self.endpoint_ms(world, params, src);
        total += params.hop_processing_ms;
        for w in wps.windows(2) {
            total += self.mid_ms(world, params, lane, w[0], w[1]);
            total += params.hop_processing_ms;
        }
        total += self.endpoint_ms(world, params, dst);
        total
    }

    /// Folds one direction's addends in the reference order: access link,
    /// then per waypoint (processing, next link), then the far access link.
    // geo-lint: hot-path
    #[inline]
    fn fold(&self, params: &NetParams, access_src: f64, seq: &DirSeq, access_dst: f64) -> f64 {
        let mut total = 0.0f64;
        total += access_src;
        total += params.hop_processing_ms;
        for i in 0..seq.len as usize {
            total += seq.mids[i];
            total += params.hop_processing_ms;
        }
        total += access_dst;
        total
    }

    /// Base (jitter-free) RTT between two hosts: forward plus reverse
    /// one-way delay, identical bits to `measure::base_rtt`. The middle
    /// addends of both directions are memoized per unordered attach pair;
    /// only the two per-host access constants and the fold differ between
    /// host pairs behind the same attachments.
    // geo-lint: hot-path
    pub fn base_rtt_ms(&self, world: &World, params: &NetParams, src: HostId, dst: HostId) -> f64 {
        let lane = self.lane(world);
        let (Some(&ai), Some(&bi)) = (
            lane.host_attach.get(src.index()),
            lane.host_attach.get(dst.index()),
        ) else {
            // Host added after the lane was sized: full uncached replay.
            let fwd = self.shape(world, params, Endpoint::Host(src), Endpoint::Host(dst));
            let rev = self.shape(world, params, Endpoint::Host(dst), Endpoint::Host(src));
            return self.one_way_ms(
                world,
                params,
                Endpoint::Host(src),
                Endpoint::Host(dst),
                &fwd,
            ) + self.one_way_ms(
                world,
                params,
                Endpoint::Host(dst),
                Endpoint::Host(src),
                &rev,
            );
        };
        let seq = self.pair_seq(world, params, lane, ai, bi);
        let (f, r) = if ai <= bi {
            (&seq.fwd, &seq.rev)
        } else {
            (&seq.rev, &seq.fwd)
        };
        let sa = self.access_ms(world, params, src);
        let sb = self.access_ms(world, params, dst);
        self.fold(params, sa, f, sb) + self.fold(params, sb, r, sa)
    }

    /// The memoized middle addends of the unordered attach pair
    /// `(ai, bi)`: `fwd` is always the low→high direction.
    // geo-lint: hot-path
    fn pair_seq(
        &self,
        world: &World,
        params: &NetParams,
        lane: &WorldLane,
        ai: u32,
        bi: u32,
    ) -> PairSeq {
        let (lo, hi) = if ai <= bi { (ai, bi) } else { (bi, ai) };
        let key = (lo as u64) << 32 | hi as u64;
        let shard = &self.pairs[(splitmix64(key) >> 58) as usize & (PAIR_SHARDS - 1)];
        let seq = {
            let memo = shard.read().expect("pair shard poisoned");
            memo.get(&key).copied()
        };
        match seq {
            Some(s) => s,
            None => {
                let a = lane.attaches[lo as usize];
                let b = lane.attaches[hi as usize];
                let s = PairSeq {
                    fwd: self.dir_seq(world, params, lane, a, b),
                    rev: self.dir_seq(world, params, lane, b, a),
                };
                shard.write().expect("pair shard poisoned").insert(key, s);
                s
            }
        }
    }

    /// Cumulative delays to each waypoint (traceroute hop timing),
    /// replaying `delay::cumulative_delays` into a caller-owned buffer.
    pub fn cumulative_ms(
        &self,
        world: &World,
        params: &NetParams,
        src: Endpoint,
        shape: &PathShape,
        out: &mut Vec<Ms>,
    ) {
        out.clear();
        let lane = self.lane(world);
        let wps = shape.waypoints();
        if wps.is_empty() {
            return;
        }
        let mut total = 0.0f64;
        total += self.endpoint_ms(world, params, src);
        total += params.hop_processing_ms;
        out.push(Ms(total));
        for w in wps.windows(2) {
            total += self.mid_ms(world, params, lane, w[0], w[1]);
            total += params.hop_processing_ms;
            out.push(Ms(total));
        }
    }
}

/// Per-target constants for a bulk campaign: everything `ping_min_once`
/// re-derives per call (`host_by_ip`, last-mile profile, access delay,
/// attach index) resolved once per target column.
#[derive(Debug)]
pub struct TargetLane {
    cols: Vec<TargetCol>,
}

impl TargetLane {
    /// Number of target columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when the lane has no targets.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
struct TargetCol {
    host: HostId,
    ip: Ipv4,
    last_mile: LastMile,
    /// Attach index into the world lane, `u32::MAX` if the host was added
    /// after the lane was sized (falls back to `base_rtt_ms` per cell).
    attach: u32,
    /// The host's access-link delay (first/last addend of its base RTT).
    access: f64,
}

/// Reusable per-worker scratch for [`RouteCache::base_row`]: the oriented
/// middle-addend sequences of one source attach against every target
/// column. Rows from sources behind the same attach reuse the filled
/// scratch, so grouping rows by attach amortizes the pair-memo lookups.
///
/// A scratch is only meaningful against the [`TargetLane`] it was last
/// filled for; use a fresh scratch per campaign.
#[derive(Debug)]
pub struct RowScratch {
    /// Source attach index the sequences are oriented for (`u32::MAX` =
    /// unfilled).
    attach: u32,
    /// Per column: (src→target, target→src) middle addends.
    seqs: Vec<(DirSeq, DirSeq)>,
}

impl RowScratch {
    /// An unfilled scratch.
    pub fn new() -> RowScratch {
        RowScratch {
            attach: u32::MAX,
            seqs: Vec::new(),
        }
    }
}

impl Default for RowScratch {
    fn default() -> RowScratch {
        RowScratch::new()
    }
}

impl RouteCache {
    /// Resolves per-target constants for a campaign against `targets`.
    pub fn target_lane(&self, world: &World, params: &NetParams, targets: &[HostId]) -> TargetLane {
        let lane = self.lane(world);
        TargetLane {
            cols: targets
                .iter()
                .map(|&id| {
                    let h = world.host(id);
                    TargetCol {
                        host: id,
                        ip: h.ip,
                        last_mile: h.last_mile,
                        attach: lane
                            .host_attach
                            .get(id.index())
                            .copied()
                            .unwrap_or(u32::MAX),
                        access: self.access_ms(world, params, id),
                    }
                })
                .collect(),
        }
    }

    /// (Re)fills `scratch` with the oriented pair sequences of attach `ai`
    /// against every target column.
    ///
    /// Computes each [`DirSeq`] directly instead of going through the
    /// sharded pair memo: a campaign visits each (source attach, target
    /// attach) pair only a handful of times, and the scratch itself
    /// provides that reuse, so the memo's hundreds of megabytes of
    /// insert-once entries would cost far more in DRAM traffic than they
    /// save. `dir_seq` is a pure function of the attach pair, so the
    /// addends are bit-identical to what the memo would return.
    fn fill_scratch(
        &self,
        world: &World,
        params: &NetParams,
        targets: &TargetLane,
        scratch: &mut RowScratch,
        ai: u32,
    ) {
        let lane = self.lane(world);
        let a = lane.attaches[ai as usize];
        scratch.seqs.clear();
        for col in &targets.cols {
            if col.attach == u32::MAX {
                let empty = DirSeq {
                    mids: [0.0; 3],
                    len: 0,
                };
                scratch.seqs.push((empty, empty));
                continue;
            }
            let b = lane.attaches[col.attach as usize];
            scratch.seqs.push((
                self.dir_seq(world, params, lane, a, b),
                self.dir_seq(world, params, lane, b, a),
            ));
        }
        scratch.attach = ai;
    }

    /// One campaign row: the base RTT from `src` to every target column,
    /// bit-identical to calling [`RouteCache::base_rtt_ms`] per target.
    /// `emit(col, base, ip, last_mile)` receives each column in order,
    /// skipping `skip` (a self-measurement diagonal).
    ///
    /// The fold per cell reads the scratch sequentially (L2-resident for
    /// campaign-sized target lists) instead of probing the sharded pair
    /// memo per call; sources behind the attach the scratch is already
    /// filled for skip the memo entirely.
    // geo-lint: hot-path
    #[allow(clippy::too_many_arguments)]
    pub fn base_row(
        &self,
        world: &World,
        params: &NetParams,
        targets: &TargetLane,
        scratch: &mut RowScratch,
        src: HostId,
        skip: Option<usize>,
        mut emit: impl FnMut(usize, Ms, Ipv4, LastMile),
    ) {
        let lane = self.lane(world);
        let ai = lane.host_attach.get(src.index()).copied();
        match ai {
            Some(ai) => {
                if scratch.attach != ai {
                    self.fill_scratch(world, params, targets, scratch, ai);
                }
                let sa = self.access_ms(world, params, src);
                for (c, col) in targets.cols.iter().enumerate() {
                    if skip == Some(c) {
                        continue;
                    }
                    let base = if col.attach == u32::MAX {
                        self.base_rtt_ms(world, params, src, col.host)
                    } else {
                        let (f, r) = &scratch.seqs[c];
                        self.fold(params, sa, f, col.access) + self.fold(params, col.access, r, sa)
                    };
                    emit(c, Ms(base), col.ip, col.last_mile);
                }
            }
            // Source beyond the lane (added after sizing): per-cell replay.
            None => {
                for (c, col) in targets.cols.iter().enumerate() {
                    if skip == Some(c) {
                        continue;
                    }
                    let base = self.base_rtt_ms(world, params, src, col.host);
                    emit(c, Ms(base), col.ip, col.last_mile);
                }
            }
        }
    }

    /// The attach-group key of a host: rows of a campaign sorted by this
    /// key maximize [`RowScratch`] reuse (hosts behind the same attachment
    /// PoP share every pair sequence). Hosts beyond the lane sort last.
    pub fn attach_group(&self, world: &World, id: HostId) -> u32 {
        let lane = self.lane(world);
        lane.host_attach
            .get(id.index())
            .copied()
            .unwrap_or(u32::MAX)
    }
}

fn compute_access_ms(world: &World, params: &NetParams, id: HostId) -> f64 {
    let h = world.host(id);
    let wp = Waypoint {
        asn: h.asn,
        city: h.city,
    };
    delay::link_delay(
        params,
        &h.location,
        &wp.location(world),
        delay::link_key(
            delay::endpoint_tag(Endpoint::Host(id)),
            delay::waypoint_tag(&wp),
        ),
    )
    .value()
}

/// Precomputed per-packet noise distributions. The reference path
/// (`delay::jitter`, `delay::last_mile`, `delay::icmp_slowpath`)
/// reconstructs each lognormal — including an `ln()` — per packet;
/// the distributions are plain `{mu, sigma}` data, so hoisting them
/// preserves every sampled bit.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    loss_rate: f64,
    hop_unresponsive_rate: f64,
    /// `None` replays the `median <= 0.0` zero-jitter gate.
    jitter: Option<LogNormal>,
    /// `None` replays the `median <= 0.0` zero-slow-path gate.
    icmp: Option<LogNormal>,
    /// `LastMile::Negligible` delay distribution.
    negligible: LogNormal,
    /// Multiplicative variation around `LastMile::Access` line delay.
    access_var: LogNormal,
}

impl NoiseModel {
    /// Precomputes the noise distributions for the given parameters.
    pub fn new(params: &NetParams) -> NoiseModel {
        NoiseModel {
            loss_rate: params.loss_rate,
            hop_unresponsive_rate: params.hop_unresponsive_rate,
            jitter: (params.jitter_median_ms > 0.0)
                .then(|| LogNormal::with_median(params.jitter_median_ms, params.jitter_sigma)),
            icmp: (params.icmp_slowpath_median_ms > 0.0).then(|| {
                LogNormal::with_median(params.icmp_slowpath_median_ms, params.icmp_slowpath_sigma)
            }),
            negligible: LogNormal::with_median(0.08, 0.6),
            access_var: LogNormal::new(0.0, 0.12),
        }
    }

    /// `delay::unit_sample` with a precomputed domain hash.
    // geo-lint: hot-path
    #[inline]
    fn unit(seed: Seed, key: u64, domain_hash: u64) -> f64 {
        let h = splitmix64(seed.0 ^ splitmix64(key ^ domain_hash));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Per-packet jitter (bit-identical to `delay::jitter`).
    // geo-lint: hot-path
    pub fn jitter(&self, seed: Seed, key: u64) -> Ms {
        match &self.jitter {
            None => Ms::ZERO,
            Some(d) => {
                let mut rng = KeyRng::new(seed.0 ^ splitmix64(key ^ H_JITTER));
                Ms(d.sample(&mut rng))
            }
        }
    }

    /// Per-reply ICMP slow-path delay (`delay::icmp_slowpath`).
    // geo-lint: hot-path
    pub fn icmp_slowpath(&self, seed: Seed, key: u64) -> Ms {
        match &self.icmp {
            None => Ms::ZERO,
            Some(d) => {
                let mut rng = KeyRng::new(seed.0 ^ splitmix64(key ^ H_ICMP));
                Ms(d.sample(&mut rng))
            }
        }
    }

    /// Per-packet last-mile sample (`delay::last_mile`).
    // geo-lint: hot-path
    pub fn last_mile(&self, profile: LastMile, seed: Seed, key: u64) -> Ms {
        let mut rng = KeyRng::new(seed.0 ^ splitmix64(key ^ H_LAST_MILE));
        match profile {
            LastMile::Negligible => Ms(self.negligible.sample(&mut rng)),
            LastMile::Access { mean_ms } => Ms(mean_ms * self.access_var.sample(&mut rng)),
        }
    }

    /// Whether a traceroute hop answers (`delay::unit_sample` gate).
    // geo-lint: hot-path
    pub fn hop_responds(&self, seed: Seed, hop_key: u64) -> bool {
        NoiseModel::unit(seed, hop_key, H_HOP_RESPONDS) >= self.hop_unresponsive_rate
    }

    /// One packet's outcome on top of a known base RTT, with the endpoint
    /// last-mile profiles hoisted out of the per-packet loop
    /// (`measure::packet_outcome` re-reads them per packet; the values are
    /// per-host constants).
    // geo-lint: hot-path
    pub fn packet(
        &self,
        seed: Seed,
        src_lm: LastMile,
        dst_lm: LastMile,
        base: Ms,
        key: u64,
    ) -> PingOutcome {
        if NoiseModel::unit(seed, key, H_LOSS) < self.loss_rate {
            return PingOutcome::Timeout;
        }
        let src_lm = self.last_mile(src_lm, seed, key ^ 0x51);
        let dst_lm = self.last_mile(dst_lm, seed, key ^ 0xD5);
        let j = self.jitter(seed, key);
        PingOutcome::Reply(base + src_lm + dst_lm + j)
    }

    /// Minimum RTT over `count` packets (`measure::ping_min_with_base`).
    // geo-lint: hot-path
    #[allow(clippy::too_many_arguments)]
    pub fn ping_min(
        &self,
        seed: Seed,
        src: HostId,
        dst: Ipv4,
        src_lm: LastMile,
        dst_lm: LastMile,
        base: Ms,
        count: usize,
        nonce: u64,
    ) -> PingOutcome {
        let mut best: Option<Ms> = None;
        for i in 0..count {
            let key = measure::measurement_key(src, dst, splitmix64(nonce ^ i as u64));
            if let PingOutcome::Reply(ms) = self.packet(seed, src_lm, dst_lm, base, key) {
                best = Some(match best {
                    Some(b) => b.min(ms),
                    None => ms,
                });
            }
        }
        match best {
            Some(ms) => PingOutcome::Reply(ms),
            None => PingOutcome::Timeout,
        }
    }
}
