//! Sharded memoization of the jitter-free base RTT.
//!
//! [`measure::base_rtt`](crate::measure::base_rtt) synthesizes the forward
//! and reverse router-level paths and sums their one-way delays — the
//! expensive, deterministic, "bulk-cacheable" part of every ping. The bulk
//! campaigns hammer the same endpoint pairs repeatedly (the representative
//! campaign pings each pair three times per nonce; Figure 2's random
//! subsets re-read the same probe→anchor pairs across 100 trials), so
//! [`BaseDelayCache`] memoizes the value per unordered endpoint pair.
//!
//! Design notes:
//!
//! - **Unordered key.** `base_rtt(a, b) == base_rtt(b, a)` by construction
//!   (it is the sum of both directions), so keys are normalized to
//!   `(min, max)` and the meshed anchor campaign's `i→j` and `j→i`
//!   measurements share one entry.
//! - **Sharding.** The map is split across [`SHARDS`] `RwLock`ed shards
//!   indexed by a hash of the pair, so parallel campaign workers contend
//!   only on insert and almost never on the read path (read-mostly after
//!   warm-up).
//! - **Determinism.** The cached value is a pure function of the key; if
//!   two threads race on a miss they compute and store identical values,
//!   so caching can never perturb a measurement.
//! - **Observability.** Hit/miss counters (relaxed atomics) make the
//!   speedup measurable; see [`CacheStats`].
//!
//! Only `std::sync` primitives are used, per the workspace's
//! zero-external-dependency rule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;
use world_sim::ids::HostId;

/// Number of independent shards (power of two; indexed by key hash).
pub const SHARDS: usize = 64;

/// Hit/miss counters of a [`BaseDelayCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then stored) the value.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, read-mostly memo table for base (jitter-free) RTTs, in
/// milliseconds, keyed by unordered host pair.
#[derive(Debug)]
pub struct BaseDelayCache {
    shards: Vec<RwLock<HashMap<(HostId, HostId), f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BaseDelayCache {
    fn default() -> BaseDelayCache {
        BaseDelayCache::new()
    }
}

impl BaseDelayCache {
    /// An empty cache.
    pub fn new() -> BaseDelayCache {
        BaseDelayCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn key(a: HostId, b: HostId) -> (HostId, HostId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    #[inline]
    fn shard(key: (HostId, HostId)) -> usize {
        // splitmix-style avalanche over the packed pair.
        let mut x = (key.0 .0 as u64) << 32 | key.1 .0 as u64;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x >> 58) as usize & (SHARDS - 1)
    }

    /// The memoized value for `(a, b)`, computing it with `compute` on a
    /// miss. `compute` must be a pure function of the pair.
    pub fn get_or_compute(&self, a: HostId, b: HostId, compute: impl FnOnce() -> f64) -> f64 {
        let key = BaseDelayCache::key(a, b);
        let shard = &self.shards[BaseDelayCache::shard(key)];
        if let Some(&v) = shard.read().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        shard.write().expect("cache shard poisoned").insert(key, v);
        v
    }

    /// Current counters and size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard poisoned").len())
                .sum(),
        }
    }

    /// Drops all entries and resets the counters (for cold-cache benches).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_and_counts() {
        let c = BaseDelayCache::new();
        let mut computed = 0;
        let v1 = c.get_or_compute(HostId(1), HostId(2), || {
            computed += 1;
            42.5
        });
        let v2 = c.get_or_compute(HostId(1), HostId(2), || {
            computed += 1;
            f64::NAN // would poison the result if ever called
        });
        assert_eq!(v1, 42.5);
        assert_eq!(v2, 42.5);
        assert_eq!(computed, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_is_unordered() {
        let c = BaseDelayCache::new();
        c.get_or_compute(HostId(7), HostId(3), || 9.0);
        let v = c.get_or_compute(HostId(3), HostId(7), || unreachable!("must hit"));
        assert_eq!(v, 9.0);
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn clear_resets_everything() {
        let c = BaseDelayCache::new();
        c.get_or_compute(HostId(1), HostId(2), || 1.0);
        c.clear();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn distinct_pairs_do_not_collide() {
        let c = BaseDelayCache::new();
        for i in 0..500u32 {
            c.get_or_compute(HostId(i), HostId(i + 1), || i as f64);
        }
        for i in 0..500u32 {
            let v = c.get_or_compute(HostId(i), HostId(i + 1), || unreachable!("must hit"));
            assert_eq!(v, i as f64);
        }
        assert_eq!(c.stats().entries, 500);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = BaseDelayCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..200u32 {
                        let v = c
                            .get_or_compute(HostId(i % 50), HostId(i % 50 + 1), || (i % 50) as f64);
                        assert_eq!(v, (i % 50) as f64);
                    }
                });
            }
        });
        assert_eq!(c.stats().entries, 50);
    }
}
