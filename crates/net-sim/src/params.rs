//! Simulator parameters.

/// Tunable parameters of the network simulator. Defaults are calibrated so
/// the replication's headline shapes emerge (see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct NetParams {
    /// Signal propagation speed as a fraction of c (fiber ≈ 2/3).
    pub fiber_fraction_of_c: f64,
    /// Minimum cable inflation over the geodesic (≥ 1 keeps 2/3 c
    /// constraints sound).
    pub cable_inflation_min: f64,
    /// Maximum cable inflation over the geodesic.
    pub cable_inflation_max: f64,
    /// Extra inflation applied to short links, decaying with distance
    /// (e-folding 800 km): local detours dominate short paths.
    pub short_haul_inflation: f64,
    /// Extra fixed delay for short (< 30 km) metro links, ms — local loops
    /// are never geodesic.
    pub metro_detour_ms: f64,
    /// Per-router processing/queueing delay, ms (one way, per hop).
    pub hop_processing_ms: f64,
    /// Median of the per-packet lognormal jitter, ms.
    pub jitter_median_ms: f64,
    /// Log-scale sigma of the jitter.
    pub jitter_sigma: f64,
    /// Probability that a single ping packet is lost.
    pub loss_rate: f64,
    /// Probability that a traceroute hop does not answer.
    pub hop_unresponsive_rate: f64,
    /// Median of the ICMP slow-path delay routers add when generating
    /// TTL-exceeded replies (control-plane processing), ms. Applies to
    /// traceroute hop RTTs only — the physical reason `D1 + D2` delay
    /// differences go negative (Fig. 6a).
    pub icmp_slowpath_median_ms: f64,
    /// Log-scale sigma of the ICMP slow-path delay.
    pub icmp_slowpath_sigma: f64,
    /// Probability that the reverse direction picks a different transit AS
    /// than the forward direction (routing asymmetry).
    pub asymmetry_rate: f64,
    /// Gamma shape for last-mile delay samples.
    pub last_mile_shape: f64,
}

impl Default for NetParams {
    fn default() -> NetParams {
        NetParams {
            fiber_fraction_of_c: 2.0 / 3.0,
            cable_inflation_min: 1.45,
            cable_inflation_max: 2.20,
            short_haul_inflation: 0.8,
            metro_detour_ms: 0.04,
            hop_processing_ms: 0.05,
            jitter_median_ms: 0.12,
            jitter_sigma: 0.6,
            loss_rate: 0.01,
            hop_unresponsive_rate: 0.12,
            icmp_slowpath_median_ms: 0.35,
            icmp_slowpath_sigma: 1.1,
            asymmetry_rate: 0.55,
            last_mile_shape: 2.0,
        }
    }
}

impl NetParams {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.fiber_fraction_of_c) || self.fiber_fraction_of_c <= 0.0 {
            return Err("fiber fraction must be in (0,1]".into());
        }
        if self.cable_inflation_min < 1.0 {
            return Err("cable inflation must be >= 1 to keep 2/3c constraints sound".into());
        }
        if self.cable_inflation_max < self.cable_inflation_min {
            return Err("cable inflation max < min".into());
        }
        if self.short_haul_inflation < 0.0 {
            return Err("short-haul inflation must be non-negative".into());
        }
        for (name, v) in [
            ("loss_rate", self.loss_rate),
            ("hop_unresponsive_rate", self.hop_unresponsive_rate),
            ("asymmetry_rate", self.asymmetry_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability, got {v}"));
            }
        }
        if self.hop_processing_ms < 0.0
            || self.jitter_median_ms < 0.0
            || self.metro_detour_ms < 0.0
            || self.icmp_slowpath_median_ms < 0.0
        {
            return Err("delays must be non-negative".into());
        }
        if self.last_mile_shape <= 0.0 {
            return Err("gamma shape must be positive".into());
        }
        Ok(())
    }

    /// Propagation speed in km/ms.
    pub fn km_per_ms(&self) -> f64 {
        self.fiber_fraction_of_c * geo_model::soi::C_KM_PER_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(NetParams::default().validate().is_ok());
    }

    #[test]
    fn default_speed_near_200() {
        let v = NetParams::default().km_per_ms();
        assert!((199.0..201.0).contains(&v));
    }

    #[test]
    fn rejects_deflation() {
        let p = NetParams {
            cable_inflation_min: 0.9,
            ..NetParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_bad_probability() {
        let p = NetParams {
            loss_rate: 1.5,
            ..NetParams::default()
        };
        assert!(p.validate().is_err());
    }
}
