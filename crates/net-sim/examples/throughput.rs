// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]
use geo_model::rng::Seed;
use net_sim::Network;
use world_sim::{World, WorldConfig};

fn main() {
    let w = World::generate(WorldConfig::paper(Seed(2023))).unwrap();
    let net = Network::new(Seed(2023));
    let t = std::time::Instant::now();
    let mut n = 0u64;
    let mut acc = 0.0;
    for &p in w.probes.iter().take(2000) {
        for &a in w.anchors.iter().take(20) {
            if let Some(rtt) = net.ping_min(&w, p, w.host(a).ip, 3, 1).rtt() {
                acc += rtt.value();
                n += 1;
            }
        }
    }
    let el = t.elapsed();
    println!(
        "{} pings(min3) in {:?} -> {:.1} us/ping, mean rtt {:.2} ms",
        n,
        el,
        el.as_micros() as f64 / n as f64,
        acc / n as f64
    );
}
