//! Quick calibration probe: CBG with all probes against a sample of anchors.

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]
use geo_model::constraint::{Circle, Region};
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use net_sim::Network;
use world_sim::{World, WorldConfig};

fn main() {
    let w = World::generate(WorldConfig::paper(Seed(2023))).unwrap();
    let net = Network::new(Seed(2023));
    let soi = SpeedOfInternet::CBG;
    let t = std::time::Instant::now();
    let mut errors = Vec::new();
    let mut closest_vp_dist = Vec::new();
    for (ti, &a) in w.anchors.iter().enumerate().take(60) {
        let target = w.host(a);
        let mut circles = Vec::new();
        let mut best_rtt = f64::INFINITY;
        let mut min_dist = f64::INFINITY;
        for &p in &w.probes {
            let ph = w.host(p);
            if ph.is_mis_geolocated() {
                continue;
            }
            let d = ph.location.distance(&target.location).value();
            if d < min_dist {
                min_dist = d;
            }
            if let Some(rtt) = net.ping_min(&w, p, target.ip, 3, ti as u64).rtt() {
                if rtt.value() < best_rtt {
                    best_rtt = rtt.value();
                }
                circles.push(Circle::new(ph.registered_location, soi.max_distance(rtt)));
            }
        }
        let region = Region::from_circles(circles);
        if let Some(est) = region.intersect() {
            errors.push(est.centroid.distance(&target.location).value());
        } else {
            println!("target {ti}: EMPTY region");
        }
        closest_vp_dist.push(min_dist);
        if ti < 5 {
            println!(
                "target {ti}: best_rtt={best_rtt:.2}ms err={:.1}km closest_vp={:.1}km",
                errors.last().copied().unwrap_or(f64::NAN),
                min_dist
            );
        }
    }
    println!("elapsed {:?}  n={}", t.elapsed(), errors.len());
    println!(
        "median err {:.1} km, frac<=40km {:.2}",
        stats::median(&errors).unwrap(),
        stats::fraction_at_most(&errors, 40.0)
    );
    println!(
        "median closest-vp dist {:.1} km, frac vp<=40km {:.2}",
        stats::median(&closest_vp_dist).unwrap(),
        stats::fraction_at_most(&closest_vp_dist, 40.0)
    );
}
