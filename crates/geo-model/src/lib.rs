//! # geo-model
//!
//! Geographic and measurement primitives shared by every crate in the
//! `ipgeo` replication framework.
//!
//! This crate is the bottom of the dependency stack. It knows nothing about
//! the Internet simulation or the geolocation techniques; it only provides:
//!
//! - [`GeoPoint`] and spherical geometry (haversine distance, destination
//!   point, bearing) on the WGS-84 mean-radius sphere;
//! - strongly typed units ([`Km`], [`Ms`]) so that distances and delays can
//!   never be confused at an API boundary;
//! - speed-of-internet conversions ([`soi`]) between round-trip times and
//!   maximum geographic distances, with the two conversion factors used by
//!   the replicated papers (2/3 c for CBG, 4/9 c for the street-level paper);
//! - [`constraint`] regions: circles on the sphere, intersection tests and
//!   centroid estimation, the geometric core of Constraint-Based Geolocation;
//! - [`ip`]: a compact IPv4 address / `/24` prefix model;
//! - [`rng`]: deterministic seed derivation so that every simulation is a
//!   pure function of one `u64` seed;
//! - [`distr`]: the handful of probability distributions the simulator needs
//!   (normal, log-normal, gamma, Zipf, exponential, Pareto), implemented
//!   locally to keep the dependency set tight;
//! - [`stats`]: medians, percentiles, CDFs, Pearson correlation and linear
//!   regression used by the evaluation harness;
//! - [`runtime`]: deterministic data-parallel execution
//!   ([`runtime::par_map_indexed`]) for the bulk measurement campaigns,
//!   governed by the `IPGEO_THREADS` environment variable.
//!
//! Everything here is deterministic and allocation-light, following the
//! event-driven robustness-first idiom of the networking guides.

pub mod constraint;
pub mod distr;
pub mod ip;
pub mod matrix;
pub mod point;
pub mod rng;
pub mod runtime;
pub mod soi;
pub mod stats;
pub mod units;

pub use constraint::{Circle, Region};
pub use ip::{Ipv4, Prefix24};
pub use matrix::{DelayMatrix, RttMatrix};
pub use point::GeoPoint;
pub use units::{Km, Ms};
