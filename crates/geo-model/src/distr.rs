//! Probability distributions used by the Internet simulator.
//!
//! The workspace deliberately sticks to the sanctioned dependency list, so
//! the few continuous distributions the simulator needs (normal, log-normal,
//! gamma, exponential, Pareto) and the discrete Zipf law for city
//! populations are implemented here with standard, well-tested algorithms:
//! Marsaglia polar for the normal, Marsaglia–Tsang for the gamma, inversion
//! for the exponential/Pareto, and finite-support inverse-CDF for Zipf.

use rand::Rng;

/// A distribution over `f64` samples.
pub trait Sample {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Normal (Gaussian) distribution, via the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be non-negative).
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Normal {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "std_dev must be finite and >= 0, got {std_dev}"
        );
        Normal { mean, std_dev }
    }

    /// Draws a standard-normal variate.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Sample for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Normal::standard(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for RTT jitter (heavy right tail, never negative) and for rural
/// population density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Std-dev of the underlying normal (log scale).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from log-scale parameters.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be finite and >= 0, got {sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given *linear-scale* median.
    /// `median = exp(mu)`, so `mu = ln(median)`.
    pub fn with_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive, got {median}");
        LogNormal::new(median.ln(), sigma)
    }
}

impl Sample for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

/// Gamma distribution with shape `k` and scale `theta`, via the
/// Marsaglia–Tsang squeeze method (with the `k < 1` boost).
///
/// Used for last-mile delay: shape ~2 gives the characteristic "a few ms,
/// occasionally tens of ms" residential access profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    /// Shape parameter `k` (> 0).
    pub shape: f64,
    /// Scale parameter `theta` (> 0). Mean is `shape * scale`.
    pub scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Gamma {
        assert!(
            shape > 0.0 && shape.is_finite(),
            "shape must be finite and > 0, got {shape}"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be finite and > 0, got {scale}"
        );
        Gamma { shape, scale }
    }

    fn sample_shape_ge1<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(0.0..1.0);
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let raw = if self.shape >= 1.0 {
            Gamma::sample_shape_ge1(self.shape, rng)
        } else {
            // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}.
            let g = Gamma::sample_shape_ge1(self.shape + 1.0, rng);
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            g * u.powf(1.0 / self.shape)
        };
        raw * self.scale
    }
}

/// Exponential distribution with the given rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter (> 0).
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or non-finite.
    pub fn new(rate: f64) -> Exponential {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be finite and > 0, got {rate}"
        );
        Exponential { rate }
    }
}

impl Sample for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// Pareto distribution with scale `x_min` and tail index `alpha`.
///
/// Used for AS footprint sizes (a few giant networks, many small ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum value (> 0).
    pub x_min: f64,
    /// Tail index (> 0); smaller means heavier tail.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min > 0.0 && x_min.is_finite(), "x_min must be > 0");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be > 0");
        Pareto { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Zipf law over ranks `1..=n` with exponent `s`, sampled by inverse CDF
/// over the precomputed normalization (exact for the finite support we
/// need: city population ranks).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over ranks `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite(), "exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF has no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
        .min(self.cdf.len())
    }

    /// The relative weight of rank `k` (unnormalized `1/k^s` is recovered
    /// from the CDF differences).
    pub fn weight(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;

    fn mean_and_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    fn draw<D: Sample>(d: &D, n: usize, label: &str) -> Vec<f64> {
        let mut rng = Seed(0xDEAD_BEEF).derive(label).rng();
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn normal_moments() {
        let s = draw(&Normal::new(5.0, 2.0), 40_000, "normal");
        let (m, v) = mean_and_var(&s);
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((v - 4.0).abs() < 0.15, "var {v}");
    }

    #[test]
    fn lognormal_is_positive_with_median() {
        let s = draw(&LogNormal::with_median(3.0, 0.8), 40_000, "lognormal");
        assert!(s.iter().all(|&x| x > 0.0));
        let mut sorted = s.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        assert!((median - 3.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn gamma_moments_shape_ge1() {
        let d = Gamma::new(2.0, 3.0);
        let s = draw(&d, 40_000, "gamma1");
        let (m, v) = mean_and_var(&s);
        assert!((m - 6.0).abs() < 0.2, "mean {m}"); // k*theta
        assert!((v - 18.0).abs() < 2.0, "var {v}"); // k*theta^2
    }

    #[test]
    fn gamma_moments_shape_lt1() {
        let d = Gamma::new(0.5, 2.0);
        let s = draw(&d, 60_000, "gamma2");
        let (m, _) = mean_and_var(&s);
        assert!((m - 1.0).abs() < 0.1, "mean {m}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_mean() {
        let s = draw(&Exponential::new(0.25), 40_000, "exp");
        let (m, _) = mean_and_var(&s);
        assert!((m - 4.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn pareto_respects_min() {
        let s = draw(&Pareto::new(2.0, 1.5), 10_000, "pareto");
        assert!(s.iter().all(|&x| x >= 2.0));
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Seed(7).derive("zipf").rng();
        let mut counts = vec![0usize; 101];
        for _ in 0..50_000 {
            counts[z.sample_rank(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn zipf_weights_sum_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (1..=50).map(|k| z.weight(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn zipf_rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
