//! Deterministic seed derivation.
//!
//! Every simulation in this framework is a pure function of one `u64` seed.
//! Subsystems (world generation, jitter, landmark hosting, …) each derive
//! their own independent stream from the master seed plus a domain label, so
//! that adding randomness to one subsystem never perturbs another — the
//! property that makes experiment diffs meaningful across code changes.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic seed, convertible into independent sub-seeds by domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Seed {
    /// Derives an independent sub-seed for the given domain label.
    ///
    /// Uses the SplitMix64 finalizer over the XOR of the seed and the FNV-1a
    /// hash of the label: cheap, stateless, and well-distributed.
    pub fn derive(&self, domain: &str) -> Seed {
        Seed(splitmix64(self.0 ^ fnv1a(domain.as_bytes())))
    }

    /// Derives an independent sub-seed for an indexed entity (e.g. trial
    /// number, target id).
    pub fn derive_index(&self, domain: &str, index: u64) -> Seed {
        Seed(splitmix64(
            self.derive(domain).0 ^ splitmix64(index.wrapping_add(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// Builds a standard RNG from this seed.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }
}

/// A minimal, fast, deterministic RNG: a SplitMix64 counter stream.
///
/// `StdRng` (ChaCha) pays a noticeable key-setup cost per instantiation;
/// simulation hot paths that create one RNG per packet use `KeyRng`
/// instead. Statistical quality is far beyond what latency jitter and loss
/// decisions need, and every stream is a pure function of its seed key.
#[derive(Debug, Clone)]
pub struct KeyRng {
    state: u64,
}

impl KeyRng {
    /// Creates a stream from a 64-bit key.
    #[inline]
    pub fn new(key: u64) -> KeyRng {
        KeyRng {
            state: splitmix64(key),
        }
    }
}

impl rand::RngCore for KeyRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// SplitMix64 finalizer: bijective avalanche mixing of a 64-bit word.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a hash of a byte string. `const` so that fixed domain labels
/// (`b"jitter"`, `b"loss"`, …) hash at compile time on measurement hot
/// paths instead of re-walking the literal per packet.
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        let s = Seed(42);
        assert_eq!(s.derive("world"), s.derive("world"));
        assert_eq!(s.derive_index("trial", 7), s.derive_index("trial", 7));
    }

    #[test]
    fn domains_are_independent() {
        let s = Seed(42);
        assert_ne!(s.derive("world"), s.derive("jitter"));
        assert_ne!(s.derive_index("trial", 0), s.derive_index("trial", 1));
    }

    #[test]
    fn different_master_seeds_diverge() {
        assert_ne!(Seed(1).derive("world"), Seed(2).derive("world"));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = Seed(7).derive("x").rng();
        let mut b = Seed(7).derive("x").rng();
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn key_rng_is_deterministic_and_uniform() {
        use rand::RngCore;
        let mut a = KeyRng::new(99);
        let mut b = KeyRng::new(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Rough uniformity of the unit floats derived from the stream.
        let mut c = KeyRng::new(1234);
        let mean: f64 = (0..4000)
            .map(|_| (c.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn key_rng_fill_bytes_handles_remainders() {
        use rand::RngCore;
        let mut rng = KeyRng::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flips = (a ^ b).count_ones();
        assert!((16..=48).contains(&flips), "weak avalanche: {flips} flips");
    }

    #[test]
    fn fnv_distinguishes_labels() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"acb"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
