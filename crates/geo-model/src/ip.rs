//! Compact IPv4 address and `/24` prefix model.
//!
//! The simulator allocates synthetic IPv4 addresses to hosts; the
//! million-scale technique reasons about `/24` prefixes (its representatives
//! are "three responsive IP addresses in the target's /24"). We use a `u32`
//! newtype rather than `std::net::Ipv4Addr` so prefix arithmetic is free and
//! the address space of a simulated world can be allocated linearly.

use std::fmt;
use std::str::FromStr;

/// An IPv4 address as a host-order `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The octets of this address.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The `/24` prefix containing this address.
    pub const fn prefix24(self) -> Prefix24 {
        Prefix24(self.0 >> 8)
    }

    /// The host byte (last octet) within the `/24`.
    pub const fn host_byte(self) -> u8 {
        self.0 as u8
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Errors parsing a dotted-quad address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpv4Error(String);

impl fmt::Display for ParseIpv4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {}", self.0)
    }
}

impl std::error::Error for ParseIpv4Error {}

impl FromStr for Ipv4 {
    type Err = ParseIpv4Error;

    fn from_str(s: &str) -> Result<Ipv4, ParseIpv4Error> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| ParseIpv4Error(s.to_string()))?;
            *slot = part
                .parse::<u8>()
                .map_err(|_| ParseIpv4Error(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(ParseIpv4Error(s.to_string()));
        }
        Ok(Ipv4::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// A `/24` prefix, stored as the upper 24 bits of its addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix24(pub u32);

impl Prefix24 {
    /// The network (`.0`) address of this prefix.
    pub const fn network(self) -> Ipv4 {
        Ipv4(self.0 << 8)
    }

    /// The address with the given host byte inside this prefix.
    pub const fn host(self, byte: u8) -> Ipv4 {
        Ipv4((self.0 << 8) | byte as u32)
    }

    /// Iterates all 256 addresses of the prefix.
    pub fn addresses(self) -> impl Iterator<Item = Ipv4> {
        (0u16..=255).map(move |b| self.host(b as u8))
    }

    /// True if the address belongs to this prefix.
    pub const fn contains(self, addr: Ipv4) -> bool {
        addr.0 >> 8 == self.0
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_roundtrip() {
        let a = Ipv4::from_octets(192, 168, 1, 42);
        assert_eq!(a.octets(), [192, 168, 1, 42]);
        assert_eq!(a.to_string(), "192.168.1.42");
    }

    #[test]
    fn parse_valid() {
        let a: Ipv4 = "10.0.0.1".parse().unwrap();
        assert_eq!(a, Ipv4::from_octets(10, 0, 0, 1));
    }

    #[test]
    fn parse_invalid() {
        assert!("10.0.0".parse::<Ipv4>().is_err());
        assert!("10.0.0.1.2".parse::<Ipv4>().is_err());
        assert!("10.0.0.256".parse::<Ipv4>().is_err());
        assert!("not-an-ip".parse::<Ipv4>().is_err());
    }

    #[test]
    fn prefix_membership() {
        let a = Ipv4::from_octets(10, 1, 2, 3);
        let p = a.prefix24();
        assert_eq!(p.network(), Ipv4::from_octets(10, 1, 2, 0));
        assert!(p.contains(a));
        assert!(p.contains(Ipv4::from_octets(10, 1, 2, 255)));
        assert!(!p.contains(Ipv4::from_octets(10, 1, 3, 0)));
        assert_eq!(a.host_byte(), 3);
    }

    #[test]
    fn prefix_iterates_256() {
        let p = Ipv4::from_octets(172, 16, 5, 0).prefix24();
        let addrs: Vec<Ipv4> = p.addresses().collect();
        assert_eq!(addrs.len(), 256);
        assert_eq!(addrs[0], p.network());
        assert_eq!(addrs[255], Ipv4::from_octets(172, 16, 5, 255));
    }

    #[test]
    fn prefix_display() {
        let p = Ipv4::from_octets(8, 8, 8, 8).prefix24();
        assert_eq!(p.to_string(), "8.8.8.0/24");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Ipv4::from_octets(1, 0, 0, 0) < Ipv4::from_octets(2, 0, 0, 0));
        assert!(
            Ipv4::from_octets(10, 0, 0, 1).prefix24() < Ipv4::from_octets(10, 0, 1, 0).prefix24()
        );
    }
}
