//! Speed-of-Internet conversions between RTTs and distances.
//!
//! Latency-based geolocation converts a round-trip time into an upper bound
//! on the geographic distance between the two endpoints: light in fiber
//! travels at roughly 2/3 of the vacuum speed of light `c`, and a packet
//! must make the trip twice. CBG (Gueye et al.) uses the conservative
//! `2/3 c` factor; the street-level paper argues `2/3 c` is *too*
//! conservative for its dense landmark constraints and uses `4/9 c`
//! (§3.2.2 of the replication). Both factors are first-class here so that
//! each pipeline states explicitly which physics it assumes.

use crate::units::{Km, Ms};

/// Vacuum speed of light, in kilometers per millisecond.
pub const C_KM_PER_MS: f64 = 299.792458;

/// A speed-of-internet model: the assumed fraction of `c` at which signals
/// effectively propagate end-to-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedOfInternet {
    fraction_of_c: f64,
}

impl SpeedOfInternet {
    /// The classic CBG factor: signals travel at 2/3 of the speed of light
    /// (speed of light in fiber). Used for constraint circles in CBG, for
    /// the million-scale paper, and for the anchor sanitization of §4.3.
    pub const CBG: SpeedOfInternet = SpeedOfInternet {
        fraction_of_c: 2.0 / 3.0,
    };

    /// The street-level paper's factor: 4/9 of the speed of light, i.e.
    /// 2/3 of the fiber speed, accounting for path inflation and queueing.
    pub const STREET_LEVEL: SpeedOfInternet = SpeedOfInternet {
        fraction_of_c: 4.0 / 9.0,
    };

    /// A custom fraction of `c`.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is not in `(0, 1]`.
    pub fn of_c(fraction: f64) -> SpeedOfInternet {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "speed-of-internet fraction must be in (0, 1], got {fraction}"
        );
        SpeedOfInternet {
            fraction_of_c: fraction,
        }
    }

    /// The fraction of `c` this model assumes.
    #[inline]
    pub fn fraction(&self) -> f64 {
        self.fraction_of_c
    }

    /// Effective one-way propagation speed in km/ms.
    #[inline]
    pub fn km_per_ms(&self) -> f64 {
        self.fraction_of_c * C_KM_PER_MS
    }

    /// Converts a round-trip time into the maximum one-way geographic
    /// distance consistent with it: `rtt / 2 * speed`.
    ///
    /// Negative RTTs (which arise from the noisy `D1 + D2` computation of
    /// the street-level paper, Fig. 6a) map to a zero-radius constraint and
    /// should be filtered by the caller; we saturate rather than panic so
    /// that bulk pipelines stay total.
    #[inline]
    pub fn max_distance(&self, rtt: Ms) -> Km {
        Km((rtt.value().max(0.0) / 2.0) * self.km_per_ms())
    }

    /// Converts a geographic distance into the minimum possible round-trip
    /// time: `2 * dist / speed`. This is the inverse of [`max_distance`]
    /// and the test applied by the §4.3 sanitizer: a measured RTT below
    /// this bound is a speed-of-internet violation.
    ///
    /// [`max_distance`]: SpeedOfInternet::max_distance
    #[inline]
    pub fn min_rtt(&self, distance: Km) -> Ms {
        Ms(2.0 * distance.value() / self.km_per_ms())
    }

    /// True if a measured RTT over a known geographic distance violates
    /// this speed-of-internet model (the packet would have had to travel
    /// faster than the model allows).
    #[inline]
    pub fn violates(&self, distance: Km, rtt: Ms) -> bool {
        rtt < self.min_rtt(distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbg_factor_value() {
        assert!((SpeedOfInternet::CBG.fraction() - 2.0 / 3.0).abs() < 1e-12);
        // ~100 km per millisecond one-way is the usual rule of thumb.
        let v = SpeedOfInternet::CBG.km_per_ms();
        assert!((199.0..201.0).contains(&v), "got {v}");
    }

    #[test]
    fn street_level_is_slower() {
        assert!(SpeedOfInternet::STREET_LEVEL.km_per_ms() < SpeedOfInternet::CBG.km_per_ms());
    }

    #[test]
    fn rtt_distance_roundtrip() {
        let soi = SpeedOfInternet::CBG;
        let d = Km(1234.5);
        let rtt = soi.min_rtt(d);
        let back = soi.max_distance(rtt);
        assert!((back.value() - d.value()).abs() < 1e-9);
    }

    #[test]
    fn paper_example_100ms_is_10000km() {
        // §3.1.1: "a VP with an RTT of 100ms to the target results in a
        // constrained region with a radius of 10,000 km".
        let r = SpeedOfInternet::CBG.max_distance(Ms(100.0));
        assert!((r.value() - 9993.0).abs() < 20.0, "got {r}");
    }

    #[test]
    fn negative_rtt_saturates() {
        assert_eq!(SpeedOfInternet::CBG.max_distance(Ms(-5.0)), Km(0.0));
    }

    #[test]
    fn violation_detection() {
        let soi = SpeedOfInternet::CBG;
        // 2000 km needs >= ~20 ms RTT at 2/3 c.
        assert!(soi.violates(Km(2000.0), Ms(10.0)));
        assert!(!soi.violates(Km(2000.0), Ms(30.0)));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let _ = SpeedOfInternet::of_c(1.5);
    }
}
