//! Statistics for the evaluation harness.
//!
//! Everything the paper's figures need: medians and percentiles, empirical
//! CDFs, Pearson correlation (Fig. 5c), ordinary least-squares regression
//! (Fig. 6b), and error-bar summaries (Fig. 2a).

/// Returns the `q`-quantile (`0.0..=1.0`) of the data using linear
/// interpolation between order statistics. Returns `None` on empty input.
/// NaN values are ignored.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    let mut v: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// The median (0.5-quantile).
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Population standard deviation; `None` on empty input.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    let var = data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / data.len() as f64;
    Some(var.sqrt())
}

/// The fraction of values `<= threshold`; the building block of every
/// "X% of targets have an error of at most Y km" claim in the paper.
pub fn fraction_at_most(data: &[f64], threshold: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|&&x| x <= threshold).count() as f64 / data.len() as f64
}

/// One point of an empirical CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// The value on the x-axis.
    pub value: f64,
    /// `P(X <= value)`.
    pub fraction: f64,
}

/// The full empirical CDF: sorted values with cumulative fractions.
/// NaN values are dropped.
pub fn empirical_cdf(data: &[f64]) -> Vec<CdfPoint> {
    let mut v: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, value)| CdfPoint {
            value,
            fraction: (i + 1) as f64 / n,
        })
        .collect()
}

/// Evaluates the empirical CDF at a fixed set of x-axis positions — useful
/// for rendering several series over a common grid like the paper's plots.
pub fn cdf_at(data: &[f64], xs: &[f64]) -> Vec<CdfPoint> {
    xs.iter()
        .map(|&x| CdfPoint {
            value: x,
            fraction: fraction_at_most(data, x),
        })
        .collect()
}

/// Pearson correlation coefficient between two equal-length series.
/// Returns `None` if lengths differ, fewer than two points, or either
/// series is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// An ordinary-least-squares line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Slope of the fit.
    pub slope: f64,
    /// Intercept of the fit.
    pub intercept: f64,
    /// Coefficient of determination `r²`.
    pub r_squared: f64,
}

/// Fits a least-squares line. Returns `None` under the same conditions as
/// [`pearson`].
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<Line> {
    let r = pearson(x, y)?;
    let mx = mean(x)?;
    let my = mean(y)?;
    let sx = std_dev(x)?;
    let sy = std_dev(y)?;
    let slope = r * sy / sx;
    Some(Line {
        slope,
        intercept: my - slope * mx,
        r_squared: r * r,
    })
}

/// Five-number style summary used for error-bar plots (Fig. 2a): min, 25th,
/// median, 75th, max over a set of trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBars {
    /// Smallest observed value.
    pub min: f64,
    /// First quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// Largest observed value.
    pub max: f64,
}

/// Computes error bars; `None` on empty input.
pub fn error_bars(data: &[f64]) -> Option<ErrorBars> {
    Some(ErrorBars {
        min: quantile(data, 0.0)?,
        q25: quantile(data, 0.25)?,
        median: quantile(data, 0.5)?,
        q75: quantile(data, 0.75)?,
        max: quantile(data, 1.0)?,
    })
}

/// Spearman rank correlation: Pearson over ranks. Measures whether the
/// *relative order* of one series is preserved in the other — exactly the
/// street-level paper's insight (2) about measured vs geographic distances.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    pearson(&ranks(x), &ranks(y))
}

/// Fractional ranks with ties averaged.
fn ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].total_cmp(&data[b]));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(quantile(&data, 0.25), Some(2.5));
        assert_eq!(quantile(&data, 0.0), Some(0.0));
        assert_eq!(quantile(&data, 1.0), Some(10.0));
    }

    #[test]
    fn quantile_ignores_nan() {
        assert_eq!(median(&[1.0, f64::NAN, 3.0]), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[5.0, 1.0, 3.0, 3.0]);
        assert_eq!(cdf.len(), 4);
        for w in cdf.windows(2) {
            assert!(w[0].value <= w[1].value);
            assert!(w[0].fraction <= w[1].fraction);
        }
        assert_eq!(cdf.last().unwrap().fraction, 1.0);
    }

    #[test]
    fn fraction_at_most_basic() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_at_most(&d, 2.0), 0.5);
        assert_eq!(fraction_at_most(&d, 0.0), 0.0);
        assert_eq!(fraction_at_most(&d, 10.0), 1.0);
        assert_eq!(fraction_at_most(&[], 1.0), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let line = linear_fit(&x, &y).unwrap();
        assert!((line.slope - 3.0).abs() < 1e-9);
        assert!((line.intercept + 7.0).abs() < 1e-9);
        assert!((line.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn error_bars_ordering() {
        let eb = error_bars(&[5.0, 1.0, 9.0, 3.0, 7.0]).unwrap();
        assert!(eb.min <= eb.q25 && eb.q25 <= eb.median);
        assert!(eb.median <= eb.q75 && eb.q75 <= eb.max);
        assert_eq!(eb.min, 1.0);
        assert_eq!(eb.max, 9.0);
        assert_eq!(eb.median, 5.0);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x^3 is monotone: Spearman must be exactly 1, Pearson < 1.
        let x: Vec<f64> = (-10..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
