//! Deterministic data-parallel execution for the bulk measurement
//! campaigns.
//!
//! Every simulated measurement in this workspace is a pure function of
//! `(seed, src, dst, nonce)` (see `net-sim`), so a campaign loop over an
//! index range can be chunked across threads freely: each output slot is
//! written exactly once with a value that does not depend on scheduling,
//! which makes the parallel result **bit-identical** to the serial one
//! regardless of worker count. [`par_map_indexed`] packages that argument:
//! results land in pre-allocated slots (one disjoint chunk per worker via
//! `chunks_mut`), so no ordering, merging, or locking can perturb the
//! output.
//!
//! Worker count comes from the `IPGEO_THREADS` environment variable:
//! `IPGEO_THREADS=1` restores the fully serial behaviour, unset or `0`
//! means "use the machine" (`std::thread::available_parallelism`). The
//! variable is read per call, so tests can flip it between dataset builds.

/// The worker count in effect: `IPGEO_THREADS`, defaulting to the
/// machine's available parallelism (`1` if that cannot be determined).
pub fn threads() -> usize {
    match std::env::var("IPGEO_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => default_threads(),
            Ok(n) => n,
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `0..n` into a `Vec`, in parallel across [`threads`]
/// workers, with output bit-identical to `(0..n).map(f).collect()`.
///
/// `f` must be a pure function of the index for the determinism guarantee
/// to hold; all campaign closures in this workspace are (they only read
/// the world and derive per-measurement keys from the index).
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slice) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = w * chunk;
                for (off, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot is covered by exactly one worker chunk"))
        .collect()
}

/// Fills a `rows * cols` row-major arena in parallel: `f(r, row)` writes
/// row `r` into its pre-allocated slot. Unlike [`par_map_indexed`] over
/// per-row `Vec`s, the output lands directly in the final flat allocation —
/// one arena, no per-row allocations, no assembly copy — which is what the
/// campaign matrices (`geo_model::matrix`) are built from.
///
/// Every element starts as `init` (rows `f` leaves untouched stay `init`),
/// and the same purity contract as [`par_map_indexed`] makes the result
/// bit-identical at any worker count.
pub fn par_fill_rows<E, F>(rows: usize, cols: usize, init: E, f: F) -> Vec<E>
where
    E: Clone + Send,
    F: Fn(usize, &mut [E]) + Sync,
{
    let mut data = vec![init; rows * cols];
    if cols == 0 || rows == 0 {
        return data;
    }
    let workers = threads().min(rows);
    if workers <= 1 {
        for (r, row) in data.chunks_mut(cols).enumerate() {
            f(r, row);
        }
        return data;
    }
    let rows_per = rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, block) in data.chunks_mut(rows_per * cols).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = w * rows_per;
                for (off, row) in block.chunks_mut(cols).enumerate() {
                    f(base + off, row);
                }
            });
        }
    });
    data
}

/// [`par_fill_rows`] with per-worker scratch state: each worker calls
/// `mk()` once and threads the value through `f` for every row of its
/// contiguous chunk. Serial execution uses a single state for all rows.
///
/// `f` must still be a pure function of the row index *as far as the
/// output is concerned* — the scratch may only carry memoized values that
/// are themselves index-determined (e.g. route sequences), so the result
/// stays bit-identical at any worker count.
pub fn par_fill_rows_with<E, S, M, F>(rows: usize, cols: usize, init: E, mk: M, f: F) -> Vec<E>
where
    E: Clone + Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [E]) + Sync,
{
    let mut data = vec![init; rows * cols];
    if cols == 0 || rows == 0 {
        return data;
    }
    let workers = threads().min(rows);
    if workers <= 1 {
        let mut state = mk();
        for (r, row) in data.chunks_mut(cols).enumerate() {
            f(&mut state, r, row);
        }
        return data;
    }
    let rows_per = rows.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, block) in data.chunks_mut(rows_per * cols).enumerate() {
            let (f, mk) = (&f, &mk);
            scope.spawn(move || {
                let base = w * rows_per;
                let mut state = mk();
                for (off, row) in block.chunks_mut(cols).enumerate() {
                    f(&mut state, base + off, row);
                }
            });
        }
    });
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_map() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        let parallel = par_map_indexed(1000, |i| (i as u64).wrapping_mul(0x9E37));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = par_map_indexed(537, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 537);
        assert_eq!(out, (0..537).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_ranges() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i * 2), vec![0]);
    }

    #[test]
    fn smaller_n_than_workers() {
        // Chunks never exceed n; no worker sees an out-of-range index.
        let out = par_map_indexed(3, |i| i + 10);
        assert_eq!(out, vec![10, 11, 12]);
    }

    #[test]
    fn non_send_free_closure_state_is_shared() {
        // The closure only needs Sync; captured reads are shared, not
        // cloned per worker.
        let data: Vec<usize> = (0..100).rev().collect();
        let out = par_map_indexed(100, |i| data[i]);
        assert_eq!(out, data);
    }

    #[test]
    fn fill_rows_matches_serial_fill() {
        let serial = par_fill_rows(0, 0, 0u64, |_, _| {});
        assert!(serial.is_empty());
        let filled = par_fill_rows(53, 7, u64::MAX, |r, row| {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = (r as u64) << 32 | c as u64;
            }
        });
        assert_eq!(filled.len(), 53 * 7);
        for r in 0..53 {
            for c in 0..7 {
                assert_eq!(filled[r * 7 + c], (r as u64) << 32 | c as u64);
            }
        }
    }

    #[test]
    fn fill_rows_with_state_matches_stateless() {
        // The scratch here memoizes a pure function of the index, so the
        // output must be identical to the stateless fill at any width.
        let plain = par_fill_rows(37, 5, 0u64, |r, row| {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = (r * 5 + c) as u64;
            }
        });
        let with = par_fill_rows_with(
            37,
            5,
            0u64,
            || 0usize,
            |calls, r, row| {
                *calls += 1;
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot = (r * 5 + c) as u64;
                }
            },
        );
        assert_eq!(plain, with);
    }

    #[test]
    fn fill_rows_untouched_rows_keep_init() {
        let data = par_fill_rows(10, 3, -1.0f64, |r, row| {
            if r % 2 == 0 {
                row.fill(r as f64);
            }
        });
        for r in 0..10 {
            let expect = if r % 2 == 0 { r as f64 } else { -1.0 };
            assert!(data[r * 3..(r + 1) * 3].iter().all(|&v| v == expect));
        }
    }
}
