//! Strongly typed scalar units.
//!
//! The geolocation literature constantly converts between round-trip times
//! and distances; mixing the two up is the classic bug in CBG
//! implementations. [`Km`] and [`Ms`] are transparent `f64` newtypes with
//! just enough arithmetic to be ergonomic. Conversions between them live in
//! [`crate::soi`] and are always explicit about the speed-of-internet factor.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw `f64` value.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the smaller of two values.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the larger of two values.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// True if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, other: &$name) -> Option<Ordering> {
                self.0.partial_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }

        impl $name {
            /// Total ordering treating NaN as greater than everything,
            /// suitable for sorting measurement vectors that may contain
            /// failed (NaN) samples.
            #[inline]
            pub fn total_cmp(&self, other: &$name) -> Ordering {
                self.0.total_cmp(&other.0)
            }
        }
    };
}

unit!(
    /// A geographic distance in kilometers.
    Km,
    "km"
);

unit!(
    /// A time interval in milliseconds (the unit of RTT measurements).
    Ms,
    "ms"
);

impl Ms {
    /// Converts to seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1000.0
    }

    /// Builds a delay from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Ms {
        Ms(secs * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Km(10.0);
        let b = Km(4.0);
        assert_eq!((a + b).value(), 14.0);
        assert_eq!((a - b).value(), 6.0);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((a / 2.0).value(), 5.0);
        assert_eq!(a / b, 2.5);
    }

    #[test]
    fn comparisons() {
        assert!(Km(1.0) < Km(2.0));
        assert_eq!(Km(3.0).max(Km(5.0)), Km(5.0));
        assert_eq!(Km(3.0).min(Km(5.0)), Km(3.0));
        assert_eq!(Km(-3.0).abs(), Km(3.0));
    }

    #[test]
    fn sum_iterates() {
        let total: Ms = [Ms(1.0), Ms(2.0), Ms(3.5)].into_iter().sum();
        assert!((total.value() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn seconds_conversion() {
        assert_eq!(Ms(1500.0).as_secs(), 1.5);
        assert_eq!(Ms::from_secs(2.0), Ms(2000.0));
    }

    #[test]
    fn total_cmp_handles_nan() {
        let mut v = [Ms(f64::NAN), Ms(1.0), Ms(0.5)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Ms(0.5));
        assert_eq!(v[1], Ms(1.0));
        assert!(v[2].value().is_nan());
    }

    #[test]
    fn display_formats_unit() {
        assert_eq!(format!("{}", Km(1.5)), "1.500 km");
        assert_eq!(format!("{}", Ms(0.25)), "0.250 ms");
    }
}
