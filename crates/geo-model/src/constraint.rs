//! Constraint circles and region intersection — the geometric core of
//! Constraint-Based Geolocation (CBG).
//!
//! Each vantage point with a measured RTT to the target induces a
//! [`Circle`]: the target must lie within `max_distance(rtt)` of the
//! vantage point. A [`Region`] is the conjunction of such constraints; CBG
//! estimates the target position as the **centroid of the intersection** of
//! all circles.
//!
//! The intersection of spherical caps has no convenient closed form, so the
//! centroid is estimated by sampling: a polar grid is laid over the
//! smallest circle (every point of the intersection must lie inside the
//! smallest circle) and the spherical centroid of the samples that satisfy
//! every constraint is returned. The resolution adapts: if no sample
//! satisfies all constraints, the grid is refined a few times before the
//! region is declared empty — mirroring the paper's observation that for 5
//! targets the 4/9 c factor produced no intersection at all (§5.2.1).

use crate::point::{GeoPoint, PointTrig};
use crate::units::Km;

/// A single geographic constraint: the target lies within `radius` of
/// `center`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// The vantage point (or landmark) location.
    pub center: GeoPoint,
    /// Maximum distance of the target from the center.
    pub radius: Km,
}

impl Circle {
    /// Creates a constraint circle. Negative radii are clamped to zero.
    pub fn new(center: GeoPoint, radius: Km) -> Circle {
        Circle {
            center,
            radius: radius.max(Km::ZERO),
        }
    }

    /// True if `point` satisfies this constraint.
    #[inline]
    pub fn contains(&self, point: &GeoPoint) -> bool {
        self.center.distance(point) <= self.radius
    }

    /// True if the two circles can possibly share a point
    /// (necessary, not sufficient, for a common intersection).
    #[inline]
    pub fn overlaps(&self, other: &Circle) -> bool {
        self.center.distance(&other.center) <= self.radius + other.radius
    }
}

/// The result of intersecting a region: the centroid estimate plus
/// diagnostics used by the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionEstimate {
    /// Spherical centroid of the sampled intersection.
    pub centroid: GeoPoint,
    /// Approximate area of the intersection in km².
    pub area_km2: f64,
    /// Radius of the smallest constraint circle — an upper bound on how far
    /// the centroid can be from the target when constraints are sound.
    pub tightest_radius: Km,
}

/// A conjunction of constraint circles.
#[derive(Debug, Clone, Default)]
pub struct Region {
    circles: Vec<Circle>,
}

/// Number of radial rings in the base sampling grid.
const BASE_RINGS: usize = 24;
/// Number of refinement passes before declaring the region empty.
const MAX_REFINES: usize = 3;

/// Reusable buffers for [`Region::intersect_with`].
///
/// One `intersect` call makes thousands of circle-containment tests, each
/// of which used to re-derive the radians and sine/cosine of both
/// endpoints, and allocated an active-circle list plus a sample vector per
/// refinement pass. The scratch hoists the per-circle trig (computed once
/// per call) and keeps the buffers alive across calls, so solver loops
/// over many targets perform no steady-state allocations.
///
/// The result is bit-identical to [`Region::intersect`] — only redundant
/// work is skipped (see [`PointTrig`]); a scratch carries no state between
/// calls other than buffer capacity.
#[derive(Debug, Clone, Default)]
pub struct RegionScratch {
    /// Active circles, in region order (as [`Region::active_circles`]).
    active: Vec<Circle>,
    /// Precomputed center trig, parallel to `active`.
    trig: Vec<PointTrig>,
    /// Containment-check order: indices into `active`, ascending radius.
    /// The region is a conjunction, so check order cannot change the
    /// outcome — but tight circles reject samples earliest.
    order: Vec<u32>,
    /// Samples inside every constraint, in sample-grid order.
    inside: Vec<GeoPoint>,
}

impl RegionScratch {
    /// Fresh (empty) buffers.
    pub fn new() -> RegionScratch {
        RegionScratch::default()
    }

    /// True if the sample `t` satisfies every active constraint, checking
    /// tightest circles first.
    // geo-lint: hot-path
    #[inline]
    fn contains(&self, t: &PointTrig) -> bool {
        self.order
            .iter()
            .all(|&i| self.trig[i as usize].distance(t) <= self.active[i as usize].radius)
    }
}

impl Region {
    /// An empty region (no constraints — the whole Earth).
    pub fn new() -> Region {
        Region::default()
    }

    /// Builds a region from constraint circles.
    pub fn from_circles(circles: Vec<Circle>) -> Region {
        Region { circles }
    }

    /// Adds one constraint.
    pub fn push(&mut self, circle: Circle) {
        self.circles.push(circle);
    }

    /// The constraints in this region.
    pub fn circles(&self) -> &[Circle] {
        &self.circles
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.circles.len()
    }

    /// True if no constraint has been added.
    pub fn is_empty(&self) -> bool {
        self.circles.is_empty()
    }

    /// True if `point` satisfies every constraint.
    pub fn contains(&self, point: &GeoPoint) -> bool {
        self.circles.iter().all(|c| c.contains(point))
    }

    /// The smallest constraint circle, if any.
    pub fn tightest(&self) -> Option<&Circle> {
        self.circles
            .iter()
            .min_by(|a, b| a.radius.total_cmp(&b.radius))
    }

    /// Quick necessary condition for non-emptiness: every pair of circles
    /// overlaps. Cheap pre-filter before sampling.
    pub fn pairwise_feasible(&self) -> bool {
        for (i, a) in self.circles.iter().enumerate() {
            for b in &self.circles[i + 1..] {
                if !a.overlaps(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Drops constraints that cannot shape the intersection because they
    /// fully contain the tightest circle's disc. With thousands of vantage
    /// points, almost every circle is redundant: a VP at 100 ms constrains
    /// a 10,000 km radius that any same-city constraint already implies.
    /// Returns the active circles (always including the tightest).
    pub fn active_circles(&self) -> Vec<Circle> {
        let Some(t) = self.tightest().copied() else {
            return Vec::new();
        };
        self.circles
            .iter()
            .filter(|c| {
                // Keep c unless it strictly swallows the tightest disc
                // (>=: the tightest itself is always kept).
                c.center.distance(&t.center) + t.radius >= c.radius
            })
            .copied()
            .collect()
    }

    /// Estimates the centroid of the intersection of all constraints.
    ///
    /// Returns `None` if the region has no constraints or the intersection
    /// is (numerically) empty. Redundant circles are dropped first
    /// ([`active_circles`]); the smallest circle is then sampled with a
    /// polar grid of `BASE_RINGS` rings (denser rings carry proportionally
    /// more azimuthal samples so the point density is roughly uniform);
    /// samples inside **all** active circles vote for the centroid. On an
    /// empty vote the grid is refined up to `MAX_REFINES` times.
    ///
    /// [`active_circles`]: Region::active_circles
    pub fn intersect(&self) -> Option<RegionEstimate> {
        self.intersect_with(&mut RegionScratch::new())
    }

    /// [`Region::intersect`] with caller-owned buffers: bit-identical
    /// result, no steady-state allocations. Solver loops that intersect
    /// many regions should hold one [`RegionScratch`] and pass it here.
    // geo-lint: hot-path
    pub fn intersect_with(&self, scratch: &mut RegionScratch) -> Option<RegionEstimate> {
        let tightest = *self.tightest()?;
        let t_trig = PointTrig::of(&tightest.center);

        // Active filter (same predicate and order as `active_circles`),
        // computing each center's trig exactly once.
        scratch.active.clear();
        scratch.trig.clear();
        scratch.order.clear();
        for c in &self.circles {
            let ct = PointTrig::of(&c.center);
            if ct.distance(&t_trig) + tightest.radius >= c.radius {
                scratch.active.push(*c);
                scratch.trig.push(ct);
            }
        }

        // Pairwise feasibility over the active set (`pairwise_feasible`).
        for i in 0..scratch.active.len() {
            for j in i + 1..scratch.active.len() {
                if scratch.trig[i].distance(&scratch.trig[j])
                    > scratch.active[i].radius + scratch.active[j].radius
                {
                    return None;
                }
            }
        }

        scratch.order.extend(0..scratch.active.len() as u32);
        scratch.order.sort_unstable_by(|&a, &b| {
            scratch.active[a as usize]
                .radius
                .total_cmp(&scratch.active[b as usize].radius)
        });

        // Degenerate zero-radius constraint: the intersection is the center
        // itself if it satisfies everything.
        if tightest.radius.value() <= f64::EPSILON {
            return if scratch.contains(&t_trig) {
                Some(RegionEstimate {
                    centroid: tightest.center,
                    area_km2: 0.0,
                    tightest_radius: tightest.radius,
                })
            } else {
                None
            };
        }

        let mut rings = BASE_RINGS;
        for _ in 0..=MAX_REFINES {
            if let Some(est) = Region::sample_with(scratch, &tightest, &t_trig, rings) {
                return Some(est);
            }
            rings *= 2;
        }
        None
    }

    // geo-lint: hot-path
    fn sample_with(
        scratch: &mut RegionScratch,
        tightest: &Circle,
        center: &PointTrig,
        rings: usize,
    ) -> Option<RegionEstimate> {
        let r = tightest.radius.value();
        let ring_width = r / rings as f64;
        scratch.inside.clear();
        let mut total_samples = 0usize;

        // Ring 0: the center itself.
        total_samples += 1;
        if scratch.contains(center) {
            scratch.inside.push(tightest.center);
        }

        for ring in 1..=rings {
            let radius = Km(ring as f64 * ring_width);
            // ~6 samples per ring index keeps areal density uniform.
            let samples = 6 * ring;
            let step = 360.0 / samples as f64;
            for k in 0..samples {
                total_samples += 1;
                let p = center.destination(k as f64 * step, radius);
                if scratch.contains(&PointTrig::of(&p)) {
                    scratch.inside.push(p);
                }
            }
        }

        if scratch.inside.is_empty() {
            return None;
        }
        let centroid = GeoPoint::centroid(&scratch.inside)?;
        let circle_area = std::f64::consts::PI * r * r;
        let area_km2 = circle_area * scratch.inside.len() as f64 / total_samples as f64;
        Some(RegionEstimate {
            centroid,
            area_km2,
            tightest_radius: tightest.radius,
        })
    }

    /// Points of this region's intersection boundary sampled for landmark
    /// discovery: used by tests and by the street-level tier-2 stopping
    /// rule ("the process stops when no points of a circle are within the
    /// CBG region").
    pub fn any_point_inside(&self, points: &[GeoPoint]) -> bool {
        points.iter().any(|p| self.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    #[test]
    fn single_circle_centroid_is_center() {
        let region = Region::from_circles(vec![Circle::new(p(40.0, -3.0), Km(500.0))]);
        let est = region.intersect().unwrap();
        assert!(est.centroid.distance(&p(40.0, -3.0)).value() < 10.0);
        // Area should approximate the full circle.
        let expected = std::f64::consts::PI * 500.0 * 500.0;
        assert!((est.area_km2 - expected).abs() / expected < 0.1);
    }

    #[test]
    fn two_overlapping_circles() {
        // Centers 600 km apart, radii 400 km: lens around the midpoint.
        let a = p(0.0, 0.0);
        let b = a.destination(90.0, Km(600.0));
        let region =
            Region::from_circles(vec![Circle::new(a, Km(400.0)), Circle::new(b, Km(400.0))]);
        let est = region.intersect().unwrap();
        let mid = a.midpoint(&b);
        assert!(
            est.centroid.distance(&mid).value() < 30.0,
            "centroid {} vs midpoint {}",
            est.centroid,
            mid
        );
    }

    #[test]
    fn disjoint_circles_have_no_intersection() {
        let a = p(0.0, 0.0);
        let b = a.destination(90.0, Km(3000.0));
        let region =
            Region::from_circles(vec![Circle::new(a, Km(500.0)), Circle::new(b, Km(500.0))]);
        assert!(region.intersect().is_none());
        assert!(!region.pairwise_feasible());
    }

    #[test]
    fn empty_region_returns_none() {
        assert!(Region::new().intersect().is_none());
    }

    #[test]
    fn tightest_circle_bounds_error() {
        // True target inside all circles: centroid must be within the
        // tightest radius + tightest radius of the target.
        let target = p(48.85, 2.35);
        let vps = [
            (p(50.0, 3.0), 250.0),
            (p(47.0, 1.0), 350.0),
            (p(49.0, 5.0), 300.0),
        ];
        let circles: Vec<Circle> = vps.iter().map(|(vp, r)| Circle::new(*vp, Km(*r))).collect();
        // Every circle genuinely contains the target.
        for c in &circles {
            assert!(c.contains(&target));
        }
        let region = Region::from_circles(circles);
        let est = region.intersect().unwrap();
        assert!(est.centroid.distance(&target).value() <= 2.0 * est.tightest_radius.value());
    }

    #[test]
    fn zero_radius_circle() {
        let c = p(10.0, 10.0);
        let region = Region::from_circles(vec![
            Circle::new(c, Km(0.0)),
            Circle::new(p(10.5, 10.5), Km(200.0)),
        ]);
        let est = region.intersect().unwrap();
        assert_eq!(est.centroid, c);
        assert_eq!(est.area_km2, 0.0);
    }

    #[test]
    fn negative_radius_clamped() {
        let c = Circle::new(p(0.0, 0.0), Km(-5.0));
        assert_eq!(c.radius, Km(0.0));
    }

    #[test]
    fn contains_is_conjunction() {
        let region = Region::from_circles(vec![
            Circle::new(p(0.0, 0.0), Km(1000.0)),
            Circle::new(p(0.0, 10.0), Km(1000.0)),
        ]);
        assert!(region.contains(&p(0.0, 5.0)));
        assert!(!region.contains(&p(0.0, -8.5)));
    }

    #[test]
    fn intersect_with_reused_scratch_is_bit_identical() {
        // Several geometries through ONE scratch, compared bit-for-bit
        // against the fresh-allocation path: lens, redundant outer circle,
        // zero radius, empty intersection, thin lens (refinement), single
        // circle.
        let a = p(0.0, 0.0);
        let regions = [
            Region::from_circles(vec![Circle::new(a, Km(400.0))]),
            Region::from_circles(vec![
                Circle::new(a, Km(400.0)),
                Circle::new(a.destination(90.0, Km(600.0)), Km(400.0)),
                Circle::new(a.destination(45.0, Km(100.0)), Km(9000.0)),
            ]),
            Region::from_circles(vec![
                Circle::new(p(10.0, 10.0), Km(0.0)),
                Circle::new(p(10.5, 10.5), Km(200.0)),
            ]),
            Region::from_circles(vec![
                Circle::new(a, Km(500.0)),
                Circle::new(a.destination(90.0, Km(3000.0)), Km(500.0)),
            ]),
            Region::from_circles(vec![
                Circle::new(a, Km(500.0)),
                Circle::new(a.destination(90.0, Km(999.0)), Km(500.0)),
            ]),
            Region::new(),
        ];
        let mut scratch = RegionScratch::new();
        for (i, region) in regions.iter().enumerate() {
            let fresh = region.intersect();
            let reused = region.intersect_with(&mut scratch);
            match (fresh, reused) {
                (None, None) => {}
                (Some(f), Some(r)) => {
                    assert_eq!(
                        f.centroid.lat().to_bits(),
                        r.centroid.lat().to_bits(),
                        "region {i}"
                    );
                    assert_eq!(
                        f.centroid.lon().to_bits(),
                        r.centroid.lon().to_bits(),
                        "region {i}"
                    );
                    assert_eq!(f.area_km2.to_bits(), r.area_km2.to_bits(), "region {i}");
                    assert_eq!(f.tightest_radius, r.tightest_radius, "region {i}");
                }
                (f, r) => panic!("region {i}: fresh {f:?} vs reused {r:?}"),
            }
        }
    }

    #[test]
    fn refinement_finds_thin_lens() {
        // Nearly tangent circles: intersection is a thin lens that the base
        // grid may miss; refinement should still find it.
        let a = p(0.0, 0.0);
        let b = a.destination(90.0, Km(999.0));
        let region =
            Region::from_circles(vec![Circle::new(a, Km(500.0)), Circle::new(b, Km(500.0))]);
        let est = region.intersect();
        assert!(est.is_some(), "thin lens not found");
    }
}
