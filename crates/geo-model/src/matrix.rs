//! Flat structure-of-arrays measurement matrices.
//!
//! Campaigns produce millions of min-RTT cells; experiments then read them
//! row by row. Both types here store one flat row-major arena (no
//! `Vec<Vec<…>>` indirection, no per-row allocations) and are built in
//! parallel directly into that arena via
//! [`crate::runtime::par_fill_rows`], so construction stays bit-identical
//! at any `IPGEO_THREADS`.
//!
//! - [`DelayMatrix`] is the `f64` staging format: campaign outputs at full
//!   measurement precision, consumed by the §4.3 sanitizers whose
//!   physics comparisons must see the exact measured bits.
//! - [`RttMatrix`] is the `f32` dense format the experiments iterate over
//!   (half the memory; the paper's error metrics are kilometers, far above
//!   `f32` RTT resolution).
//!
//! In both, `NaN` encodes "no measurement" (timeout or diagonal): real
//! RTTs are finite and positive, so the encoding is unambiguous.

use crate::runtime::{par_fill_rows, par_fill_rows_with};
use crate::units::Ms;

/// A dense `f64` measurement matrix (ms; NaN = timeout/no measurement).
#[derive(Debug, Clone, PartialEq)]
pub struct DelayMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DelayMatrix {
    /// An all-NaN (unmeasured) matrix.
    pub fn new(rows: usize, cols: usize) -> DelayMatrix {
        DelayMatrix {
            rows,
            cols,
            data: vec![f64::NAN; rows * cols],
        }
    }

    /// Builds the matrix in parallel: `fill(r, row)` writes row `r`
    /// directly into the arena (cells start NaN).
    pub fn par_build<F>(rows: usize, cols: usize, fill: F) -> DelayMatrix
    where
        F: Fn(usize, &mut [f64]) + Sync,
    {
        DelayMatrix {
            rows,
            cols,
            data: par_fill_rows(rows, cols, f64::NAN, fill),
        }
    }

    /// [`DelayMatrix::par_build`] with per-worker scratch state (see
    /// [`crate::runtime::par_fill_rows_with`]): `mk()` is called once per
    /// worker, `fill(state, r, row)` per row of that worker's chunk.
    pub fn par_build_with<S, M, F>(rows: usize, cols: usize, mk: M, fill: F) -> DelayMatrix
    where
        M: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &mut [f64]) + Sync,
    {
        DelayMatrix {
            rows,
            cols,
            data: par_fill_rows_with(rows, cols, f64::NAN, mk, fill),
        }
    }

    /// Encodes one measurement as a cell (`NaN` = timeout).
    #[inline]
    pub fn cell(v: Option<Ms>) -> f64 {
        v.map_or(f64::NAN, |m| m.value())
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Option<Ms>) {
        self.data[r * self.cols + c] = DelayMatrix::cell(v);
    }

    /// The measured min-RTT, `None` on timeout.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<Ms> {
        let v = self.data[r * self.cols + c];
        if v.is_nan() {
            None
        } else {
            Some(Ms(v))
        }
    }

    /// One row of raw cells (`NaN` = timeout): a single bounds computation
    /// per row instead of one per cell.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// A dense `f32` min-RTT matrix (ms; NaN = timeout).
#[derive(Debug, Clone, PartialEq)]
pub struct RttMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl RttMatrix {
    /// An all-NaN (unmeasured) matrix.
    pub fn new(rows: usize, cols: usize) -> RttMatrix {
        RttMatrix {
            rows,
            cols,
            data: vec![f32::NAN; rows * cols],
        }
    }

    /// Builds the matrix in parallel: `fill(r, row)` writes row `r`
    /// directly into the arena (cells start NaN).
    pub fn par_build<F>(rows: usize, cols: usize, fill: F) -> RttMatrix
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        RttMatrix {
            rows,
            cols,
            data: par_fill_rows(rows, cols, f32::NAN, fill),
        }
    }

    /// Encodes one measurement as a cell (`NaN` = timeout).
    #[inline]
    pub fn cell(v: Option<Ms>) -> f32 {
        v.map_or(f32::NAN, |m| m.value() as f32)
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Option<Ms>) {
        self.data[r * self.cols + c] = RttMatrix::cell(v);
    }

    /// The measured min-RTT, `None` on timeout.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<Ms> {
        let v = self.data[r * self.cols + c];
        if v.is_nan() {
            None
        } else {
            Some(Ms(v as f64))
        }
    }

    /// One row of raw cells (`NaN` = timeout): the hot-loop access path —
    /// a single bounds computation per row instead of one per cell.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of rows (vantage points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (targets).
    pub fn cols(&self) -> usize {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_matrix_round_trips_and_stages_exact_bits() {
        let mut m = DelayMatrix::new(2, 3);
        assert_eq!(m.get(1, 2), None);
        let v = 12.345678901234567;
        m.set(0, 1, Some(Ms(v)));
        m.set(1, 0, None);
        assert_eq!(m.get(0, 1).unwrap().value().to_bits(), v.to_bits());
        assert_eq!(m.get(1, 0), None);
        assert!(m.row(0)[0].is_nan());
        assert_eq!(m.row(0)[1].to_bits(), v.to_bits());
    }

    #[test]
    fn rtt_matrix_round_trips_through_f32() {
        let mut m = RttMatrix::new(2, 2);
        m.set(0, 0, Some(Ms(88.25)));
        assert_eq!(m.get(0, 0), Some(Ms(88.25)));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn par_build_fills_rows_in_place() {
        let m = RttMatrix::par_build(8, 4, |r, row| {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = (r * 4 + c) as f32;
            }
        });
        for r in 0..8 {
            assert_eq!(m.row(r)[3], (r * 4 + 3) as f32);
        }
        let d = DelayMatrix::par_build(3, 2, |r, row| row.fill(r as f64));
        assert_eq!(d.row(2), &[2.0, 2.0]);
    }
}
