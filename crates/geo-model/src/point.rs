//! Points on the Earth and spherical geometry.
//!
//! All geometry uses the mean-radius spherical Earth model
//! ([`EARTH_RADIUS_KM`]), which is what the replicated geolocation papers
//! use implicitly when converting latency to distance: CBG errors are tens
//! of kilometers, three orders of magnitude above the ~0.5% error of the
//! spherical approximation.

use crate::units::Km;
use std::fmt;

/// Mean Earth radius in kilometers (IUGG mean radius R1).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Half the Earth's circumference: the maximum possible great-circle
/// distance between two points.
pub const MAX_DISTANCE_KM: f64 = std::f64::consts::PI * EARTH_RADIUS_KM;

/// A geographic coordinate: latitude and longitude in degrees.
///
/// Latitude is in `[-90, 90]`, longitude in `[-180, 180)`. Constructors
/// normalize out-of-range longitudes and clamp latitudes, so downstream code
/// can assume canonical values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a point, clamping latitude to `[-90, 90]` and wrapping
    /// longitude into `[-180, 180)`.
    pub fn new(lat: f64, lon: f64) -> GeoPoint {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0).rem_euclid(360.0) - 180.0;
        if lon >= 180.0 {
            lon -= 360.0;
        }
        GeoPoint { lat, lon }
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` using the haversine formula,
    /// numerically stable for small distances.
    pub fn distance(&self, other: &GeoPoint) -> Km {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().clamp(0.0, 1.0).asin();
        Km(EARTH_RADIUS_KM * c)
    }

    /// Initial bearing (forward azimuth) from `self` to `other`, in degrees
    /// clockwise from north, in `[0, 360)`.
    pub fn bearing_to(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point reached by travelling `distance` along the great circle
    /// with initial bearing `bearing_deg` (degrees clockwise from north).
    ///
    /// This is the primitive behind the street-level paper's concentric
    /// circle sampling (Tier 2/3): points on a circle of radius `r` around a
    /// centroid are `destination(centroid, k * alpha, r)`.
    pub fn destination(&self, bearing_deg: f64, distance: Km) -> GeoPoint {
        let delta = distance.value() / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos())
            .clamp(-1.0, 1.0)
            .asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        GeoPoint::new(lat2.to_degrees(), lon2.to_degrees())
    }

    /// The midpoint of the great-circle segment between `self` and `other`.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        let half = self.distance(other) / 2.0;
        let bearing = self.bearing_to(other);
        self.destination(bearing, half)
    }

    /// Geographic centroid of a set of points (mean of unit vectors on the
    /// sphere, projected back). Returns `None` for an empty slice or if the
    /// points cancel out exactly (antipodal degenerate case).
    pub fn centroid(points: &[GeoPoint]) -> Option<GeoPoint> {
        if points.is_empty() {
            return None;
        }
        let (mut x, mut y, mut z) = (0.0f64, 0.0f64, 0.0f64);
        for p in points {
            let lat = p.lat.to_radians();
            let lon = p.lon.to_radians();
            x += lat.cos() * lon.cos();
            y += lat.cos() * lon.sin();
            z += lat.sin();
        }
        let n = points.len() as f64;
        let (x, y, z) = (x / n, y / n, z / n);
        let norm = (x * x + y * y + z * z).sqrt();
        if norm < 1e-12 {
            return None;
        }
        let lat = (z / norm).asin().to_degrees();
        let lon = y.atan2(x).to_degrees();
        Some(GeoPoint::new(lat, lon))
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// Precomputed trigonometry of a [`GeoPoint`] for repeated spherical
/// geometry against many counterparts.
///
/// [`GeoPoint::distance`] and [`GeoPoint::destination`] re-derive the
/// radians and sine/cosine of both endpoints on every call; inner loops
/// that test one point against thousands of others (constraint-region
/// sampling, PoP detour scans) pay most of their time in that redundant
/// trig. `PointTrig` hoists it: the methods below replay the exact
/// floating-point operation sequence of their `GeoPoint` counterparts, so
/// results are **bit-identical** — only the redundant recomputation is
/// skipped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointTrig {
    /// The original point (degrees).
    point: GeoPoint,
    /// Latitude and longitude in radians.
    lat: f64,
    lon: f64,
    sin_lat: f64,
    cos_lat: f64,
}

impl PointTrig {
    /// Precomputes the trig of `point`.
    pub fn of(point: &GeoPoint) -> PointTrig {
        let lat = point.lat.to_radians();
        PointTrig {
            point: *point,
            lat,
            lon: point.lon.to_radians(),
            sin_lat: lat.sin(),
            cos_lat: lat.cos(),
        }
    }

    /// The original point.
    #[inline]
    pub fn point(&self) -> GeoPoint {
        self.point
    }

    /// [`GeoPoint::distance`], bit-identical, with both endpoints' trig
    /// precomputed.
    // geo-lint: hot-path
    #[inline]
    pub fn distance(&self, other: &PointTrig) -> Km {
        let dlat = other.lat - self.lat;
        let dlon = other.lon - self.lon;
        let a =
            (dlat / 2.0).sin().powi(2) + self.cos_lat * other.cos_lat * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().clamp(0.0, 1.0).asin();
        Km(EARTH_RADIUS_KM * c)
    }

    /// [`GeoPoint::destination`], bit-identical, with the origin's trig
    /// precomputed (the per-call trig is only the bearing and arc length).
    // geo-lint: hot-path
    pub fn destination(&self, bearing_deg: f64, distance: Km) -> GeoPoint {
        let delta = distance.value() / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat2 = (self.sin_lat * delta.cos() + self.cos_lat * delta.sin() * theta.cos())
            .clamp(-1.0, 1.0)
            .asin();
        let lon2 = self.lon
            + (theta.sin() * delta.sin() * self.cos_lat)
                .atan2(delta.cos() - self.sin_lat * lat2.sin());
        GeoPoint::new(lat2.to_degrees(), lon2.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn normalizes_longitude() {
        let p = GeoPoint::new(10.0, 190.0);
        assert!(close(p.lon(), -170.0, 1e-9));
        let q = GeoPoint::new(10.0, -190.0);
        assert!(close(q.lon(), 170.0, 1e-9));
    }

    #[test]
    fn clamps_latitude() {
        assert_eq!(GeoPoint::new(95.0, 0.0).lat(), 90.0);
        assert_eq!(GeoPoint::new(-95.0, 0.0).lat(), -90.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(48.8566, 2.3522);
        assert!(p.distance(&p).value() < 1e-9);
    }

    #[test]
    fn known_distance_paris_london() {
        // Paris <-> London is ~344 km.
        let paris = GeoPoint::new(48.8566, 2.3522);
        let london = GeoPoint::new(51.5074, -0.1278);
        let d = paris.distance(&london).value();
        assert!((330.0..360.0).contains(&d), "got {d}");
    }

    #[test]
    fn known_distance_equator_quarter() {
        // A quarter of the equator.
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 90.0);
        let d = a.distance(&b).value();
        assert!(close(d, MAX_DISTANCE_KM / 2.0, 1.0), "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(37.77, -122.42);
        let b = GeoPoint::new(-33.87, 151.21);
        assert!(close(a.distance(&b).value(), b.distance(&a).value(), 1e-9));
    }

    #[test]
    fn destination_inverts_distance() {
        let start = GeoPoint::new(40.0, -74.0);
        let dest = start.destination(63.0, Km(500.0));
        assert!(close(start.distance(&dest).value(), 500.0, 0.5));
    }

    #[test]
    fn destination_bearing_north() {
        let start = GeoPoint::new(0.0, 0.0);
        let dest = start.destination(0.0, Km(111.0));
        assert!(close(dest.lon(), 0.0, 1e-6));
        assert!(dest.lat() > 0.9 && dest.lat() < 1.1);
    }

    #[test]
    fn bearing_east_at_equator() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 10.0);
        assert!(close(a.bearing_to(&b), 90.0, 1e-6));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = GeoPoint::new(48.8566, 2.3522);
        let b = GeoPoint::new(51.5074, -0.1278);
        let m = a.midpoint(&b);
        assert!(close(a.distance(&m).value(), b.distance(&m).value(), 0.1));
    }

    #[test]
    fn centroid_of_symmetric_points() {
        let pts = [
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(-1.0, 1.0),
            GeoPoint::new(1.0, -1.0),
            GeoPoint::new(-1.0, -1.0),
        ];
        let c = GeoPoint::centroid(&pts).unwrap();
        assert!(close(c.lat(), 0.0, 1e-6));
        assert!(close(c.lon(), 0.0, 1e-6));
    }

    #[test]
    fn centroid_empty_is_none() {
        assert!(GeoPoint::centroid(&[]).is_none());
    }

    /// A deterministic scatter of awkward points (poles, antimeridian,
    /// near-coincident pairs) for the bit-equality checks.
    fn scatter() -> Vec<GeoPoint> {
        let mut pts = vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(90.0, 0.0),
            GeoPoint::new(-90.0, 13.0),
            GeoPoint::new(51.5074, -0.1278),
            GeoPoint::new(51.5074, -0.1279),
            GeoPoint::new(-33.87, 151.21),
            GeoPoint::new(10.0, 179.999),
            GeoPoint::new(10.0, -179.999),
        ];
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for _ in 0..40 {
            h = h.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(17);
            let lat = (h >> 40) as f64 / (1u64 << 24) as f64 * 180.0 - 90.0;
            let lon = (h & 0xFFFF_FFFF) as f64 / (1u64 << 32) as f64 * 360.0 - 180.0;
            pts.push(GeoPoint::new(lat, lon));
        }
        pts
    }

    #[test]
    fn point_trig_distance_is_bit_identical() {
        let pts = scatter();
        let trig: Vec<PointTrig> = pts.iter().map(PointTrig::of).collect();
        for (a, ta) in pts.iter().zip(&trig) {
            for (b, tb) in pts.iter().zip(&trig) {
                assert_eq!(
                    a.distance(b).value().to_bits(),
                    ta.distance(tb).value().to_bits(),
                    "distance bits drifted for {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn point_trig_destination_is_bit_identical() {
        for p in scatter() {
            let t = PointTrig::of(&p);
            for (i, bearing) in [0.0, 63.0, 90.0, 179.5, 270.0, 359.0]
                .into_iter()
                .enumerate()
            {
                let d = Km(7.0 + 997.0 * i as f64);
                let a = p.destination(bearing, d);
                let b = t.destination(bearing, d);
                assert_eq!(a.lat().to_bits(), b.lat().to_bits());
                assert_eq!(a.lon().to_bits(), b.lon().to_bits());
            }
        }
    }
}
