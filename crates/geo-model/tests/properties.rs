//! Property-based tests for the geometric and statistical primitives.

use geo_model::constraint::{Circle, Region};
use geo_model::point::{GeoPoint, MAX_DISTANCE_KM};
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use geo_model::units::{Km, Ms};
use geo_model::Ipv4;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-85.0f64..85.0, -180.0f64..180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn distance_symmetric(a in arb_point(), b in arb_point()) {
        let d1 = a.distance(&b).value();
        let d2 = b.distance(&a).value();
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn distance_bounded(a in arb_point(), b in arb_point()) {
        let d = a.distance(&b).value();
        prop_assert!(d >= 0.0);
        prop_assert!(d <= MAX_DISTANCE_KM + 1.0);
    }

    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.distance(&b).value();
        let bc = b.distance(&c).value();
        let ac = a.distance(&c).value();
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn destination_distance_roundtrip(
        p in arb_point(),
        bearing in 0.0f64..360.0,
        dist in 0.1f64..5000.0,
    ) {
        let q = p.destination(bearing, Km(dist));
        let back = p.distance(&q).value();
        // Spherical math is exact; allow small numeric slack.
        prop_assert!((back - dist).abs() < dist * 1e-6 + 1e-6,
            "wanted {dist}, got {back}");
    }

    #[test]
    fn soi_roundtrip(rtt in 0.01f64..500.0) {
        for soi in [SpeedOfInternet::CBG, SpeedOfInternet::STREET_LEVEL] {
            let d = soi.max_distance(Ms(rtt));
            let back = soi.min_rtt(d).value();
            prop_assert!((back - rtt).abs() < 1e-9);
        }
    }

    #[test]
    fn soi_min_rtt_never_violates(dist in 0.0f64..15000.0) {
        let soi = SpeedOfInternet::CBG;
        let min = soi.min_rtt(Km(dist));
        prop_assert!(!soi.violates(Km(dist), min));
        // Any faster RTT violates (strictly positive distances only).
        if dist > 1.0 {
            prop_assert!(soi.violates(Km(dist), min * 0.5));
        }
    }

    #[test]
    fn region_centroid_satisfies_sound_constraints(
        target in arb_point(),
        dists in prop::collection::vec((0.0f64..360.0, 10.0f64..2000.0, 1.0f64..1.8), 2..8),
    ) {
        // Build circles that all genuinely contain the target: place VPs at
        // random offsets and give each a radius = true distance * slack.
        let circles: Vec<Circle> = dists
            .iter()
            .map(|&(bearing, d, slack)| {
                let vp = target.destination(bearing, Km(d));
                Circle::new(vp, Km(d * slack + 1.0))
            })
            .collect();
        let tightest = circles
            .iter()
            .map(|c| c.radius.value())
            .fold(f64::INFINITY, f64::min);
        let region = Region::from_circles(circles);
        let est = region.intersect();
        prop_assert!(est.is_some(), "sound constraints must intersect");
        let est = est.unwrap();
        // The centroid cannot be further than the diameter of the tightest
        // circle from the target (both lie inside it).
        let err = est.centroid.distance(&target).value();
        prop_assert!(err <= 2.0 * tightest + 1.0, "err {err}, tightest {tightest}");
    }

    #[test]
    fn ipv4_display_parse_roundtrip(raw in any::<u32>()) {
        let addr = Ipv4(raw);
        let parsed: Ipv4 = addr.to_string().parse().unwrap();
        prop_assert_eq!(addr, parsed);
    }

    #[test]
    fn prefix_contains_its_addresses(raw in any::<u32>()) {
        let addr = Ipv4(raw);
        let prefix = addr.prefix24();
        prop_assert!(prefix.contains(addr));
        prop_assert_eq!(prefix.host(addr.host_byte()), addr);
    }

    #[test]
    fn cdf_monotone(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = stats::empirical_cdf(&data);
        for w in cdf.windows(2) {
            prop_assert!(w[0].value <= w[1].value);
            prop_assert!(w[0].fraction <= w[1].fraction);
        }
        prop_assert!((cdf.last().unwrap().fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_ordered(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let q1 = stats::quantile(&data, 0.25).unwrap();
        let q2 = stats::quantile(&data, 0.5).unwrap();
        let q3 = stats::quantile(&data, 0.75).unwrap();
        prop_assert!(q1 <= q2 && q2 <= q3);
    }

    #[test]
    fn pearson_in_range(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100),
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = stats::pearson(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn pearson_scale_invariant(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..50),
        scale in 0.1f64..100.0,
        shift in -100.0f64..100.0,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let y2: Vec<f64> = y.iter().map(|v| v * scale + shift).collect();
        if let (Some(r1), Some(r2)) = (stats::pearson(&x, &y), stats::pearson(&x, &y2)) {
            prop_assert!((r1 - r2).abs() < 1e-6);
        }
    }
}
