//! An open-loop load generator for the binary pipelined query protocol.
//!
//! "Lost in the Prefix" motivates realistic *skewed* per-prefix load: a
//! handful of hot `/24`s absorb most real traffic, so the generator
//! samples queried addresses from a zipfian popularity distribution over
//! the served prefix pool (seeded, so a run's query stream is
//! reproducible) rather than sweeping uniformly.
//!
//! Shape: `connections` TCP connections, each with a sender and a
//! receiver thread. Senders pre-encode every frame **before** the timed
//! window so the measurement sees protocol + server cost, not client
//! `format!` cost. Two pacing modes:
//!
//! - **closed loop** (`rate_qps: None`): each sender keeps up to
//!   `pipeline_depth` frames in flight, throttled by a window counter
//!   the receiver releases — max-throughput mode;
//! - **open loop** (`rate_qps: Some(r)`): frame k of a connection has a
//!   *scheduled* departure at `start + k/frame_rate`, and latency is
//!   measured from that scheduled instant even when the sender is
//!   running late — the standard coordinated-omission guard, so a
//!   stalled server cannot flatter its own percentiles.
//!
//! Responses come back in send order on each connection (the protocol
//! guarantees it), so the receiver matches latency samples FIFO and
//! verifies every answer count. Percentiles are computed over the merged
//! samples of all connections.

use geo_model::distr::Zipf;
use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use geo_serve::proto::{encode_request, try_decode_response, Decoded, Opcode, Response};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One load-generation run's shape.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Addresses per LOCATE frame (batching factor).
    pub batch: usize,
    /// Frames in flight per connection (closed loop only).
    pub pipeline_depth: usize,
    /// Frames each connection sends.
    pub frames_per_connection: usize,
    /// Aggregate target arrival rate in queries/s; `None` = closed loop.
    pub rate_qps: Option<f64>,
    /// Zipf skew exponent over the prefix pool (1.0 ≈ classic web skew).
    pub zipf_s: f64,
    /// Seed for the query stream (reproducible runs).
    pub seed: u64,
    /// Extra connections opened before the timed window and held idle
    /// through it — they send nothing, so a server with sweep parking
    /// should serve the active connections at undiminished qps.
    pub idle_connections: usize,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            connections: 4,
            batch: 64,
            pipeline_depth: 8,
            frames_per_connection: 400,
            rate_qps: None,
            zipf_s: 1.0,
            seed: 631,
            idle_connections: 0,
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections used.
    pub connections: usize,
    /// Addresses per frame.
    pub batch: usize,
    /// Frames in flight per connection (closed loop).
    pub pipeline_depth: usize,
    /// Total frames sent (and answered).
    pub frames: u64,
    /// Total addresses queried.
    pub queries: u64,
    /// Hits among the answers.
    pub hits: u64,
    /// Misses among the answers.
    pub misses: u64,
    /// Wall-clock of the timed window, seconds.
    pub elapsed_s: f64,
    /// Queries answered per second.
    pub qps: f64,
    /// The open-loop target, when one was set.
    pub target_qps: Option<f64>,
    /// Median per-frame latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile frame latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile frame latency, microseconds.
    pub p999_us: f64,
}

/// The percentile at `q` (0..=1) of an unsorted sample set, by the
/// nearest-rank method.
fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Pre-encodes one connection's frames: zipf-sampled addresses over the
/// pool, `batch` per frame, with per-frame byte offsets for pipelined
/// slicing.
fn encode_frames(pool: &[Ipv4], cfg: &LoadgenConfig, conn: usize) -> (Vec<u8>, Vec<usize>) {
    let mut rng = Seed(cfg.seed).derive_index("loadgen", conn as u64).rng();
    let zipf = Zipf::new(pool.len().max(1), cfg.zipf_s);
    let mut bytes = Vec::new();
    let mut bounds = vec![0];
    for _ in 0..cfg.frames_per_connection {
        let ips: Vec<Ipv4> = (0..cfg.batch)
            .map(|_| pool[zipf.sample_rank(&mut rng) % pool.len().max(1)])
            .collect();
        encode_request(&mut bytes, Opcode::Locate, &ips).expect("frame within budget");
        bounds.push(bytes.len());
    }
    (bytes, bounds)
}

/// Window counter released by the receiver; bounds frames in flight.
struct Window {
    outstanding: Mutex<usize>,
    released: Condvar,
}

impl Window {
    fn acquire(&self, depth: usize) {
        let mut outstanding = self
            .outstanding
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *outstanding >= depth {
            outstanding = self
                .released
                .wait(outstanding)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *outstanding += 1;
    }

    fn release(&self) {
        let mut outstanding = self
            .outstanding
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *outstanding = outstanding.saturating_sub(1);
        drop(outstanding);
        self.released.notify_one();
    }
}

/// One connection's receive loop: decode `frames` responses, matching
/// departure timestamps FIFO, returning `(latencies_us, hits, misses)`.
fn receive_all(
    stream: &mut TcpStream,
    frames: usize,
    departures: &Mutex<std::collections::VecDeque<Instant>>,
    window: &Window,
) -> (Vec<f64>, u64, u64) {
    let mut latencies = Vec::with_capacity(frames);
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut buf = Vec::with_capacity(64 * 1024);
    let mut parsed = 0;
    let mut chunk = vec![0u8; 64 * 1024];
    let mut received = 0;
    while received < frames {
        match try_decode_response(&buf[parsed..]) {
            Ok(Decoded::Frame(resp, used)) => {
                parsed += used;
                received += 1;
                let departed = departures
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front()
                    .expect("a departure per response");
                latencies.push(departed.elapsed().as_secs_f64() * 1e6);
                window.release();
                match resp {
                    Response::Records { records, .. } => {
                        for r in &records {
                            if r.hit {
                                hits += 1;
                            } else {
                                misses += 1;
                            }
                        }
                    }
                    Response::Stats(_) => {}
                    Response::Error(msg) => panic!("server error under load: {msg}"),
                    Response::Busy => panic!("server shed a loadgen connection mid-run"),
                }
                continue;
            }
            Ok(Decoded::NeedMore) => {}
            Err(e) => panic!("bad response frame under load: {e}"),
        }
        if parsed > 0 && parsed == buf.len() {
            buf.clear();
            parsed = 0;
        } else if parsed > chunk.len() {
            buf.drain(..parsed);
            parsed = 0;
        }
        let n = stream.read(&mut chunk).expect("read responses");
        assert!(n > 0, "server closed mid-run ({received}/{frames} frames)");
        buf.extend_from_slice(&chunk[..n]);
    }
    (latencies, hits, misses)
}

/// Runs one load-generation pass against a serving address.
///
/// `pool` is the address population to sample from (typically one host
/// per served prefix); ranks are zipf-distributed so low-index pool
/// entries are the hot set.
pub fn run(addr: &str, pool: &[Ipv4], cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(cfg.connections > 0 && cfg.batch > 0 && cfg.frames_per_connection > 0);
    // Idle bystanders: connected for the whole run, never speaking.
    // Dropped (and thus closed) only after the timed window ends.
    let idle: Vec<TcpStream> = (0..cfg.idle_connections)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();
    let encoded: Vec<(Vec<u8>, Vec<usize>)> = (0..cfg.connections)
        .map(|c| encode_frames(pool, cfg, c))
        .collect();
    // Per-connection frame interval for the open-loop schedule.
    let frame_interval = cfg.rate_qps.map(|r| {
        let per_conn_qps = r / cfg.connections as f64;
        Duration::from_secs_f64(cfg.batch as f64 / per_conn_qps)
    });

    let started = Instant::now();
    let merged: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = encoded
            .iter()
            .map(|(bytes, bounds)| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut rx = stream.try_clone().expect("clone");
                    let mut tx = stream;
                    let departures = Mutex::new(std::collections::VecDeque::with_capacity(
                        cfg.pipeline_depth + 1,
                    ));
                    let window = Window {
                        outstanding: Mutex::new(0),
                        released: Condvar::new(),
                    };
                    let conn_start = Instant::now();
                    std::thread::scope(|inner| {
                        let receiver = inner.spawn(|| {
                            receive_all(&mut rx, cfg.frames_per_connection, &departures, &window)
                        });
                        for frame in 0..cfg.frames_per_connection {
                            let departed = match frame_interval {
                                // Open loop: latency clocks from the
                                // *scheduled* departure, sleeping only
                                // when ahead of schedule.
                                Some(interval) => {
                                    let scheduled = conn_start + interval * frame as u32;
                                    let now = Instant::now();
                                    if scheduled > now {
                                        std::thread::sleep(scheduled - now);
                                    }
                                    scheduled
                                }
                                // Closed loop: window-throttled, latency
                                // clocks from the actual send.
                                None => {
                                    window.acquire(cfg.pipeline_depth.max(1));
                                    Instant::now()
                                }
                            };
                            departures
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push_back(departed);
                            tx.write_all(&bytes[bounds[frame]..bounds[frame + 1]])
                                .expect("send frame");
                        }
                        receiver.join().expect("receiver")
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn"))
            .collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    drop(idle);

    let mut latencies: Vec<f64> = merged
        .iter()
        .flat_map(|(l, _, _)| l.iter().copied())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let hits: u64 = merged.iter().map(|(_, h, _)| h).sum();
    let misses: u64 = merged.iter().map(|(_, _, m)| m).sum();
    let frames = (cfg.connections * cfg.frames_per_connection) as u64;
    let queries = frames * cfg.batch as u64;
    LoadgenReport {
        connections: cfg.connections,
        batch: cfg.batch,
        pipeline_depth: cfg.pipeline_depth,
        frames,
        queries,
        hits,
        misses,
        elapsed_s,
        qps: queries as f64 / elapsed_s,
        target_qps: cfg.rate_qps,
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        p999_us: percentile_us(&latencies, 0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 500.0);
        assert_eq!(percentile_us(&sorted, 0.99), 990.0);
        assert_eq!(percentile_us(&sorted, 0.999), 999.0);
        assert_eq!(percentile_us(&[], 0.99), 0.0);
        assert_eq!(percentile_us(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn frame_encoding_is_seed_reproducible_and_skewed() {
        let pool: Vec<Ipv4> = (0..512u32).map(Ipv4).collect();
        let cfg = LoadgenConfig {
            frames_per_connection: 32,
            ..LoadgenConfig::default()
        };
        let (a, bounds_a) = encode_frames(&pool, &cfg, 0);
        let (b, _) = encode_frames(&pool, &cfg, 0);
        assert_eq!(a, b, "same seed, same connection => same query stream");
        let (c, _) = encode_frames(&pool, &cfg, 1);
        assert_ne!(a, c, "different connections draw different streams");
        assert_eq!(bounds_a.len(), cfg.frames_per_connection + 1);
        // Zipf skew: rank 0 must dominate any deep-tail rank. Count
        // occurrences of the hottest address in the raw bytes.
        let hot = pool[0].0.to_le_bytes();
        let hot_count = a.windows(4).filter(|w| *w == hot).count();
        let cold = pool[409].0.to_le_bytes();
        let cold_count = a.windows(4).filter(|w| *w == cold).count();
        assert!(
            hot_count > cold_count.saturating_mul(4),
            "zipf hot rank ({hot_count}) should dwarf a deep rank ({cold_count})"
        );
    }
}
