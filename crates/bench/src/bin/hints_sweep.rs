//! Hint sweep: fused (CBG + verified rDNS hints) vs pure-latency CBG.
fn main() {
    bench::run(|d| vec![eval::experiments::hints::hint_sweep(d)]);
}
