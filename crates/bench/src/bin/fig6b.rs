//! Regenerates the figure from the shared street-level pipeline run.
fn main() {
    bench::run(|d| {
        let set = eval::experiments::fig5::StreetSet::compute(d);
        vec![eval::experiments::fig6::fig6b(d, &set)]
    });
}
