//! Regenerates every table and figure in one run (the street-level
//! pipeline is executed once and shared across Figures 5 and 6).
use eval::experiments as ex;

fn main() {
    bench::run(|d| {
        let set = ex::fig5::StreetSet::compute(d);
        vec![
            ex::tables::tab1(d),
            ex::tables::tab2(d),
            ex::sanity::sanitize_report(d),
            ex::fig2::fig2a(d),
            ex::fig2::fig2b(d),
            ex::fig2::fig2c(d),
            ex::fig3::fig3a(d),
            ex::fig3::fig3bc(d),
            ex::fig4::fig4(d),
            ex::fig5::fig5a(d, &set),
            ex::fig5::fig5b(d, &set),
            ex::fig5::fig5c(d, &set),
            ex::fig6::fig6a(d, &set),
            ex::fig6::fig6b(d, &set),
            ex::fig6::fig6c(d, &set),
            ex::fig7::fig7(d),
            ex::fig8::fig8(d),
            ex::faults::fault_sweep(d),
            ex::sanity::deployability(d),
        ]
    });
}
