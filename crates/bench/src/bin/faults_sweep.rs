//! Fault sweep: million-scale accuracy under injected platform faults.
fn main() {
    bench::run(|d| vec![eval::experiments::faults::fault_sweep(d)]);
}
