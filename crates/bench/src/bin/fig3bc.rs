//! Regenerates Figures 3b and 3c (two-step selection accuracy + overhead).
fn main() {
    bench::run(|d| vec![eval::experiments::fig3::fig3bc(d)]);
}
