//! Regenerates the street-level figure; shares the pipeline run with the
//! other fig5/fig6 binaries via `StreetSet`.
fn main() {
    bench::run(|d| {
        let set = eval::experiments::fig5::StreetSet::compute(d);
        vec![eval::experiments::fig5::fig5b(d, &set)]
    });
}
