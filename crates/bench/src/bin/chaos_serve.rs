//! `chaos_serve`: the seeded socket-level chaos harness as a CI gate.
//!
//! Runs the full `geo_serve::chaos` equivalence experiment twice against
//! a fixed synthetic snapshot — once clean (baseline), once with half
//! the fleet replaying seeded fault schedules — and prints the attacked
//! run's [`ChaosReport`] lines. Every printed value is a pure function
//! of the seed: no wall-clock readings, no worker counts, no ordering
//! artifacts, so CI can `cmp` the output across repeat runs and across
//! `IPGEO_THREADS` settings. Exits 1 when the clean clients' byte
//! streams differ between the baseline and the attacked run (the
//! equivalence contract), or when either run fails outright.
//!
//! Usage: `chaos_serve [--seed N] [--workers N]`
//!   --seed N      chaos schedule seed (default 7)
//!   --workers N   server worker threads; 0 = `IPGEO_THREADS` (default 0)

use geo_model::ip::Prefix24;
use geo_model::point::GeoPoint;
use geo_serve::chaos::{self, ChaosConfig};
use geo_serve::DatasetStore;
use ipgeo::publish::{DatasetEntry, Evidence};
use std::sync::Arc;

/// The fixed snapshot the harness serves: synthetic, constructed
/// in-process so the gate needs no files and no world build.
fn store() -> Arc<DatasetStore> {
    let entries: Vec<DatasetEntry> = (0..64u32)
        .map(|i| DatasetEntry {
            prefix: Prefix24(i * 11 + 5),
            location: GeoPoint::new(f64::from(i % 170) - 85.0, f64::from(i % 350) - 175.0),
            evidence: match i % 3 {
                0 => Evidence::Geofeed,
                1 => Evidence::DnsHint {
                    hostname: format!("pop-{i}.example.net"),
                },
                _ => Evidence::Whois,
            },
        })
        .collect();
    Arc::new(DatasetStore::from_entries(&entries, 42, 1))
}

fn parse_args() -> Result<(u64, usize), String> {
    let mut seed = 7u64;
    let mut workers = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--seed" => {
                seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => {
                workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((seed, workers))
}

fn main() {
    let (seed, workers) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("chaos_serve: {e}");
            std::process::exit(2);
        }
    };
    let store = store();
    let cfg = ChaosConfig {
        seed,
        clean_conns: 6,
        chaos_conns: 6,
        queries_per_conn: 10,
        workers,
        shed_cap: 4,
        shed_extra: 3,
    };

    let baseline = match chaos::run(&store, &cfg, false) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("chaos_serve: baseline run failed: {e}");
            std::process::exit(1);
        }
    };
    let attacked = match chaos::run(&store, &cfg, true) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("chaos_serve: attacked run failed: {e}");
            std::process::exit(1);
        }
    };

    // The equivalence contract: chaos connections must be invisible in
    // the bytes every clean client reads.
    if baseline.clean_digest != attacked.clean_digest {
        eprintln!(
            "chaos_serve: EQUIVALENCE VIOLATION: clean digest {:016x} (baseline) != {:016x} (attacked)",
            baseline.clean_digest, attacked.clean_digest
        );
        std::process::exit(1);
    }

    print!("{}", attacked.lines());
}
