//! Builds the paper's motivating deliverable: an explainable geolocation
//! dataset over the target prefixes, printing per-method accuracy and a
//! CSV preview.

use geo_model::ip::Prefix24;
use geo_model::stats;
use ipgeo::publish::{build_dataset, to_csv};
use std::collections::HashMap;

fn main() {
    let d = bench::load_dataset();
    let prefixes: Vec<Prefix24> = d
        .targets
        .iter()
        .map(|&t| d.world.host(t).ip.prefix24())
        .collect();
    // A coverage subset keeps the latency tier affordable.
    let mesh = ipgeo::two_step::greedy_coverage(&d.world, &d.vps, 500);
    let ds = build_dataset(&d.world, &d.net, &mesh, &prefixes, 1);

    let mut per_method: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for e in &ds {
        let target = d
            .targets
            .iter()
            .map(|&t| d.world.host(t))
            .find(|h| h.ip.prefix24() == e.prefix)
            .expect("dataset prefixes come from targets");
        per_method
            .entry(e.evidence.method())
            .or_default()
            .push(e.location.distance(&target.location).value());
    }
    println!("## Explainable geolocation dataset ({} prefixes)", ds.len());
    println!("| method | prefixes | median error (km) | city level |");
    println!("|---|---|---|---|");
    let mut methods: Vec<_> = per_method.into_iter().collect();
    methods.sort_by_key(|(m, _)| *m);
    for (method, errs) in methods {
        println!(
            "| {method} | {} | {:.1} | {:.0}% |",
            errs.len(),
            stats::median(&errs).unwrap_or(f64::NAN),
            100.0 * stats::fraction_at_most(&errs, 40.0)
        );
    }
    println!("\nCSV preview:");
    for line in to_csv(&ds).lines().take(8) {
        println!("  {line}");
    }
}
