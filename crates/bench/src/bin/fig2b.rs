//! Regenerates the paper artifact; see DESIGN.md's per-experiment index.
fn main() {
    bench::run(|d| vec![eval::experiments::fig2::fig2b(d)]);
}
