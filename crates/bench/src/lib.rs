//! Shared plumbing for the `fig*`/`tab*` binaries.
//!
//! Every binary loads the evaluation dataset at the scale selected by the
//! environment (`IPGEO_FULL=1` for paper fidelity, `IPGEO_SEED=<n>` to
//! change the world) and prints one or more reports.

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

pub mod loadgen;

use eval::{Dataset, EvalScale, Report};

/// Loads the dataset per the environment and times the load.
pub fn load_dataset() -> Dataset {
    let scale = EvalScale::from_env();
    eprintln!(
        "loading dataset (paper_world={}, targets={:?}, trials={}, seed={})…",
        scale.paper_world, scale.target_sample, scale.trials, scale.seed.0
    );
    let t = std::time::Instant::now();
    let d = Dataset::load(scale);
    eprintln!(
        "dataset ready in {:.1}s: {} targets, {} VPs, {} anchors",
        t.elapsed().as_secs_f64(),
        d.targets.len(),
        d.vps.len(),
        d.anchors.len()
    );
    d
}

/// Prints reports with a timing line each.
pub fn run(make: impl FnOnce(&Dataset) -> Vec<Report>) {
    let d = load_dataset();
    let t = std::time::Instant::now();
    for report in make(&d) {
        println!("{report}");
    }
    eprintln!("experiments done in {:.1}s", t.elapsed().as_secs_f64());
}
