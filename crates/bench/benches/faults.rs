//! Resilient-executor benchmarks: what the fault-tolerance layer costs
//! when nothing fails (the acceptance bound is <3% over the direct path)
//! and what recovery costs under the flaky/hostile profiles.
//!
//! `cargo bench -p bench --bench faults` runs the Criterion group;
//! `cargo bench -p bench --bench faults -- --snapshot` additionally
//! rewrites `BENCH_faults.json` at the repo root.

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use atlas_sim::{FaultPlan, FaultProfile};
use criterion::{criterion_group, Criterion};
use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use ipgeo::resilient::{self, CampaignReport, TargetLog};
use ipgeo::Resilience;
use net_sim::Network;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

fn setup() -> (World, Network, Vec<HostId>, Vec<Ipv4>) {
    let world = World::generate(WorldConfig::small(Seed(441))).expect("small world");
    let net = Network::new(Seed(441));
    let vps: Vec<HostId> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let targets: Vec<Ipv4> = world.anchors.iter().map(|&a| world.host(a).ip).collect();
    (world, net, vps, targets)
}

fn batch_key(target: Ipv4) -> u64 {
    0xFA17 ^ target.0 as u64
}

/// The pre-executor path: every VP pings every target directly.
fn direct_sweep(world: &World, net: &Network, vps: &[HostId], targets: &[Ipv4]) -> f64 {
    let mut acc = 0.0;
    for &t in targets {
        for &vp in vps {
            if let net_sim::PingOutcome::Reply(rtt) = net.ping_min(world, vp, t, 3, batch_key(t)) {
                acc += rtt.value();
            }
        }
    }
    acc
}

/// The same sweep through the resilient executor.
fn executor_sweep(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    targets: &[Ipv4],
) -> (f64, CampaignReport) {
    let mut acc = 0.0;
    let mut report = CampaignReport::default();
    for &t in targets {
        let mut log = TargetLog::default();
        for (_, outcome) in
            resilient::ping_batch(world, net, res, vps, t, 3, batch_key(t), &mut log)
        {
            if let Some(rtt) = outcome.rtt() {
                acc += rtt.value();
            }
        }
        report.absorb(&log);
    }
    (acc, report)
}

fn bench_faults(c: &mut Criterion) {
    let (world, net, vps, targets) = setup();
    direct_sweep(&world, &net, &vps, &targets); // warm the base-delay cache

    let mut g = c.benchmark_group("faults");
    g.sample_size(10);
    g.bench_function("sweep/direct", |b| {
        b.iter(|| direct_sweep(&world, &net, &vps, &targets));
    });
    g.bench_function("sweep/executor_none", |b| {
        let res = Resilience::none();
        b.iter(|| executor_sweep(&world, &net, &res, &vps, &targets));
    });
    let flaky = FaultPlan::new(Seed(441), FaultProfile::Flaky);
    g.bench_function("sweep/executor_flaky", |b| {
        let res = Resilience::with_plan(&flaky);
        b.iter(|| executor_sweep(&world, &net, &res, &vps, &targets));
    });
    let hostile = FaultPlan::new(Seed(441), FaultProfile::Hostile);
    g.bench_function("sweep/executor_hostile", |b| {
        let res = Resilience::with_plan(&hostile);
        b.iter(|| executor_sweep(&world, &net, &res, &vps, &targets));
    });
    g.finish();
}

criterion_group!(faults, bench_faults);

/// Median of `reps` wall-clock timings of `f`, in seconds.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            criterion::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One fixed-shape measurement pass, written to `BENCH_faults.json`.
fn write_snapshot() {
    let (world, net, vps, targets) = setup();
    direct_sweep(&world, &net, &vps, &targets); // warm the base-delay cache

    // One sweep is a few milliseconds, and the effect under test is sub-3%:
    // time batches of sweeps (so scheduler noise amortizes) and interleave
    // the direct/executor samples (so slow machine-state drift cancels).
    const BATCH: usize = 10;
    println!("snapshot: timing the fault-free sweep (direct vs executor)");
    let none = Resilience::none();
    direct_sweep(&world, &net, &vps, &targets);
    executor_sweep(&world, &net, &none, &vps, &targets);
    let mut direct_samples = Vec::new();
    let mut executor_samples = Vec::new();
    for _ in 0..15 {
        let t = std::time::Instant::now();
        for _ in 0..BATCH {
            criterion::black_box(direct_sweep(&world, &net, &vps, &targets));
        }
        direct_samples.push(t.elapsed().as_secs_f64() / BATCH as f64);
        let t = std::time::Instant::now();
        for _ in 0..BATCH {
            criterion::black_box(executor_sweep(&world, &net, &none, &vps, &targets));
        }
        executor_samples.push(t.elapsed().as_secs_f64() / BATCH as f64);
    }
    direct_samples.sort_by(f64::total_cmp);
    executor_samples.sort_by(f64::total_cmp);
    let direct = direct_samples[direct_samples.len() / 2];
    let executor = executor_samples[executor_samples.len() / 2];
    let overhead_pct = (executor / direct - 1.0) * 100.0;

    println!("snapshot: timing the faulty sweeps (flaky, hostile)");
    let flaky_plan = FaultPlan::new(Seed(441), FaultProfile::Flaky);
    let flaky_res = Resilience::with_plan(&flaky_plan);
    let flaky = time_median(3, || {
        executor_sweep(&world, &net, &flaky_res, &vps, &targets)
    });
    let (_, flaky_report) = executor_sweep(&world, &net, &flaky_res, &vps, &targets);
    let hostile_plan = FaultPlan::new(Seed(441), FaultProfile::Hostile);
    let hostile_res = Resilience::with_plan(&hostile_plan);
    let hostile = time_median(3, || {
        executor_sweep(&world, &net, &hostile_res, &vps, &targets)
    });
    let (_, hostile_report) = executor_sweep(&world, &net, &hostile_res, &vps, &targets);

    let json = format!(
        r#"{{
  "bench": "faults",
  "sweep": {{ "targets": {}, "vps": {}, "packets_per_ping": 3 }},
  "fault_free": {{
    "direct_s": {direct:.4},
    "executor_none_s": {executor:.4},
    "executor_overhead_pct": {overhead_pct:.2},
    "acceptance": "executor overhead at fault rate 0 must stay under 3%"
  }},
  "flaky": {{
    "sweep_s": {flaky:.4},
    "retries": {},
    "faults_survived": {},
    "delivered": {},
    "requested": {}
  }},
  "hostile": {{
    "sweep_s": {hostile:.4},
    "retries": {},
    "faults_survived": {},
    "delivered": {},
    "requested": {}
  }},
  "note": "same seed and nonce per batch in every mode; the fault-free executor issues exactly the direct path's net-sim calls"
}}
"#,
        targets.len(),
        vps.len(),
        flaky_report.retries,
        flaky_report.faults.total(),
        flaky_report.delivered,
        flaky_report.requested,
        hostile_report.retries,
        hostile_report.faults.total(),
        hostile_report.delivered,
        hostile_report.requested,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    println!("snapshot written to {path}:\n{json}");
}

fn main() {
    if std::env::args().any(|a| a == "--snapshot") {
        write_snapshot();
        return;
    }
    faults();
}
