//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - speed-of-Internet factor (2/3 c vs 4/9 c) in CBG;
//! - greedy earth-covering vs arbitrary first-step subsets in the
//!   two-step selection;
//! - routing asymmetry on vs off (the `D1 + D2` noise source);
//! - the redundant-circle filter in the region intersection.

use criterion::{criterion_group, criterion_main, Criterion};
use geo_model::constraint::{Circle, Region};
use geo_model::point::GeoPoint;
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Km;
use ipgeo::cbg::{cbg, VpMeasurement};
use net_sim::{NetParams, Network};
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

fn measurements(n: usize, inflation: f64) -> Vec<VpMeasurement> {
    let target = GeoPoint::new(45.0, 10.0);
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 137.5) % 360.0;
            let dist = 30.0 + (i as f64 * 71.0) % 3000.0;
            VpMeasurement {
                vp: HostId(i as u32),
                location: target.destination(bearing, Km(dist)),
                rtt: SpeedOfInternet::CBG.min_rtt(Km(dist)) * inflation,
            }
        })
        .collect()
}

fn ablate_soi_factor(c: &mut Criterion) {
    let ms = measurements(500, 1.5);
    let mut g = c.benchmark_group("ablation_soi_factor");
    g.bench_function("cbg_two_thirds_c", |b| {
        b.iter(|| cbg(criterion::black_box(&ms), SpeedOfInternet::CBG));
    });
    g.bench_function("cbg_four_ninths_c", |b| {
        b.iter(|| cbg(criterion::black_box(&ms), SpeedOfInternet::STREET_LEVEL));
    });
    g.finish();
}

fn ablate_coverage_strategy(c: &mut Criterion) {
    let w = World::generate(WorldConfig::small(Seed(421))).expect("small world");
    let vps: Vec<HostId> = w.probes.clone();
    let mut g = c.benchmark_group("ablation_first_step_subset");
    g.bench_function("greedy_coverage_50", |b| {
        b.iter(|| ipgeo::two_step::greedy_coverage(&w, &vps, 50));
    });
    g.bench_function("arbitrary_prefix_50", |b| {
        b.iter(|| vps.iter().copied().take(50).collect::<Vec<_>>());
    });
    g.finish();
}

fn ablate_asymmetry(c: &mut Criterion) {
    let w = World::generate(WorldConfig::small(Seed(422))).expect("small world");
    let symmetric = {
        let p = NetParams {
            asymmetry_rate: 0.0,
            ..NetParams::default()
        };
        Network::with_params(Seed(422), p)
    };
    let asymmetric = Network::new(Seed(422));
    let src = w.probes[0];
    let dst = w.host(w.anchors[0]).ip;
    let mut g = c.benchmark_group("ablation_routing_asymmetry");
    g.bench_function("traceroute_symmetric", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            symmetric.traceroute(&w, src, dst, nonce)
        });
    });
    g.bench_function("traceroute_asymmetric", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            asymmetric.traceroute(&w, src, dst, nonce)
        });
    });
    g.finish();
}

fn ablate_redundancy_filter(c: &mut Criterion) {
    // Intersect with and without the redundant-circle pre-filter: the
    // filter is what makes 10k-VP CBG tractable.
    let ms = measurements(2000, 1.5);
    let circles: Vec<Circle> = ms
        .iter()
        .map(|m| Circle::new(m.location, SpeedOfInternet::CBG.max_distance(m.rtt)))
        .collect();
    let full = Region::from_circles(circles.clone());
    let reduced = Region::from_circles(full.active_circles());
    let mut g = c.benchmark_group("ablation_redundancy_filter");
    g.sample_size(20);
    g.bench_function("intersect_with_filter", |b| {
        b.iter(|| criterion::black_box(&full).intersect());
    });
    g.bench_function("intersect_prefiltered_input", |b| {
        b.iter(|| criterion::black_box(&reduced).intersect());
    });
    g.finish();
}

fn ablate_rounds(c: &mut Criterion) {
    // §7.2.3: more selection rounds trade measurements for API latency.
    let w = World::generate(WorldConfig::small(Seed(423))).expect("small world");
    let net = Network::new(Seed(423));
    let vps: Vec<HostId> = w
        .probes
        .iter()
        .copied()
        .filter(|&p| !w.host(p).is_mis_geolocated())
        .collect();
    let coverage = ipgeo::two_step::greedy_coverage(&w, &vps, 20);
    let target = w.host(w.anchors[0]).ip;
    let mut g = c.benchmark_group("ablation_selection_rounds");
    g.sample_size(20);
    for rounds in [2u32, 3, 4] {
        g.bench_function(format!("rounds_{rounds}"), |b| {
            let mut nonce = 0u64;
            b.iter(|| {
                nonce += 1;
                ipgeo::multi_round::geolocate(&w, &net, &coverage, &vps, target, rounds, nonce)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablate_soi_factor,
    ablate_coverage_strategy,
    ablate_asymmetry,
    ablate_redundancy_filter,
    ablate_rounds
);
criterion_main!(benches);
