//! Bulk-campaign benchmarks: the serial vs parallel measurement engine
//! (`IPGEO_THREADS`) and the cold vs warm base-delay cache.
//!
//! `cargo bench -p bench --bench campaigns` runs the Criterion group;
//! `cargo bench -p bench --bench campaigns -- --snapshot` additionally
//! rewrites `BENCH_campaigns.json` at the repo root with one fixed-shape
//! timing pass (the committed snapshot).

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, Criterion};
use eval::dataset::Dataset;
use eval::EvalScale;
use geo_model::rng::Seed;
use net_sim::Network;
use world_sim::{World, WorldConfig};

/// Builds the tiny-scale dataset with a fixed worker count. The env knob
/// is read per campaign, so setting it around the build is enough.
fn build_dataset(scale: EvalScale, threads: &str) -> Dataset {
    std::env::set_var("IPGEO_THREADS", threads);
    let d = Dataset::load(scale);
    std::env::remove_var("IPGEO_THREADS");
    d
}

/// One probe→anchor min-of-3 ping sweep: every base delay in the sweep is
/// a cache lookup after the first pass.
fn ping_sweep(world: &World, net: &Network) -> f64 {
    let mut acc = 0.0;
    for (pi, &p) in world.probes.iter().enumerate() {
        for (ai, &a) in world.anchors.iter().enumerate() {
            let ip = world.host(a).ip;
            if let net_sim::PingOutcome::Reply(rtt) =
                net.ping_min(world, p, ip, 3, 0xCAFE ^ ((pi as u64) << 20 | ai as u64))
            {
                acc += rtt.value();
            }
        }
    }
    acc
}

fn bench_campaigns(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaigns");
    g.sample_size(10);
    g.bench_function("dataset_build/serial", |b| {
        b.iter(|| build_dataset(EvalScale::tiny(Seed(631)), "1"));
    });
    g.bench_function("dataset_build/parallel", |b| {
        b.iter(|| build_dataset(EvalScale::tiny(Seed(631)), "0"));
    });

    let world = World::generate(WorldConfig::small(Seed(441))).expect("small world");
    let net = Network::new(Seed(441));
    g.bench_function("base_delay/cold", |b| {
        b.iter(|| {
            net.clear_cache();
            ping_sweep(&world, &net)
        });
    });
    ping_sweep(&world, &net); // warm the cache once
    g.bench_function("base_delay/warm", |b| b.iter(|| ping_sweep(&world, &net)));
    g.finish();
}

criterion_group!(campaigns, bench_campaigns);

/// Median of `reps` wall-clock timings of `f`, in seconds.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            criterion::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One fixed-shape measurement pass, written to `BENCH_campaigns.json`.
///
/// Schema (`"schema": "campaigns-v2"`): `dataset_build_*` blocks report a
/// serial wall-clock time and a `parallel_threads`-way time for the *same*
/// build (outputs are bit-identical at any thread count); `speedup` is
/// their ratio and is honest for the committed host — on a 1-core
/// container it sits near 1.0 by design. The optional `stage_budget`
/// block is owned by `benches/stages.rs --snapshot` and preserved here.
fn write_snapshot() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaigns.json");
    // Carry over the stage budget from a previous stages snapshot, if any,
    // so the two snapshot tools can run in either order.
    let stage_budget = std::fs::read_to_string(path)
        .ok()
        .and_then(|old| {
            let start = old.find("  \"stage_budget\":")?;
            let end = old[start..].find("\n  \"note\":")?;
            Some(format!("{}\n", &old[start..start + end]))
        })
        .unwrap_or_default();
    println!("snapshot: timing tiny-scale dataset builds (serial vs parallel)");
    let tiny_serial = time_median(3, || build_dataset(EvalScale::tiny(Seed(631)), "1"));
    let tiny_parallel = time_median(3, || build_dataset(EvalScale::tiny(Seed(631)), "4"));
    println!("snapshot: timing quick-scale dataset builds (one pass each)");
    let quick_serial = time_median(1, || build_dataset(EvalScale::quick(Seed(2023)), "1"));
    let quick_parallel = time_median(1, || build_dataset(EvalScale::quick(Seed(2023)), "4"));

    let world = World::generate(WorldConfig::small(Seed(441))).expect("small world");
    let net = Network::new(Seed(441));
    let cold = time_median(5, || {
        net.clear_cache();
        ping_sweep(&world, &net)
    });
    net.clear_cache();
    ping_sweep(&world, &net);
    let stats_after_first_pass = net.cache_stats();
    let warm = time_median(5, || ping_sweep(&world, &net));
    let stats = net.cache_stats();

    let json = format!(
        r#"{{
  "bench": "campaigns",
  "schema": "campaigns-v2",
  "host": {{ "available_parallelism": {cores} }},
  "parallel_threads": 4,
  "dataset_build_tiny": {{
    "serial_s": {tiny_serial:.3},
    "parallel_4_threads_s": {tiny_parallel:.3},
    "speedup": {:.2}
  }},
  "dataset_build_quick": {{
    "serial_s": {quick_serial:.2},
    "parallel_4_threads_s": {quick_parallel:.2},
    "speedup": {:.2}
  }},
  "base_delay_cache": {{
    "cold_sweep_s": {cold:.4},
    "warm_sweep_s": {warm:.4},
    "speedup": {:.2},
    "entries": {},
    "first_pass_hits": {},
    "first_pass_misses": {},
    "warm_hits": {},
    "warm_misses": {},
    "warm_hit_rate": {:.4}
  }},
{stage_budget}  "note": "timings from the committed container; parallel speedup scales with available_parallelism (1 core here => parity by design, matrices are bit-identical at any IPGEO_THREADS); stage_budget (if present) comes from benches/stages.rs --snapshot"
}}
"#,
        tiny_serial / tiny_parallel,
        quick_serial / quick_parallel,
        cold / warm,
        stats.entries,
        stats_after_first_pass.hits,
        stats_after_first_pass.misses,
        stats.hits - stats_after_first_pass.hits,
        stats.misses - stats_after_first_pass.misses,
        stats.hit_rate(),
    );
    std::fs::write(path, &json).expect("write BENCH_campaigns.json");
    println!("snapshot written to {path}:\n{json}");
}

fn main() {
    if std::env::args().any(|a| a == "--snapshot") {
        write_snapshot();
        return;
    }
    campaigns();
}
