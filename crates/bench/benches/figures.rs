//! Criterion benchmarks of the figure-regeneration experiments at the
//! miniature scale: one benchmark per table/figure family, running the
//! exact experiment code the `fig*` binaries use.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments as ex;
use eval::{Dataset, EvalScale};
use geo_model::rng::Seed;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| {
        let mut scale = EvalScale::tiny(Seed(411));
        scale.trials = 3;
        scale.street_sample = Some(4);
        Dataset::load(scale)
    })
}

fn street_set() -> &'static ex::fig5::StreetSet {
    static SET: OnceLock<ex::fig5::StreetSet> = OnceLock::new();
    SET.get_or_init(|| ex::fig5::StreetSet::compute(dataset()))
}

fn bench_tables(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("tab1_census", |b| b.iter(|| ex::tables::tab1(d)));
    c.bench_function("tab2_categories", |b| b.iter(|| ex::tables::tab2(d)));
}

fn bench_fig2(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("fig2_hypotheses");
    g.sample_size(10);
    g.bench_function("fig2a", |b| b.iter(|| ex::fig2::fig2a(d)));
    g.bench_function("fig2b", |b| b.iter(|| ex::fig2::fig2b(d)));
    g.bench_function("fig2c", |b| b.iter(|| ex::fig2::fig2c(d)));
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let d = dataset();
    d.rep_rtt(); // materialize outside the timed region
    let mut g = c.benchmark_group("fig3_vp_selection");
    g.sample_size(10);
    g.bench_function("fig3a", |b| b.iter(|| ex::fig3::fig3a(d)));
    g.bench_function("fig3bc", |b| b.iter(|| ex::fig3::fig3bc(d)));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("fig4_continents");
    g.sample_size(10);
    g.bench_function("fig4", |b| b.iter(|| ex::fig4::fig4(d)));
    g.finish();
}

fn bench_fig5_street_level(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("fig5_street_level");
    g.sample_size(10);
    g.bench_function("street_pipeline", |b| {
        b.iter(|| ex::fig5::StreetSet::compute(d));
    });
    let set = street_set();
    g.bench_function("fig5a", |b| b.iter(|| ex::fig5::fig5a(d, set)));
    g.bench_function("fig5b", |b| b.iter(|| ex::fig5::fig5b(d, set)));
    g.bench_function("fig5c", |b| b.iter(|| ex::fig5::fig5c(d, set)));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let d = dataset();
    let set = street_set();
    let mut g = c.benchmark_group("fig6_noise_density_time");
    g.bench_function("fig6a", |b| b.iter(|| ex::fig6::fig6a(d, set)));
    g.bench_function("fig6b", |b| b.iter(|| ex::fig6::fig6b(d, set)));
    g.bench_function("fig6c", |b| b.iter(|| ex::fig6::fig6c(d, set)));
    g.finish();
}

fn bench_fig7_databases(c: &mut Criterion) {
    let d = dataset();
    let mut g = c.benchmark_group("fig7_databases");
    g.sample_size(10);
    g.bench_function("fig7", |b| b.iter(|| ex::fig7::fig7(d)));
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("fig8_density", |b| b.iter(|| ex::fig8::fig8(d)));
}

fn bench_sanity(c: &mut Criterion) {
    let d = dataset();
    c.bench_function("sanitize_report", |b| {
        b.iter(|| ex::sanity::sanitize_report(d));
    });
    c.bench_function("deployability", |b| b.iter(|| ex::sanity::deployability(d)));
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_fig5_street_level,
    bench_fig6,
    bench_fig7_databases,
    bench_fig8,
    bench_sanity
);
criterion_main!(benches);
