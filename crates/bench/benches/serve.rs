//! Serving-layer benchmarks: `.igds` snapshot load, single vs batch
//! lookups (the serial/parallel fan-out), line-protocol TCP throughput,
//! and the binary pipelined protocol under the zipfian load generator
//! (closed loop for peak qps, open loop for honest latency percentiles).
//!
//! `cargo bench -p bench --bench serve` runs the Criterion group;
//! `cargo bench -p bench --bench serve -- --snapshot` additionally
//! rewrites `BENCH_serve.json` at the repo root with one fixed-shape
//! timing pass in the `serve-v3` schema (the committed snapshot):
//! the serve-v2 sections plus the robustness measurements — idle-sweep
//! CPU with a fleet of parked connections, throughput with idle
//! bystanders attached, degraded qps/p99 with 25 % of connections
//! running seeded socket-level chaos, and the shed rate when twice the
//! connection cap is offered.

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use bench::loadgen::{self, LoadgenConfig};
use criterion::{criterion_group, Criterion};
use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use geo_serve::chaos::{ChaosOp, ChaosPlan};
use geo_serve::{format, DatasetStore, QueryServer, ServeConfig, ServeLimits};
use ipgeo::publish::{build_dataset, DatasetEntry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use world_sim::{World, WorldConfig};

/// The publish producer at bench scale: small world, modest mesh.
fn published_entries(seed: u64) -> Vec<DatasetEntry> {
    let world = World::generate(WorldConfig::small(Seed(seed))).expect("small world");
    let net = net_sim::Network::new(Seed(seed));
    let vps: Vec<_> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let mesh = ipgeo::two_step::greedy_coverage(&world, &vps, 60.min(vps.len()));
    let prefixes: Vec<_> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();
    build_dataset(&world, &net, &mesh, &prefixes, 1)
}

/// Every address of every published prefix — a full query sweep.
fn all_addresses(store: &DatasetStore) -> Vec<Ipv4> {
    store
        .entries()
        .iter()
        .flat_map(|e| e.prefix.addresses())
        .collect()
}

fn batch_with_threads(store: &DatasetStore, ips: &[Ipv4], threads: &str) -> usize {
    std::env::set_var("IPGEO_THREADS", threads);
    let hits = store.lookup_batch(ips).iter().flatten().count();
    std::env::remove_var("IPGEO_THREADS");
    hits
}

/// One persistent-connection client issuing `queries` LOCATEs and
/// checking every reply is a hit.
fn client_sweep(addr: &str, ips: &[Ipv4], queries: usize) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut hits = 0;
    let mut reply = String::new();
    for q in 0..queries {
        let line = format!("LOCATE {}\n", ips[q % ips.len()]);
        writer.write_all(line.as_bytes()).expect("send");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        if reply.starts_with("OK") {
            hits += 1;
        }
    }
    writer.write_all(b"QUIT\n").expect("quit");
    hits
}

/// `clients` concurrent connections, `per_client` queries each; returns
/// total confirmed hits.
fn concurrent_sweep(addr: &str, ips: &[Ipv4], clients: usize, per_client: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let offset_ips: Vec<Ipv4> = ips.iter().copied().skip(c * 7).collect();
                scope.spawn(move || client_sweep(addr, &offset_ips, per_client))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    })
}

fn bench_serve(c: &mut Criterion) {
    let entries = published_entries(631);
    let bytes = format::encode(&entries, 631, 1);
    let store = DatasetStore::from_bytes(&bytes).expect("decode");
    let ips = all_addresses(&store);

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("store/decode", |b| {
        b.iter(|| DatasetStore::from_bytes(&bytes).expect("decode"));
    });
    g.bench_function("lookup/single_sweep", |b| {
        b.iter(|| ips.iter().filter_map(|&ip| store.lookup(ip)).count());
    });
    g.bench_function("lookup/batch_serial", |b| {
        b.iter(|| batch_with_threads(&store, &ips, "1"));
    });
    g.bench_function("lookup/batch_parallel", |b| {
        b.iter(|| batch_with_threads(&store, &ips, "0"));
    });

    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn");
    let addr = server.addr().to_string();
    g.bench_function("tcp/locate_roundtrips_x100", |b| {
        b.iter(|| client_sweep(&addr, &ips, 100));
    });
    g.bench_function("tcp/concurrent_8x100", |b| {
        b.iter(|| concurrent_sweep(&addr, &ips, 8, 100));
    });
    g.bench_function("binary/closed_loop_pipelined", |b| {
        let cfg = LoadgenConfig {
            connections: 2,
            batch: 64,
            pipeline_depth: 8,
            frames_per_connection: 100,
            ..LoadgenConfig::default()
        };
        b.iter(|| loadgen::run(&addr, &ips, &cfg));
    });
    g.finish();
    server.shutdown();
}

criterion_group!(serve, bench_serve);

/// Whole-process CPU seconds (user + system) from `/proc/self/stat`;
/// `None` off-Linux. USER_HZ is 100 on every mainstream kernel.
fn proc_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // utime/stime are fields 14/15 (1-based); the comm field before them
    // is parenthesised and may contain spaces, so split past the `)`.
    let after = stat.rsplit_once(')')?.1;
    let mut fields = after.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

/// CPU fraction the server burns while `idle_conns` connections sit
/// parked and silent: connect the fleet, let the sweep demote them,
/// then meter `/proc` CPU across a quiet window. Returns `-1.0` where
/// `/proc` is unavailable.
fn measure_idle_cpu(store: &DatasetStore, idle_conns: usize) -> f64 {
    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn idle server");
    let addr = server.addr().to_string();
    let holds: Vec<TcpStream> = (0..idle_conns)
        .map(|_| TcpStream::connect(&addr).expect("idle connect"))
        .collect();
    // Give the sweep time to park the whole fleet before metering.
    std::thread::sleep(Duration::from_millis(200));
    let window = Duration::from_millis(500);
    let frac = match proc_cpu_seconds() {
        Some(cpu0) => {
            let t0 = Instant::now();
            std::thread::sleep(window);
            let wall = t0.elapsed().as_secs_f64();
            proc_cpu_seconds().map_or(-1.0, |cpu1| (cpu1 - cpu0) / wall)
        }
        None => -1.0,
    };
    drop(holds);
    server.shutdown();
    frac
}

/// One background chaos client: replays seeded [`ChaosPlan`]s against
/// `addr` until `stop` flips, drawing a fresh connection id per round so
/// every behavior (split writes, stalls, mid-frame aborts, corruption,
/// slow loris) keeps cycling for the whole degraded window.
fn chaos_noise(addr: &str, lane: u64, stop: &AtomicBool) {
    let mut conn = lane * 10_000;
    while !stop.load(Ordering::Acquire) {
        let plan = ChaosPlan::new(Seed(631), conn);
        conn += 1;
        let Ok(stream) = TcpStream::connect(addr) else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let mut tx = stream;
        for op in plan.ops() {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match op {
                ChaosOp::Send(bytes) => {
                    if tx.write_all(&bytes).is_err() {
                        break;
                    }
                }
                ChaosOp::Pause => std::thread::sleep(Duration::from_millis(1)),
                ChaosOp::Abort => {
                    let _ = tx.shutdown(std::net::Shutdown::Both);
                    break;
                }
                // The real harness holds until the server evicts; the
                // bench bounds the hold so the noise keeps churning.
                ChaosOp::Hold => std::thread::sleep(Duration::from_millis(30)),
            }
        }
    }
}

/// Offers `2 * cap` connections to a server capped at `cap` and returns
/// `(shed, shed_rate)`: the confirmed conns are held open while the
/// second wave queries, so every extra must draw `ERR busy`.
fn measure_shed(store: &DatasetStore, cap: usize) -> (u64, f64) {
    let config = ServeConfig {
        limits: ServeLimits {
            max_connections: cap,
            ..ServeLimits::default()
        },
        ..ServeConfig::default()
    };
    let server =
        QueryServer::spawn_with_config(Arc::new(store.clone()), 0, config).expect("spawn capped");
    let addr = server.addr().to_string();
    let mut held = Vec::with_capacity(cap);
    for _ in 0..cap {
        let stream = TcpStream::connect(&addr).expect("fill connect");
        let mut tx = stream.try_clone().expect("clone");
        tx.write_all(b"STATS\n").expect("confirm");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("confirm reply");
        assert!(line.starts_with("OK"), "fill conn not serving: {line}");
        held.push((stream, tx, reader));
    }
    let offered = 2 * cap;
    let mut shed = 0u64;
    for _ in cap..offered {
        match geo_serve::query_one(&addr, "STATS") {
            Ok(reply) if reply.starts_with("ERR busy") => shed += 1,
            Ok(reply) => panic!("over-cap conn was served: {reply}"),
            Err(_) => shed += 1, // connection refused/reset also counts as shed
        }
    }
    drop(held);
    server.shutdown();
    (shed, shed as f64 / offered as f64)
}

/// Median of `reps` wall-clock timings of `f`, in seconds.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            criterion::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One fixed-shape measurement pass, written to `BENCH_serve.json` in
/// the `serve-v3` schema: the legacy store/lookup/line-TCP sections, the
/// binary pipelined path (closed loop for peak qps, open loop at a
/// fixed arrival rate for honest latency percentiles), and the
/// robustness block — idle-sweep CPU, qps with idle bystanders, the
/// degraded qps/p99 under 25 % chaos connections, and the shed rate at
/// twice the connection cap.
fn write_snapshot() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("snapshot: publishing the bench dataset");
    let entries = published_entries(631);
    let bytes = format::encode(&entries, 631, 1);
    let store = DatasetStore::from_bytes(&bytes).expect("decode");
    let ips = all_addresses(&store);

    let load_s = time_median(9, || DatasetStore::from_bytes(&bytes).expect("decode"));
    let single_s = time_median(9, || ips.iter().filter_map(|&ip| store.lookup(ip)).count());
    println!("snapshot: timing batch lookups (serial vs parallel)");
    let batch_serial_s = time_median(9, || batch_with_threads(&store, &ips, "1"));
    let batch_parallel_s = time_median(9, || batch_with_threads(&store, &ips, "4"));

    println!("snapshot: timing concurrent line-protocol TCP clients");
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 250;
    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn");
    let addr = server.addr().to_string();
    let line_s = time_median(5, || {
        assert_eq!(
            concurrent_sweep(&addr, &ips, CLIENTS, PER_CLIENT),
            CLIENTS * PER_CLIENT
        );
    });
    let line_qps = (CLIENTS * PER_CLIENT) as f64 / line_s;

    println!("snapshot: binary pipelined closed loop (peak qps)");
    let closed_cfg = LoadgenConfig {
        connections: 2,
        batch: 64,
        pipeline_depth: 8,
        frames_per_connection: 2000,
        rate_qps: None,
        zipf_s: 1.0,
        seed: 631,
        idle_connections: 0,
    };
    // Warm the hot-prefix cache and the allocator before the kept run.
    let _ = loadgen::run(&addr, &ips, &closed_cfg);
    let closed = loadgen::run(&addr, &ips, &closed_cfg);
    assert_eq!(closed.hits + closed.misses, closed.queries);

    println!("snapshot: binary pipelined open loop (latency percentiles)");
    let open_cfg = LoadgenConfig {
        connections: 1,
        batch: 64,
        pipeline_depth: 8,
        frames_per_connection: 800,
        // Well under the closed-loop peak, so the percentiles describe
        // an un-congested server rather than a queueing collapse (on
        // the 1-core committed container, client threads and server
        // workers share the core; fewer connections = less scheduler
        // jitter in the tail).
        rate_qps: Some(100_000.0),
        zipf_s: 1.0,
        seed: 631,
        idle_connections: 0,
    };
    let _ = loadgen::run(&addr, &ips, &open_cfg);
    let open = loadgen::run(&addr, &ips, &open_cfg);

    println!("snapshot: closed loop with 64 idle bystander connections");
    const IDLE_CONNS: usize = 64;
    let with_idle = loadgen::run(
        &addr,
        &ips,
        &LoadgenConfig {
            idle_connections: IDLE_CONNS,
            ..closed_cfg.clone()
        },
    );
    let cache = server.cache_stats();
    server.shutdown();

    println!("snapshot: idle-sweep CPU with {IDLE_CONNS} parked connections");
    let idle_cpu_frac = measure_idle_cpu(&store, IDLE_CONNS);

    println!("snapshot: degraded run (25% chaos connections)");
    const CHAOS_LANES: usize = 2; // 2 chaos lanes : 6 clean = 25%
    let chaos_server = QueryServer::spawn_with_config(
        Arc::new(store.clone()),
        0,
        ServeConfig {
            // Tight deadlines so stalled/lorised chaos connections are
            // evicted within the measured window instead of pooling.
            limits: ServeLimits {
                idle_timeout_ms: 500,
                read_timeout_ms: 200,
                write_timeout_ms: 200,
                ..ServeLimits::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("spawn chaos server");
    let chaos_addr = chaos_server.addr().to_string();
    let stop = AtomicBool::new(false);
    let degraded = std::thread::scope(|scope| {
        for lane in 0..CHAOS_LANES as u64 {
            let (addr, stop) = (&chaos_addr, &stop);
            scope.spawn(move || chaos_noise(addr, lane, stop));
        }
        let report = loadgen::run(
            &chaos_addr,
            &ips,
            &LoadgenConfig {
                connections: 6,
                frames_per_connection: 1000,
                ..closed_cfg.clone()
            },
        );
        stop.store(true, Ordering::Release);
        report
    });
    let degraded_stats = chaos_server.stats();
    chaos_server.shutdown();

    println!("snapshot: shed rate at twice the connection cap");
    const SHED_CAP: usize = 8;
    let (shed, shed_rate) = measure_shed(&store, SHED_CAP);

    // v1 recorded 57,643 line-protocol qps on this host class; the
    // tentpole acceptance bar is 10x that on the binary pipelined path.
    const V1_LINE_QPS: f64 = 57_643.0;

    let json = format!(
        r#"{{
  "bench": "serve",
  "schema": "serve-v3",
  "host": {{ "available_parallelism": {cores} }},
  "dataset": {{ "entries": {}, "igds_bytes": {}, "query_sweep_ips": {} }},
  "store_load": {{ "decode_s": {load_s:.6} }},
  "lookup": {{
    "single_sweep_s": {single_s:.6},
    "batch_serial_s": {batch_serial_s:.6},
    "batch_parallel_4_threads_s": {batch_parallel_s:.6},
    "speedup": {:.2}
  }},
  "line_tcp": {{
    "clients": {CLIENTS},
    "queries_per_client": {PER_CLIENT},
    "sweep_s": {line_s:.4},
    "qps": {line_qps:.0}
  }},
  "binary": {{
    "closed_loop": {{
      "connections": {},
      "batch": {},
      "pipeline_depth": {},
      "queries": {},
      "elapsed_s": {:.4},
      "qps": {:.0},
      "p50_us": {:.1},
      "p99_us": {:.1},
      "p999_us": {:.1}
    }},
    "open_loop": {{
      "target_qps": {:.0},
      "achieved_qps": {:.0},
      "zipf_s": {:.2},
      "p50_us": {:.1},
      "p99_us": {:.1},
      "p999_us": {:.1}
    }},
    "speedup_vs_line_v1": {:.1}
  }},
  "idle_sweep": {{
    "idle_connections": {IDLE_CONNS},
    "cpu_frac_parked": {idle_cpu_frac:.4},
    "qps_with_idle": {:.0},
    "qps_idle_ratio": {:.3}
  }},
  "degradation": {{
    "chaos": {{
      "chaos_lanes": {CHAOS_LANES},
      "clean_connections": {},
      "qps": {:.0},
      "p99_us": {:.1},
      "evicted": {},
      "proto_errors": {}
    }},
    "shed": {{
      "cap": {SHED_CAP},
      "offered": {},
      "shed": {shed},
      "shed_rate": {shed_rate:.2}
    }}
  }},
  "cache": {{
    "hits": {},
    "misses": {},
    "evictions": {},
    "hit_rate": {:.4}
  }},
  "note": "timings from the committed container; latency percentiles are per pipelined frame (batch addresses each), open loop clocks from scheduled departures (coordinated-omission aware); batch speedup scales with available_parallelism (1 core => serial fallback by design, results bit-identical at any IPGEO_THREADS); idle_sweep meters /proc CPU while a parked fleet sits silent; degradation runs the closed loop with seeded chaos lanes replaying ChaosPlan schedules and reports the shed rate when 2x the cap is offered"
}}
"#,
        store.len(),
        bytes.len(),
        ips.len(),
        batch_serial_s / batch_parallel_s,
        closed.connections,
        closed.batch,
        closed.pipeline_depth,
        closed.queries,
        closed.elapsed_s,
        closed.qps,
        closed.p50_us,
        closed.p99_us,
        closed.p999_us,
        open.target_qps.unwrap_or(0.0),
        open.qps,
        open_cfg.zipf_s,
        open.p50_us,
        open.p99_us,
        open.p999_us,
        closed.qps / V1_LINE_QPS,
        with_idle.qps,
        with_idle.qps / closed.qps,
        degraded.connections,
        degraded.qps,
        degraded.p99_us,
        degraded_stats.evicted_total(),
        degraded_stats.proto_errors,
        2 * SHED_CAP,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.hit_rate(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("snapshot written to {path}:\n{json}");
}

fn main() {
    if std::env::args().any(|a| a == "--snapshot") {
        write_snapshot();
        return;
    }
    serve();
}
