//! Serving-layer benchmarks: `.igds` snapshot load, single vs batch
//! lookups (the serial/parallel fan-out), line-protocol TCP throughput,
//! and the binary pipelined protocol under the zipfian load generator
//! (closed loop for peak qps, open loop for honest latency percentiles).
//!
//! `cargo bench -p bench --bench serve` runs the Criterion group;
//! `cargo bench -p bench --bench serve -- --snapshot` additionally
//! rewrites `BENCH_serve.json` at the repo root with one fixed-shape
//! timing pass in the `serve-v2` schema (the committed snapshot).

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use bench::loadgen::{self, LoadgenConfig};
use criterion::{criterion_group, Criterion};
use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use geo_serve::{format, DatasetStore, QueryServer};
use ipgeo::publish::{build_dataset, DatasetEntry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use world_sim::{World, WorldConfig};

/// The publish producer at bench scale: small world, modest mesh.
fn published_entries(seed: u64) -> Vec<DatasetEntry> {
    let world = World::generate(WorldConfig::small(Seed(seed))).expect("small world");
    let net = net_sim::Network::new(Seed(seed));
    let vps: Vec<_> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let mesh = ipgeo::two_step::greedy_coverage(&world, &vps, 60.min(vps.len()));
    let prefixes: Vec<_> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();
    build_dataset(&world, &net, &mesh, &prefixes, 1)
}

/// Every address of every published prefix — a full query sweep.
fn all_addresses(store: &DatasetStore) -> Vec<Ipv4> {
    store
        .entries()
        .iter()
        .flat_map(|e| e.prefix.addresses())
        .collect()
}

fn batch_with_threads(store: &DatasetStore, ips: &[Ipv4], threads: &str) -> usize {
    std::env::set_var("IPGEO_THREADS", threads);
    let hits = store.lookup_batch(ips).iter().flatten().count();
    std::env::remove_var("IPGEO_THREADS");
    hits
}

/// One persistent-connection client issuing `queries` LOCATEs and
/// checking every reply is a hit.
fn client_sweep(addr: &str, ips: &[Ipv4], queries: usize) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut hits = 0;
    let mut reply = String::new();
    for q in 0..queries {
        let line = format!("LOCATE {}\n", ips[q % ips.len()]);
        writer.write_all(line.as_bytes()).expect("send");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        if reply.starts_with("OK") {
            hits += 1;
        }
    }
    writer.write_all(b"QUIT\n").expect("quit");
    hits
}

/// `clients` concurrent connections, `per_client` queries each; returns
/// total confirmed hits.
fn concurrent_sweep(addr: &str, ips: &[Ipv4], clients: usize, per_client: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let offset_ips: Vec<Ipv4> = ips.iter().copied().skip(c * 7).collect();
                scope.spawn(move || client_sweep(addr, &offset_ips, per_client))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    })
}

fn bench_serve(c: &mut Criterion) {
    let entries = published_entries(631);
    let bytes = format::encode(&entries, 631, 1);
    let store = DatasetStore::from_bytes(&bytes).expect("decode");
    let ips = all_addresses(&store);

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("store/decode", |b| {
        b.iter(|| DatasetStore::from_bytes(&bytes).expect("decode"));
    });
    g.bench_function("lookup/single_sweep", |b| {
        b.iter(|| ips.iter().filter_map(|&ip| store.lookup(ip)).count());
    });
    g.bench_function("lookup/batch_serial", |b| {
        b.iter(|| batch_with_threads(&store, &ips, "1"));
    });
    g.bench_function("lookup/batch_parallel", |b| {
        b.iter(|| batch_with_threads(&store, &ips, "0"));
    });

    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn");
    let addr = server.addr().to_string();
    g.bench_function("tcp/locate_roundtrips_x100", |b| {
        b.iter(|| client_sweep(&addr, &ips, 100));
    });
    g.bench_function("tcp/concurrent_8x100", |b| {
        b.iter(|| concurrent_sweep(&addr, &ips, 8, 100));
    });
    g.bench_function("binary/closed_loop_pipelined", |b| {
        let cfg = LoadgenConfig {
            connections: 2,
            batch: 64,
            pipeline_depth: 8,
            frames_per_connection: 100,
            ..LoadgenConfig::default()
        };
        b.iter(|| loadgen::run(&addr, &ips, &cfg));
    });
    g.finish();
    server.shutdown();
}

criterion_group!(serve, bench_serve);

/// Median of `reps` wall-clock timings of `f`, in seconds.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            criterion::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One fixed-shape measurement pass, written to `BENCH_serve.json` in
/// the `serve-v2` schema: the legacy store/lookup/line-TCP sections plus
/// the binary pipelined path (closed loop for peak qps, open loop at a
/// fixed arrival rate for honest latency percentiles).
fn write_snapshot() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("snapshot: publishing the bench dataset");
    let entries = published_entries(631);
    let bytes = format::encode(&entries, 631, 1);
    let store = DatasetStore::from_bytes(&bytes).expect("decode");
    let ips = all_addresses(&store);

    let load_s = time_median(9, || DatasetStore::from_bytes(&bytes).expect("decode"));
    let single_s = time_median(9, || ips.iter().filter_map(|&ip| store.lookup(ip)).count());
    println!("snapshot: timing batch lookups (serial vs parallel)");
    let batch_serial_s = time_median(9, || batch_with_threads(&store, &ips, "1"));
    let batch_parallel_s = time_median(9, || batch_with_threads(&store, &ips, "4"));

    println!("snapshot: timing concurrent line-protocol TCP clients");
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 250;
    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn");
    let addr = server.addr().to_string();
    let line_s = time_median(5, || {
        assert_eq!(
            concurrent_sweep(&addr, &ips, CLIENTS, PER_CLIENT),
            CLIENTS * PER_CLIENT
        );
    });
    let line_qps = (CLIENTS * PER_CLIENT) as f64 / line_s;

    println!("snapshot: binary pipelined closed loop (peak qps)");
    let closed_cfg = LoadgenConfig {
        connections: 2,
        batch: 64,
        pipeline_depth: 8,
        frames_per_connection: 2000,
        rate_qps: None,
        zipf_s: 1.0,
        seed: 631,
    };
    // Warm the hot-prefix cache and the allocator before the kept run.
    let _ = loadgen::run(&addr, &ips, &closed_cfg);
    let closed = loadgen::run(&addr, &ips, &closed_cfg);
    assert_eq!(closed.hits + closed.misses, closed.queries);

    println!("snapshot: binary pipelined open loop (latency percentiles)");
    let open_cfg = LoadgenConfig {
        connections: 1,
        batch: 64,
        pipeline_depth: 8,
        frames_per_connection: 800,
        // Well under the closed-loop peak, so the percentiles describe
        // an un-congested server rather than a queueing collapse (on
        // the 1-core committed container, client threads and server
        // workers share the core; fewer connections = less scheduler
        // jitter in the tail).
        rate_qps: Some(100_000.0),
        zipf_s: 1.0,
        seed: 631,
    };
    let _ = loadgen::run(&addr, &ips, &open_cfg);
    let open = loadgen::run(&addr, &ips, &open_cfg);
    let cache = server.cache_stats();
    server.shutdown();

    // v1 recorded 57,643 line-protocol qps on this host class; the
    // tentpole acceptance bar is 10x that on the binary pipelined path.
    const V1_LINE_QPS: f64 = 57_643.0;

    let json = format!(
        r#"{{
  "bench": "serve",
  "schema": "serve-v2",
  "host": {{ "available_parallelism": {cores} }},
  "dataset": {{ "entries": {}, "igds_bytes": {}, "query_sweep_ips": {} }},
  "store_load": {{ "decode_s": {load_s:.6} }},
  "lookup": {{
    "single_sweep_s": {single_s:.6},
    "batch_serial_s": {batch_serial_s:.6},
    "batch_parallel_4_threads_s": {batch_parallel_s:.6},
    "speedup": {:.2}
  }},
  "line_tcp": {{
    "clients": {CLIENTS},
    "queries_per_client": {PER_CLIENT},
    "sweep_s": {line_s:.4},
    "qps": {line_qps:.0}
  }},
  "binary": {{
    "closed_loop": {{
      "connections": {},
      "batch": {},
      "pipeline_depth": {},
      "queries": {},
      "elapsed_s": {:.4},
      "qps": {:.0},
      "p50_us": {:.1},
      "p99_us": {:.1},
      "p999_us": {:.1}
    }},
    "open_loop": {{
      "target_qps": {:.0},
      "achieved_qps": {:.0},
      "zipf_s": {:.2},
      "p50_us": {:.1},
      "p99_us": {:.1},
      "p999_us": {:.1}
    }},
    "speedup_vs_line_v1": {:.1}
  }},
  "cache": {{
    "hits": {},
    "misses": {},
    "evictions": {},
    "hit_rate": {:.4}
  }},
  "note": "timings from the committed container; latency percentiles are per pipelined frame (batch addresses each), open loop clocks from scheduled departures (coordinated-omission aware); batch speedup scales with available_parallelism (1 core => serial fallback by design, results bit-identical at any IPGEO_THREADS)"
}}
"#,
        store.len(),
        bytes.len(),
        ips.len(),
        batch_serial_s / batch_parallel_s,
        closed.connections,
        closed.batch,
        closed.pipeline_depth,
        closed.queries,
        closed.elapsed_s,
        closed.qps,
        closed.p50_us,
        closed.p99_us,
        closed.p999_us,
        open.target_qps.unwrap_or(0.0),
        open.qps,
        open_cfg.zipf_s,
        open.p50_us,
        open.p99_us,
        open.p999_us,
        closed.qps / V1_LINE_QPS,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.hit_rate(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("snapshot written to {path}:\n{json}");
}

fn main() {
    if std::env::args().any(|a| a == "--snapshot") {
        write_snapshot();
        return;
    }
    serve();
}
