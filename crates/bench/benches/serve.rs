//! Serving-layer benchmarks: `.igds` snapshot load, single vs batch
//! lookups (the serial/parallel fan-out), and concurrent-client TCP
//! throughput against a live `QueryServer`.
//!
//! `cargo bench -p bench --bench serve` runs the Criterion group;
//! `cargo bench -p bench --bench serve -- --snapshot` additionally
//! rewrites `BENCH_serve.json` at the repo root with one fixed-shape
//! timing pass (the committed snapshot).

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, Criterion};
use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use geo_serve::{format, DatasetStore, QueryServer};
use ipgeo::publish::{build_dataset, DatasetEntry};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use world_sim::{World, WorldConfig};

/// The publish producer at bench scale: small world, modest mesh.
fn published_entries(seed: u64) -> Vec<DatasetEntry> {
    let world = World::generate(WorldConfig::small(Seed(seed))).expect("small world");
    let net = net_sim::Network::new(Seed(seed));
    let vps: Vec<_> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let mesh = ipgeo::two_step::greedy_coverage(&world, &vps, 60.min(vps.len()));
    let prefixes: Vec<_> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();
    build_dataset(&world, &net, &mesh, &prefixes, 1)
}

/// Every address of every published prefix — a full query sweep.
fn all_addresses(store: &DatasetStore) -> Vec<Ipv4> {
    store
        .entries()
        .iter()
        .flat_map(|e| e.prefix.addresses())
        .collect()
}

fn batch_with_threads(store: &DatasetStore, ips: &[Ipv4], threads: &str) -> usize {
    std::env::set_var("IPGEO_THREADS", threads);
    let hits = store.lookup_batch(ips).iter().flatten().count();
    std::env::remove_var("IPGEO_THREADS");
    hits
}

/// One persistent-connection client issuing `queries` LOCATEs and
/// checking every reply is a hit.
fn client_sweep(addr: &str, ips: &[Ipv4], queries: usize) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut hits = 0;
    let mut reply = String::new();
    for q in 0..queries {
        let line = format!("LOCATE {}\n", ips[q % ips.len()]);
        writer.write_all(line.as_bytes()).expect("send");
        reply.clear();
        reader.read_line(&mut reply).expect("reply");
        if reply.starts_with("OK") {
            hits += 1;
        }
    }
    writer.write_all(b"QUIT\n").expect("quit");
    hits
}

/// `clients` concurrent connections, `per_client` queries each; returns
/// total confirmed hits.
fn concurrent_sweep(addr: &str, ips: &[Ipv4], clients: usize, per_client: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let offset_ips: Vec<Ipv4> = ips.iter().copied().skip(c * 7).collect();
                scope.spawn(move || client_sweep(addr, &offset_ips, per_client))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    })
}

fn bench_serve(c: &mut Criterion) {
    let entries = published_entries(631);
    let bytes = format::encode(&entries, 631, 1);
    let store = DatasetStore::from_bytes(&bytes).expect("decode");
    let ips = all_addresses(&store);

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    g.bench_function("store/decode", |b| {
        b.iter(|| DatasetStore::from_bytes(&bytes).expect("decode"));
    });
    g.bench_function("lookup/single_sweep", |b| {
        b.iter(|| ips.iter().filter_map(|&ip| store.lookup(ip)).count());
    });
    g.bench_function("lookup/batch_serial", |b| {
        b.iter(|| batch_with_threads(&store, &ips, "1"));
    });
    g.bench_function("lookup/batch_parallel", |b| {
        b.iter(|| batch_with_threads(&store, &ips, "0"));
    });

    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn");
    let addr = server.addr().to_string();
    g.bench_function("tcp/locate_roundtrips_x100", |b| {
        b.iter(|| client_sweep(&addr, &ips, 100));
    });
    g.bench_function("tcp/concurrent_8x100", |b| {
        b.iter(|| concurrent_sweep(&addr, &ips, 8, 100));
    });
    g.finish();
    server.shutdown();
}

criterion_group!(serve, bench_serve);

/// Median of `reps` wall-clock timings of `f`, in seconds.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            criterion::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One fixed-shape measurement pass, written to `BENCH_serve.json`.
fn write_snapshot() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("snapshot: publishing the bench dataset");
    let entries = published_entries(631);
    let bytes = format::encode(&entries, 631, 1);
    let store = DatasetStore::from_bytes(&bytes).expect("decode");
    let ips = all_addresses(&store);

    let load_s = time_median(9, || DatasetStore::from_bytes(&bytes).expect("decode"));
    let single_s = time_median(9, || ips.iter().filter_map(|&ip| store.lookup(ip)).count());
    println!("snapshot: timing batch lookups (serial vs parallel)");
    let batch_serial_s = time_median(9, || batch_with_threads(&store, &ips, "1"));
    let batch_parallel_s = time_median(9, || batch_with_threads(&store, &ips, "4"));

    println!("snapshot: timing concurrent TCP clients");
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 250;
    let server = QueryServer::spawn(Arc::new(store.clone()), 0).expect("spawn");
    let addr = server.addr().to_string();
    let tcp_s = time_median(5, || {
        assert_eq!(
            concurrent_sweep(&addr, &ips, CLIENTS, PER_CLIENT),
            CLIENTS * PER_CLIENT
        );
    });
    server.shutdown();
    let qps = (CLIENTS * PER_CLIENT) as f64 / tcp_s;

    let json = format!(
        r#"{{
  "bench": "serve",
  "host": {{ "available_parallelism": {cores} }},
  "dataset": {{ "entries": {}, "igds_bytes": {}, "query_sweep_ips": {} }},
  "store_load": {{ "decode_s": {load_s:.6} }},
  "lookup": {{
    "single_sweep_s": {single_s:.6},
    "batch_serial_s": {batch_serial_s:.6},
    "batch_parallel_4_threads_s": {batch_parallel_s:.6},
    "speedup": {:.2}
  }},
  "tcp": {{
    "clients": {CLIENTS},
    "queries_per_client": {PER_CLIENT},
    "sweep_s": {tcp_s:.4},
    "qps": {qps:.0}
  }},
  "note": "timings from the committed container; batch speedup scales with available_parallelism (1 core => parity by design, results are bit-identical at any IPGEO_THREADS)"
}}
"#,
        store.len(),
        bytes.len(),
        ips.len(),
        batch_serial_s / batch_parallel_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("snapshot written to {path}:\n{json}");
}

fn main() {
    if std::env::args().any(|a| a == "--snapshot") {
        write_snapshot();
        return;
    }
    serve();
}
