//! Criterion benchmarks of the pipeline stages: the computational cost of
//! each building block the paper's experiments lean on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use geo_model::constraint::{Circle, Region};
use geo_model::point::GeoPoint;
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::{Km, Ms};
use ipgeo::cbg::{cbg, VpMeasurement};
use ipgeo::two_step::greedy_coverage;
use net_sim::Network;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

fn world() -> (World, Network) {
    let w = World::generate(WorldConfig::small(Seed(401))).expect("small world");
    let net = Network::new(Seed(401));
    (w, net)
}

fn synthetic_measurements(n: usize) -> Vec<VpMeasurement> {
    let target = GeoPoint::new(48.0, 8.0);
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 137.5) % 360.0;
            let dist = 50.0 + (i as f64 * 97.0) % 4000.0;
            let loc = target.destination(bearing, Km(dist));
            VpMeasurement {
                vp: HostId(i as u32),
                location: loc,
                rtt: SpeedOfInternet::CBG.min_rtt(Km(dist)) * 1.4,
            }
        })
        .collect()
}

fn bench_cbg(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbg_intersection");
    for n in [10usize, 100, 1000, 10_000] {
        let ms = synthetic_measurements(n);
        g.bench_function(format!("{n}_vps"), |b| {
            b.iter(|| cbg(criterion::black_box(&ms), SpeedOfInternet::CBG));
        });
    }
    g.finish();
}

fn bench_region_redundancy(c: &mut Criterion) {
    let ms = synthetic_measurements(5000);
    let circles: Vec<Circle> = ms
        .iter()
        .map(|m| Circle::new(m.location, SpeedOfInternet::CBG.max_distance(m.rtt)))
        .collect();
    let region = Region::from_circles(circles);
    c.bench_function("active_circles_5000", |b| {
        b.iter(|| criterion::black_box(&region).active_circles());
    });
}

fn bench_ping(c: &mut Criterion) {
    let (w, net) = world();
    let src = w.probes[0];
    let dst = w.host(w.anchors[0]).ip;
    c.bench_function("ping_min_3", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            net.ping_min(&w, src, dst, 3, nonce)
        });
    });
}

fn bench_traceroute(c: &mut Criterion) {
    let (w, net) = world();
    let src = w.probes[1];
    let dst = w.host(w.anchors[1]).ip;
    c.bench_function("traceroute", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            net.traceroute(&w, src, dst, nonce)
        });
    });
}

fn bench_greedy_coverage(c: &mut Criterion) {
    let (w, _) = world();
    let vps: Vec<HostId> = w.probes.clone();
    let mut g = c.benchmark_group("greedy_coverage");
    for k in [10usize, 50, 150] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| greedy_coverage(&w, criterion::black_box(&vps), k));
        });
    }
    g.finish();
}

fn bench_sanitize(c: &mut Criterion) {
    let (w, net) = world();
    let mesh: Vec<Vec<Option<Ms>>> = w
        .anchors
        .iter()
        .enumerate()
        .map(|(i, &src)| {
            w.anchors
                .iter()
                .enumerate()
                .map(|(j, &dst)| {
                    if i == j {
                        None
                    } else {
                        net.ping_min(&w, src, w.host(dst).ip, 3, 9).rtt()
                    }
                })
                .collect()
        })
        .collect();
    c.bench_function("sanitize_anchors", |b| {
        b.iter_batched(
            || mesh.clone(),
            |m| ipgeo::sanitize_anchors(&w, &w.anchors, &m, SpeedOfInternet::CBG),
            BatchSize::SmallInput,
        );
    });
}

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("world_generate_small", |b| {
        b.iter(|| World::generate(WorldConfig::small(Seed(402))).expect("valid"));
    });
}

criterion_group!(
    benches,
    bench_cbg,
    bench_region_redundancy,
    bench_ping,
    bench_traceroute,
    bench_greedy_coverage,
    bench_sanitize,
    bench_world_generation
);
criterion_main!(benches);
