//! Criterion benchmarks of the pipeline stages, plus the per-stage time
//! budget snapshot.
//!
//! `cargo bench -p bench --bench stages` runs the Criterion group;
//! `cargo bench -p bench --bench stages -- --snapshot` times the four
//! hot-path stages (route synthesis, delay model, constraint solve,
//! publish encode) on the small CI preset and merges a `stage_budget`
//! object into `BENCH_campaigns.json` (run the campaigns snapshot first —
//! it owns the rest of the file). The CI `bench-smoke` job runs this on
//! every push and validates the emitted schema.

// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use criterion::{criterion_group, BatchSize, Criterion};
use geo_hints::{build_dataset_fused, FusedConfig};
use geo_model::constraint::{Circle, Region, RegionScratch};
use geo_model::ip::Prefix24;
use geo_model::matrix::DelayMatrix;
use geo_model::point::GeoPoint;
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Km;
use ipgeo::cbg::{cbg, cbg_with, VpMeasurement};
use ipgeo::two_step::greedy_coverage;
use ipgeo::Resilience;
use net_sim::{Network, RowScratch};
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

fn world() -> (World, Network) {
    let w = World::generate(WorldConfig::small(Seed(401))).expect("small world");
    let net = Network::new(Seed(401));
    (w, net)
}

fn synthetic_measurements(n: usize) -> Vec<VpMeasurement> {
    let target = GeoPoint::new(48.0, 8.0);
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 137.5) % 360.0;
            let dist = 50.0 + (i as f64 * 97.0) % 4000.0;
            let loc = target.destination(bearing, Km(dist));
            VpMeasurement {
                vp: HostId(i as u32),
                location: loc,
                rtt: SpeedOfInternet::CBG.min_rtt(Km(dist)) * 1.4,
            }
        })
        .collect()
}

fn bench_cbg(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbg_intersection");
    for n in [10usize, 100, 1000, 10_000] {
        let ms = synthetic_measurements(n);
        g.bench_function(format!("{n}_vps"), |b| {
            b.iter(|| cbg(criterion::black_box(&ms), SpeedOfInternet::CBG));
        });
        let mut scratch = RegionScratch::new();
        g.bench_function(format!("{n}_vps_scratch"), |b| {
            b.iter(|| {
                cbg_with(
                    criterion::black_box(&ms),
                    SpeedOfInternet::CBG,
                    &mut scratch,
                )
            });
        });
    }
    g.finish();
}

fn bench_region_redundancy(c: &mut Criterion) {
    let ms = synthetic_measurements(5000);
    let circles: Vec<Circle> = ms
        .iter()
        .map(|m| Circle::new(m.location, SpeedOfInternet::CBG.max_distance(m.rtt)))
        .collect();
    let region = Region::from_circles(circles);
    c.bench_function("active_circles_5000", |b| {
        b.iter(|| criterion::black_box(&region).active_circles());
    });
}

fn bench_ping(c: &mut Criterion) {
    let (w, net) = world();
    let src = w.probes[0];
    let dst = w.host(w.anchors[0]).ip;
    c.bench_function("ping_min_3", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            net.ping_min(&w, src, dst, 3, nonce)
        });
    });
}

fn bench_campaign_row(c: &mut Criterion) {
    let (w, net) = world();
    let lane = net.target_lane(&w, &w.anchors);
    let mut scratch = RowScratch::new();
    let src = w.probes[0];
    c.bench_function("campaign_row", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            let mut acc = 0.0f64;
            net.campaign_row(
                &w,
                &lane,
                &mut scratch,
                src,
                3,
                |c| nonce ^ c as u64,
                None,
                |_, o| {
                    if let Some(rtt) = o.rtt() {
                        acc += rtt.value();
                    }
                },
            );
            acc
        });
    });
}

fn bench_traceroute(c: &mut Criterion) {
    let (w, net) = world();
    let src = w.probes[1];
    let dst = w.host(w.anchors[1]).ip;
    c.bench_function("traceroute", |b| {
        let mut nonce = 0u64;
        b.iter(|| {
            nonce += 1;
            net.traceroute(&w, src, dst, nonce)
        });
    });
}

fn bench_greedy_coverage(c: &mut Criterion) {
    let (w, _) = world();
    let vps: Vec<HostId> = w.probes.clone();
    let mut g = c.benchmark_group("greedy_coverage");
    for k in [10usize, 50, 150] {
        g.bench_function(format!("k{k}"), |b| {
            b.iter(|| greedy_coverage(&w, criterion::black_box(&vps), k));
        });
    }
    g.finish();
}

/// The anchor mesh as the campaign engine builds it (see
/// `eval::dataset`): one row per source anchor, NaN diagonal.
fn anchor_mesh(w: &World, net: &Network) -> DelayMatrix {
    let lane = net.target_lane(w, &w.anchors);
    let mut scratch = RowScratch::new();
    let n = w.anchors.len();
    let mut mesh = DelayMatrix::new(n, n);
    for i in 0..n {
        net.campaign_row(
            w,
            &lane,
            &mut scratch,
            w.anchors[i],
            3,
            |j| 9 ^ ((i as u64) << 24 | j as u64),
            Some(i),
            |j, o| mesh.set(i, j, o.rtt()),
        );
    }
    mesh
}

fn bench_sanitize(c: &mut Criterion) {
    let (w, net) = world();
    let mesh = anchor_mesh(&w, &net);
    c.bench_function("sanitize_anchors", |b| {
        b.iter_batched(
            || mesh.clone(),
            |m| ipgeo::sanitize_anchors(&w, &w.anchors, &m, SpeedOfInternet::CBG),
            BatchSize::SmallInput,
        );
    });
}

fn bench_fused_publish(c: &mut Criterion) {
    let (w, net) = world();
    let vps: Vec<HostId> = w
        .probes
        .iter()
        .copied()
        .filter(|&p| !w.host(p).is_mis_geolocated())
        .collect();
    let prefixes: Vec<Prefix24> = w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
    let cfg = FusedConfig::new(1.0, 0.8);
    c.bench_function("publish_fused_anchor_prefixes", |b| {
        b.iter(|| {
            let res = Resilience::none();
            build_dataset_fused(&w, &net, &res, &vps, &prefixes, 7, &cfg)
                .0
                .len()
        });
    });
}

fn bench_world_generation(c: &mut Criterion) {
    c.bench_function("world_generate_small", |b| {
        b.iter(|| World::generate(WorldConfig::small(Seed(402))).expect("valid"));
    });
}

criterion_group!(
    benches,
    bench_cbg,
    bench_region_redundancy,
    bench_ping,
    bench_campaign_row,
    bench_traceroute,
    bench_greedy_coverage,
    bench_sanitize,
    bench_fused_publish,
    bench_world_generation
);

/// Median of `reps` wall-clock timings of `f`, in seconds.
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = std::time::Instant::now();
            criterion::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Times the four hot-path stages on `WorldConfig::small` and returns the
/// `stage_budget` JSON object (without trailing comma).
fn stage_budget_json() -> String {
    let (w, net) = world();
    let rows = w.probes.len();
    let cols = w.anchors.len();
    let lane = net.target_lane(
        &w,
        &w.probes
            .iter()
            .chain(&w.anchors)
            .copied()
            .collect::<Vec<_>>(),
    );
    // Stage 1: route synthesis — base RTTs only (count = 0), every probe
    // row against every host column through the campaign engine.
    let route_synth = time_median(3, || {
        let mut scratch = RowScratch::new();
        let mut acc = 0.0f64;
        for &p in &w.probes {
            net.campaign_row(
                &w,
                &lane,
                &mut scratch,
                p,
                0,
                |_| 0,
                None,
                |_, o| {
                    if let Some(rtt) = o.rtt() {
                        acc += rtt.value();
                    }
                },
            );
        }
        acc
    });
    // Stage 2: delay model — the same rows with 3-packet noise sampling;
    // the delta over stage 1 is the noise model's share.
    let delay_model = time_median(3, || {
        let mut scratch = RowScratch::new();
        let mut acc = 0.0f64;
        for (pi, &p) in w.probes.iter().enumerate() {
            net.campaign_row(
                &w,
                &lane,
                &mut scratch,
                p,
                3,
                |c| 0xB07 ^ ((pi as u64) << 20 | c as u64),
                None,
                |_, o| {
                    if let Some(rtt) = o.rtt() {
                        acc += rtt.value();
                    }
                },
            );
        }
        acc
    });
    // Stage 3: constraint solve — CBG over 1000 synthetic VPs, one shared
    // scratch across 50 targets (the campaign access pattern).
    let ms = synthetic_measurements(1000);
    let solve_targets = 50usize;
    let constraint_solve = time_median(3, || {
        let mut scratch = RegionScratch::new();
        let mut hits = 0usize;
        for t in 0..solve_targets {
            let mut shifted = ms.clone();
            for m in &mut shifted {
                m.rtt = m.rtt * (1.0 + t as f64 * 1e-3);
            }
            if cbg_with(&shifted, SpeedOfInternet::CBG, &mut scratch).is_some() {
                hits += 1;
            }
        }
        hits
    });
    // Stage 4: publish encode — CSV and .igds serialization of a built
    // dataset (the build itself is the campaigns snapshot's job).
    let vps: Vec<HostId> = w
        .probes
        .iter()
        .copied()
        .filter(|&p| !w.host(p).is_mis_geolocated())
        .collect();
    let mut prefixes: Vec<Prefix24> = w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
    prefixes.extend(w.probes.iter().take(60).map(|&p| w.host(p).ip.prefix24()));
    prefixes.sort();
    prefixes.dedup();
    let entries = ipgeo::publish::build_dataset(&w, &net, &vps, &prefixes, 7);
    let publish_encode = time_median(3, || {
        let csv = ipgeo::publish::to_csv(&entries);
        let igds = geo_serve::format::encode(&entries, 401, 7);
        csv.len() + igds.len()
    });

    format!(
        r#""stage_budget": {{
    "preset": "world_small_seed_401",
    "route_synth_s": {route_synth:.4},
    "route_synth_rows": {rows},
    "route_synth_cols": {},
    "delay_model_s": {delay_model:.4},
    "constraint_solve_s": {constraint_solve:.4},
    "constraint_solve_targets": {solve_targets},
    "publish_encode_s": {publish_encode:.4},
    "publish_prefixes": {}
  }}"#,
        rows + cols,
        prefixes.len(),
    )
}

/// Times the fused publish path against the pure-latency baseline on the
/// same preset: the delta is the full cost of the hints tier (rDNS
/// mining, extraction, region verification, verification probes, fusion).
fn fusion_cost_json() -> String {
    let (w, net) = world();
    let vps: Vec<HostId> = w
        .probes
        .iter()
        .copied()
        .filter(|&p| !w.host(p).is_mis_geolocated())
        .collect();
    let mut prefixes: Vec<Prefix24> = w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
    prefixes.extend(w.probes.iter().take(60).map(|&p| w.host(p).ip.prefix24()));
    prefixes.sort();
    prefixes.dedup();
    let res = Resilience::none();
    let baseline_s = time_median(3, || {
        ipgeo::publish::build_dataset_resilient(&w, &net, &res, &vps, &prefixes, 7)
            .0
            .len()
    });
    let cfg = FusedConfig::new(1.0, 0.8);
    let fused_s = time_median(3, || {
        build_dataset_fused(&w, &net, &res, &vps, &prefixes, 7, &cfg)
            .0
            .len()
    });
    let (entries, report) = build_dataset_fused(&w, &net, &res, &vps, &prefixes, 7, &cfg);
    let fused_entries = entries
        .iter()
        .filter(|e| matches!(e.evidence, ipgeo::publish::Evidence::Fused { .. }))
        .count();
    let overhead_pct = if baseline_s > 0.0 {
        (fused_s / baseline_s - 1.0) * 100.0
    } else {
        0.0
    };
    format!(
        r#""fusion": {{
    "preset": "world_small_seed_401",
    "coverage": 1.0,
    "truthfulness": 0.8,
    "baseline_build_s": {baseline_s:.4},
    "fused_build_s": {fused_s:.4},
    "overhead_pct": {overhead_pct:.1},
    "fused_entries": {fused_entries},
    "total_prefixes": {},
    "hint_probe_attempts": {},
    "hint_probe_credits": {}
  }}"#,
        prefixes.len(),
        report.hints.attempts,
        report.hints.credits.net(),
    )
}

/// Merges the `stage_budget` object into `BENCH_campaigns.json`, replacing
/// any previous one. The campaigns snapshot owns the rest of the file and
/// always keeps `"note"` as the final key, which anchors the splice.
fn write_snapshot() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaigns.json");
    let current = std::fs::read_to_string(path)
        .expect("BENCH_campaigns.json missing: run the campaigns snapshot first");
    let anchor = "  \"note\":";
    let note_at = current.find(anchor).expect(
        "no \"note\" anchor in BENCH_campaigns.json: regenerate with the campaigns snapshot",
    );
    // Replace everything between a previous stage_budget (if any) and the
    // note anchor.
    let head_end = match current.find("  \"stage_budget\":") {
        Some(at) => at,
        None => note_at,
    };
    let budget = format!("{},\n  {}", stage_budget_json(), fusion_cost_json());
    let merged = format!(
        "{}  {budget},\n{}",
        &current[..head_end],
        &current[note_at..]
    );
    std::fs::write(path, &merged).expect("write BENCH_campaigns.json");
    println!("stage budget merged into {path}:\n{budget}");
}

fn main() {
    if std::env::args().any(|a| a == "--snapshot") {
        write_snapshot();
        return;
    }
    benches();
}
