//! Hints-based multi-source geolocation: the fused method tier.
//!
//! Pure-latency techniques (CBG, street-level) are the paper's floor; the
//! strongest published systems climb above it by mining *side-channel
//! hints* and verifying them with measurements. HLOC extracts airport and
//! city codes from rDNS names and keeps a hint only when RTT constraints
//! allow it; XLBoost-Geo boosts landmark evidence into a learned locator.
//! This crate replicates that tier against the synthetic world:
//!
//! - [`extract`] — tokenizer + code-table matcher turning an rDNS name
//!   (synthesized by `world_sim::rdns`) into city candidates, ambiguity
//!   preserved rather than guessed away.
//! - [`verify`] — the latency gate: a candidate survives only when its
//!   city center lies inside the CBG constraint region, and optional
//!   dedicated verification probes keep it only if every delivered RTT's
//!   speed-of-Internet disc still covers it.
//! - [`fuse`] — the estimator: CBG, a verified hint, an optional
//!   street-level estimate, and the `ipgeo::dbsim` commercial prior are
//!   combined into one location with a noisy-or confidence score and a
//!   source mask for the evidence trail.
//! - [`pipeline`] — `build_dataset_fused`, the publish-pipeline plumbing:
//!   the same evidence ladder as `ipgeo::publish::build_dataset_resilient`
//!   with the latency rung upgraded to fusion. Hint-verification probes
//!   draw from the same credit budget and fault plans as the baseline
//!   campaign but are accounted separately ([`pipeline::FusedReport`]).
//!
//! Everything is a pure function of `(world seed, knobs, inputs)`:
//! building the fused dataset is bit-identical at any `IPGEO_THREADS`,
//! and at hint coverage 0 the pipeline *is* the baseline pipeline,
//! byte for byte.

pub mod extract;
pub mod fuse;
pub mod pipeline;
pub mod verify;

pub use extract::{CodeTable, HintCandidate};
pub use fuse::{fuse as fuse_sources, Fused, FusionInput};
pub use pipeline::{build_dataset_fused, FusedConfig, FusedReport};
pub use verify::{probe_consistent, verify_against_region, VerifiedHint, HINT_AGREE_KM};
