//! Publish-pipeline plumbing for the fused method tier.
//!
//! [`build_dataset_fused`] walks the same evidence ladder as
//! `ipgeo::publish::build_dataset_resilient` — geofeed first, WHOIS
//! last — but upgrades the latency rung: after the baseline CBG
//! campaign it mines rDNS hints from the prefix's hosts, verifies them
//! against the constraint region (plus a small dedicated probe batch),
//! pulls the `ipgeo::dbsim` commercial prior, and fuses everything into
//! an [`Evidence::Fused`] entry carrying confidence, a source mask, and
//! the mined hostname.
//!
//! Contracts, both load-bearing for the test suite:
//!
//! - **Hint coverage 0 is the baseline, byte for byte.** The pipeline
//!   delegates to `build_dataset_resilient` outright, so fault-free
//!   output under `Resilience::none()` is identical down to CSV and
//!   `.igds` bytes.
//! - **Same budget, separate books.** Verification probes run through
//!   the same [`Resilience`] (same fault plan, same retry policy, same
//!   credit schedule) as the baseline campaign, but land in their own
//!   [`TargetLog`] so [`FusedReport`] can show baseline and
//!   hint-verification spending side by side.
//!
//! Determinism: targets are processed with
//! `geo_model::runtime::par_map_indexed` and every probe nonce is a pure
//! function of `(campaign nonce, prefix)`, so the dataset and both
//! reports are bit-identical at any `IPGEO_THREADS` setting.

use geo_model::ip::Prefix24;
use geo_model::rng::fnv1a;
use geo_model::soi::SpeedOfInternet;
use ipgeo::dbsim::GeoDatabase;
use ipgeo::publish::{self, DatasetEntry, Evidence};
use ipgeo::{cbg, resilient, CampaignReport, Resilience, TargetLog, VpMeasurement};
use net_sim::Network;
use std::fmt;
use world_sim::ids::HostId;
use world_sim::rdns::RdnsConfig;
use world_sim::World;

use crate::extract::CodeTable;
use crate::fuse::{fuse, FusionInput};
use crate::verify::{probe_consistent, verify_against_region, VerifiedHint};

/// Salt mixed into verification-probe nonces so they never collide with
/// the baseline campaign's measurement keys for the same prefix.
pub const HINT_NONCE_SALT: u64 = fnv1a(b"hint-verify");

/// Knobs of the fused pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedConfig {
    /// rDNS synthesis knobs (coverage × truthfulness).
    pub hints: RdnsConfig,
    /// Vantage points in the dedicated verification batch (closest to
    /// the CBG estimate by registered location).
    pub verify_vps: usize,
    /// Packets per verification ping.
    pub verify_packets: usize,
}

impl FusedConfig {
    /// A config with the default verification batch (3 VPs × 2 packets).
    pub fn new(coverage: f64, truthfulness: f64) -> FusedConfig {
        FusedConfig {
            hints: RdnsConfig::new(coverage, truthfulness),
            verify_vps: 3,
            verify_packets: 2,
        }
    }
}

/// Campaign accounting split by purpose: the baseline CBG probes and the
/// hint-verification probes keep separate books even though they share
/// one credit schedule and fault plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FusedReport {
    /// The baseline measurement campaign (identical to what the
    /// no-hints pipeline would have spent).
    pub base: CampaignReport,
    /// The dedicated hint-verification probes.
    pub hints: CampaignReport,
}

impl FusedReport {
    /// Both books folded together — total spend of the fused campaign.
    pub fn combined(&self) -> CampaignReport {
        let mut all = self.base.clone();
        all.merge(&self.hints);
        all
    }
}

impl fmt::Display for FusedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "baseline probes:")?;
        writeln!(f, "{}", self.base)?;
        writeln!(f, "hint-verification probes:")?;
        write!(f, "{}", self.hints)
    }
}

/// Builds the published dataset with the fused method tier. See the
/// module docs for the coverage-0 and accounting contracts.
pub fn build_dataset_fused(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    prefixes: &[Prefix24],
    nonce: u64,
    cfg: &FusedConfig,
) -> (Vec<DatasetEntry>, FusedReport) {
    if cfg.hints.coverage == 0.0 {
        let (entries, base) =
            publish::build_dataset_resilient(world, net, res, vps, prefixes, nonce);
        return (
            entries,
            FusedReport {
                base,
                hints: CampaignReport::default(),
            },
        );
    }
    let table = CodeTable::build(world);
    let db = GeoDatabase::maxmind_like(world, prefixes, world.config.seed.derive("fused-db"));
    let per: Vec<(Option<DatasetEntry>, TargetLog, TargetLog)> =
        geo_model::runtime::par_map_indexed(prefixes.len(), |i| {
            let mut base_log = TargetLog::default();
            let mut hint_log = TargetLog::default();
            let entry = locate_fused(
                world,
                net,
                res,
                vps,
                &table,
                &db,
                cfg,
                prefixes[i],
                nonce,
                &mut base_log,
                &mut hint_log,
            );
            (entry, base_log, hint_log)
        });
    let mut report = FusedReport::default();
    let entries = per
        .into_iter()
        .filter_map(|(entry, base_log, hint_log)| {
            report.base.absorb(&base_log);
            report.hints.absorb(&hint_log);
            entry
        })
        .collect();
    (entries, report)
}

/// Resolves one prefix through the fused evidence ladder.
#[allow(clippy::too_many_arguments)]
fn locate_fused(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    table: &CodeTable,
    db: &GeoDatabase,
    cfg: &FusedConfig,
    prefix: Prefix24,
    nonce: u64,
    base_log: &mut TargetLog,
    hint_log: &mut TargetLog,
) -> Option<DatasetEntry> {
    let (asn, _city) = world.plan.owner(prefix)?;

    // 1. Geofeed — same rung as the baseline ladder.
    if let Some(city) = world.metadata.geofeed_city(prefix) {
        return Some(DatasetEntry {
            prefix,
            location: world.city(city).center,
            evidence: Evidence::Geofeed,
        });
    }

    // 2. Latency + fusion: baseline CBG campaign, then hint mining.
    if let Some(ip) = prefix
        .addresses()
        .find(|&ip| world.host_by_ip(ip).is_some())
    {
        let batch = resilient::ping_batch(
            world,
            net,
            res,
            vps,
            ip,
            3,
            nonce ^ prefix.0 as u64,
            base_log,
        );
        let ms: Vec<VpMeasurement> = batch
            .iter()
            .filter_map(|(vp, outcome)| {
                outcome.rtt().map(|rtt| VpMeasurement {
                    vp: *vp,
                    location: world.host(*vp).registered_location,
                    rtt,
                })
            })
            .collect();
        if let Some(result) = cbg(&ms, SpeedOfInternet::CBG) {
            let hint = mine_and_verify(
                world, net, res, vps, table, cfg, prefix, nonce, &result, hint_log,
            );
            let fused = fuse(&FusionInput {
                cbg: &result,
                hint: hint.as_ref(),
                street: None,
                db: db.lookup(ip),
            });
            let best = ms
                .iter()
                .min_by(|a, b| a.rtt.total_cmp(&b.rtt))
                .expect("cbg implies measurements");
            return Some(DatasetEntry {
                prefix,
                location: fused.location,
                evidence: Evidence::Fused {
                    confidence: fused.confidence,
                    sources: fused.sources,
                    vps: ms.len(),
                    best_rtt: best.rtt,
                    best_vp: best.vp,
                    hostname: hint.map(|h| h.hostname),
                },
            });
        }
    }

    // 3. Legacy registry hint — only reachable when latency failed.
    let legacy = prefix.addresses().find_map(|ip| {
        let host = world.host_by_ip(ip)?;
        let city = world.metadata.dns_hint(host.id)?;
        let name = world.metadata.dns.get(&host.id)?.name.clone();
        Some((city, name))
    });
    if let Some((city, hostname)) = legacy {
        return Some(DatasetEntry {
            prefix,
            location: world.city(city).center,
            evidence: Evidence::DnsHint { hostname },
        });
    }

    // 4. WHOIS fallback.
    Some(DatasetEntry {
        prefix,
        location: world.city(world.asn(asn).whois_city).center,
        evidence: Evidence::Whois,
    })
}

/// Mines the prefix's hosts for an rDNS hint and runs both verification
/// gates. The probe gate pings the hinted target from the `verify_vps`
/// VPs closest to the CBG estimate (ties broken by host id), through the
/// same executor — so fault plans apply — into `hint_log`.
#[allow(clippy::too_many_arguments)]
fn mine_and_verify(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    table: &CodeTable,
    cfg: &FusedConfig,
    prefix: Prefix24,
    nonce: u64,
    result: &ipgeo::CbgResult,
    hint_log: &mut TargetLog,
) -> Option<VerifiedHint> {
    let (ip, name) = prefix.addresses().find_map(|ip| {
        let host = world.host_by_ip(ip)?;
        let name = world_sim::rdns::hostname(world, &cfg.hints, host.id)?;
        Some((ip, name))
    })?;
    let candidates = table.extract(&name.name);
    let hint = verify_against_region(world, result, &name.name, &candidates)?;
    if cfg.verify_vps == 0 {
        return Some(hint);
    }
    let mut closest: Vec<HostId> = vps.to_vec();
    closest.sort_by(|a, b| {
        let da = world
            .host(*a)
            .registered_location
            .distance(&result.estimate)
            .value();
        let db = world
            .host(*b)
            .registered_location
            .distance(&result.estimate)
            .value();
        da.total_cmp(&db).then(a.0.cmp(&b.0))
    });
    closest.truncate(cfg.verify_vps);
    let batch = resilient::ping_batch(
        world,
        net,
        res,
        &closest,
        ip,
        cfg.verify_packets,
        nonce ^ prefix.0 as u64 ^ HINT_NONCE_SALT,
        hint_log,
    );
    let checks: Vec<VpMeasurement> = batch
        .iter()
        .filter_map(|(vp, outcome)| {
            outcome.rtt().map(|rtt| VpMeasurement {
                vp: *vp,
                location: world.host(*vp).registered_location,
                rtt,
            })
        })
        .collect();
    probe_consistent(&hint.center, &checks).then_some(hint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use ipgeo::publish::{fused_sources, to_csv};
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Vec<HostId>, Vec<Prefix24>) {
        let w = World::generate(WorldConfig::small(Seed(351))).unwrap();
        let net = Network::new(Seed(351));
        let vps: Vec<HostId> = w
            .probes
            .iter()
            .copied()
            .filter(|&p| !w.host(p).is_mis_geolocated())
            .collect();
        let mut prefixes: Vec<Prefix24> =
            w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
        prefixes.extend(w.probes.iter().take(40).map(|&p| w.host(p).ip.prefix24()));
        prefixes.sort();
        prefixes.dedup();
        (w, net, vps, prefixes)
    }

    #[test]
    fn coverage_zero_is_byte_identical_to_the_baseline() {
        let (w, net, vps, prefixes) = setup();
        let res = Resilience::none();
        let (base_entries, base_report) =
            publish::build_dataset_resilient(&w, &net, &res, &vps, &prefixes, 7);
        let cfg = FusedConfig::new(0.0, 1.0);
        let (fused_entries, report) = build_dataset_fused(&w, &net, &res, &vps, &prefixes, 7, &cfg);
        assert_eq!(to_csv(&fused_entries), to_csv(&base_entries));
        assert_eq!(report.base, base_report);
        assert_eq!(report.hints, CampaignReport::default());
    }

    #[test]
    fn full_coverage_produces_fused_entries_with_verified_hints() {
        let (w, net, vps, prefixes) = setup();
        let res = Resilience::none();
        let cfg = FusedConfig::new(1.0, 1.0);
        let (entries, report) = build_dataset_fused(&w, &net, &res, &vps, &prefixes, 7, &cfg);
        assert_eq!(entries.len(), prefixes.len());
        let fused: Vec<_> = entries
            .iter()
            .filter(|e| matches!(e.evidence, Evidence::Fused { .. }))
            .collect();
        assert!(!fused.is_empty(), "no fused entries at full coverage");
        let with_hint = fused
            .iter()
            .filter(|e| match &e.evidence {
                Evidence::Fused {
                    sources, hostname, ..
                } => sources & fused_sources::HINT != 0 && hostname.is_some(),
                _ => false,
            })
            .count();
        assert!(with_hint > 0, "no verified hints at truthfulness 1.0");
        // Verification probes happened and are booked separately.
        assert!(report.hints.attempts > 0);
        assert!(report.base.attempts > 0);
        assert!(report.hints.credits.net() > 0);
    }

    #[test]
    fn unverified_hints_fall_back_to_the_cbg_estimate() {
        let (w, net, vps, prefixes) = setup();
        let res = Resilience::none();
        // Truthful run gives the CBG-only location for every prefix via
        // the coverage-0 path; the truthfulness-0 run must either match
        // it (hint refuted → fallback) or carry a verified-hint mask.
        let (base_entries, _) = build_dataset_fused(
            &w,
            &net,
            &res,
            &vps,
            &prefixes,
            7,
            &FusedConfig::new(0.0, 0.0),
        );
        let (lying, _) = build_dataset_fused(
            &w,
            &net,
            &res,
            &vps,
            &prefixes,
            7,
            &FusedConfig::new(1.0, 0.0),
        );
        let mut compared = 0;
        for (b, l) in base_entries.iter().zip(&lying) {
            assert_eq!(b.prefix, l.prefix);
            // Only latency-located baseline entries are comparable: the
            // baseline ladder serves legacy registry hints before
            // latency, while the fused ladder demotes them below it.
            let base_is_latency = matches!(b.evidence, Evidence::Latency { .. });
            if let Evidence::Fused { sources, .. } = &l.evidence {
                if base_is_latency && sources & fused_sources::HINT == 0 {
                    // No hint survived: the fused location is the CBG
                    // estimate, bit for bit.
                    assert_eq!(b.location.lat().to_bits(), l.location.lat().to_bits());
                    assert_eq!(b.location.lon().to_bits(), l.location.lon().to_bits());
                    compared += 1;
                }
            }
        }
        assert!(compared > 0, "no refuted-hint latency entries to compare");
    }

    #[test]
    fn fused_report_renders_both_books() {
        let (w, net, vps, prefixes) = setup();
        let res = Resilience::none();
        let cfg = FusedConfig::new(1.0, 0.9);
        let (_, report) = build_dataset_fused(&w, &net, &res, &vps, &prefixes, 7, &cfg);
        let text = report.to_string();
        assert!(text.contains("baseline probes:"));
        assert!(text.contains("hint-verification probes:"));
        let combined = report.combined();
        assert_eq!(
            combined.credits.net(),
            report.base.credits.net() + report.hints.credits.net()
        );
    }
}
