//! The fusion estimator: one located-with-confidence answer.
//!
//! Fusion is deliberately conservative about *location* and generous
//! about *confidence*:
//!
//! - **Location** follows a strict precedence: a verified hint names the
//!   city, so the hint's city center wins; failing that, a street-level
//!   estimate (when the caller ran one); failing that, the CBG centroid
//!   **exactly** — which is what makes the fused tier never worse than
//!   CBG-only by construction when every hint is refuted. The commercial
//!   DB prior never moves the location: it is the least auditable source,
//!   so it may only corroborate.
//! - **Confidence** is a noisy-or over the agreeing sources: each source
//!   `i` independently fails with probability `1 - w_i`, so the fused
//!   confidence is `1 - Π(1 - w_i)`. The DB prior counts only when it
//!   lands within [`DB_AGREE_KM`] of the fused location.
//!
//! The set of contributing sources is returned as the
//! [`ipgeo::publish::fused_sources`] bit mask that the CSV evidence
//! column and `.igds` snapshot carry.

use geo_model::point::GeoPoint;
use ipgeo::publish::fused_sources;
use ipgeo::CbgResult;

use crate::verify::VerifiedHint;

/// Per-source confidence weights — the probability the source is right
/// when it contributes, mirroring the class priors
/// [`ipgeo::publish::Evidence::confidence`] assigns to the legacy
/// single-source methods.
pub mod weight {
    /// CBG centroid (always contributes).
    pub const CBG: f64 = 0.70;
    /// A latency-verified rDNS hint.
    pub const HINT: f64 = 0.90;
    /// A street-level estimate.
    pub const STREET: f64 = 0.85;
    /// A commercial-DB prior that agrees with the fused location.
    pub const DB_AGREE: f64 = 0.50;
}

/// How close (km) the DB prior must land to the fused location to count
/// as corroboration.
pub const DB_AGREE_KM: f64 = 40.0;

/// The sources available for one target.
#[derive(Debug, Clone)]
pub struct FusionInput<'a> {
    /// The CBG run (fusion requires latency; no CBG, no fused answer).
    pub cbg: &'a CbgResult,
    /// A hint that survived both verification gates, if any.
    pub hint: Option<&'a VerifiedHint>,
    /// A street-level estimate, when the caller ran that pipeline.
    pub street: Option<GeoPoint>,
    /// The commercial-DB prior for the target's address, if covered.
    pub db: Option<GeoPoint>,
}

/// One fused answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Fused {
    /// The fused location.
    pub location: GeoPoint,
    /// Noisy-or confidence over the contributing sources.
    pub confidence: f64,
    /// [`fused_sources`] bit mask of everything that contributed.
    pub sources: u8,
}

/// Fuses the available sources (see the module docs for the rules).
pub fn fuse(input: &FusionInput<'_>) -> Fused {
    let location = match (input.hint, input.street) {
        (Some(hint), _) => hint.center,
        (None, Some(street)) => street,
        (None, None) => input.cbg.estimate,
    };
    let mut sources = fused_sources::CBG;
    let mut miss_all = 1.0 - weight::CBG;
    if input.hint.is_some() {
        sources |= fused_sources::HINT;
        miss_all *= 1.0 - weight::HINT;
    }
    if input.street.is_some() {
        sources |= fused_sources::STREET;
        miss_all *= 1.0 - weight::STREET;
    }
    if let Some(db) = input.db {
        if db.distance(&location).value() <= DB_AGREE_KM {
            sources |= fused_sources::DB_PRIOR;
            miss_all *= 1.0 - weight::DB_AGREE;
        }
    }
    Fused {
        location,
        confidence: 1.0 - miss_all,
        sources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::soi::SpeedOfInternet;
    use ipgeo::{cbg, VpMeasurement};
    use world_sim::ids::{CityId, HostId};

    fn cbg_at(target: GeoPoint) -> CbgResult {
        let vps = [
            GeoPoint::new(target.lat() + 2.0, target.lon()),
            GeoPoint::new(target.lat() - 2.0, target.lon() + 2.0),
            GeoPoint::new(target.lat(), target.lon() - 2.0),
        ];
        let ms: Vec<VpMeasurement> = vps
            .iter()
            .enumerate()
            .map(|(i, loc)| VpMeasurement {
                vp: HostId(i as u32),
                location: *loc,
                rtt: SpeedOfInternet::CBG.min_rtt(loc.distance(&target)) * 1.3,
            })
            .collect();
        cbg(&ms, SpeedOfInternet::CBG).unwrap()
    }

    fn hint_at(center: GeoPoint) -> VerifiedHint {
        VerifiedHint {
            city: CityId(7),
            center,
            hostname: "core1.par.as9.example.net".into(),
            ambiguous: false,
        }
    }

    #[test]
    fn cbg_only_passes_the_estimate_through_exactly() {
        let target = GeoPoint::new(48.85, 2.35);
        let result = cbg_at(target);
        let fused = fuse(&FusionInput {
            cbg: &result,
            hint: None,
            street: None,
            db: None,
        });
        assert_eq!(
            fused.location.lat().to_bits(),
            result.estimate.lat().to_bits()
        );
        assert_eq!(
            fused.location.lon().to_bits(),
            result.estimate.lon().to_bits()
        );
        assert_eq!(fused.sources, fused_sources::CBG);
        assert!((fused.confidence - weight::CBG).abs() < 1e-12);
    }

    #[test]
    fn verified_hint_moves_the_location_and_raises_confidence() {
        let target = GeoPoint::new(48.85, 2.35);
        let result = cbg_at(target);
        let hint = hint_at(GeoPoint::new(48.86, 2.34));
        let fused = fuse(&FusionInput {
            cbg: &result,
            hint: Some(&hint),
            street: None,
            db: None,
        });
        assert_eq!(fused.location, hint.center);
        assert_eq!(fused.sources, fused_sources::CBG | fused_sources::HINT);
        let expect = 1.0 - (1.0 - weight::CBG) * (1.0 - weight::HINT);
        assert!((fused.confidence - expect).abs() < 1e-12);
    }

    #[test]
    fn hint_outranks_street_for_location_but_both_score() {
        let result = cbg_at(GeoPoint::new(40.0, -74.0));
        let hint = hint_at(GeoPoint::new(40.1, -74.1));
        let fused = fuse(&FusionInput {
            cbg: &result,
            hint: Some(&hint),
            street: Some(GeoPoint::new(41.0, -73.0)),
            db: None,
        });
        assert_eq!(fused.location, hint.center);
        assert_eq!(
            fused.sources,
            fused_sources::CBG | fused_sources::HINT | fused_sources::STREET
        );
    }

    #[test]
    fn db_prior_corroborates_but_never_moves_the_location() {
        let target = GeoPoint::new(48.85, 2.35);
        let result = cbg_at(target);
        let near_db = GeoPoint::new(result.estimate.lat() + 0.05, result.estimate.lon());
        let fused = fuse(&FusionInput {
            cbg: &result,
            hint: None,
            street: None,
            db: Some(near_db),
        });
        assert_eq!(
            fused.location.lat().to_bits(),
            result.estimate.lat().to_bits()
        );
        assert_eq!(fused.sources, fused_sources::CBG | fused_sources::DB_PRIOR);
        let expect = 1.0 - (1.0 - weight::CBG) * (1.0 - weight::DB_AGREE);
        assert!((fused.confidence - expect).abs() < 1e-12);
    }

    #[test]
    fn disagreeing_db_prior_is_ignored() {
        let result = cbg_at(GeoPoint::new(48.85, 2.35));
        let fused = fuse(&FusionInput {
            cbg: &result,
            hint: None,
            street: None,
            db: Some(GeoPoint::new(-30.0, 140.0)),
        });
        assert_eq!(fused.sources, fused_sources::CBG);
        assert!((fused.confidence - weight::CBG).abs() < 1e-12);
    }
}
