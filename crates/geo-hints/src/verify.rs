//! Latency verification of extracted hints.
//!
//! A hint is a *claim*, not a measurement; HLOC's rule is that a claim
//! survives only when the latency evidence could be true of it. Two gates
//! implement that here:
//!
//! 1. **Region containment** ([`verify_against_region`]): the candidate
//!    city's center must lie inside the CBG constraint region built from
//!    the baseline campaign. Among the surviving candidates the one
//!    closest to the CBG centroid wins (lowest `CityId` on a tie), which
//!    also disambiguates colliding airport codes.
//! 2. **Probe consistency** ([`probe_consistent`]): dedicated
//!    verification pings, if any were affordable, must each leave the
//!    hinted center inside their speed-of-Internet disc. One violated
//!    disc kills the hint — latency can refute, never confirm.

use geo_model::point::GeoPoint;
use geo_model::soi::SpeedOfInternet;
use ipgeo::{CbgResult, VpMeasurement};
use world_sim::ids::CityId;
use world_sim::World;

use crate::extract::HintCandidate;

/// A hint that survived region containment (and, if probes ran,
/// probe consistency).
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedHint {
    /// The accepted city.
    pub city: CityId,
    /// Its center — the fused location when the hint wins.
    pub center: GeoPoint,
    /// The hostname the hint was mined from.
    pub hostname: String,
    /// True when the winning candidate came from a colliding airport
    /// code and was disambiguated by the region rather than the name.
    pub ambiguous: bool,
}

/// How far (km) from the CBG estimate a hinted city center may lie and
/// still count as *refining* the latency evidence. A constraint region
/// can span many cities; a hint is only trustworthy where it agrees
/// with latency at metro scale — beyond this radius the two sources
/// disagree outright and latency (the measurement) outranks the hint
/// (the claim). The same corroboration idea as
/// [`crate::fuse::DB_AGREE_KM`], wider because a verified hint is
/// allowed to move the estimate, not just score it.
pub const HINT_AGREE_KM: f64 = 50.0;

/// Applies gate 1: keeps the candidates whose city center lies in the
/// CBG constraint region *and* within [`HINT_AGREE_KM`] of the CBG
/// estimate, and returns the one closest to the estimate, ties broken
/// by lowest `CityId`. `None` when every candidate is refuted — the
/// caller must then fall back to pure latency.
pub fn verify_against_region(
    world: &World,
    cbg: &CbgResult,
    hostname: &str,
    candidates: &[HintCandidate],
) -> Option<VerifiedHint> {
    candidates
        .iter()
        .filter_map(|cand| {
            let center = world.city(cand.city).center;
            let away = center.distance(&cbg.estimate).value();
            if away <= HINT_AGREE_KM && cbg.region.contains(&center) {
                Some((cand, center, away))
            } else {
                None
            }
        })
        .min_by(|(a, _, da), (b, _, db)| da.total_cmp(db).then(a.city.0.cmp(&b.city.0)))
        .map(|(cand, center, _)| VerifiedHint {
            city: cand.city,
            center,
            hostname: hostname.to_string(),
            ambiguous: cand.ambiguous,
        })
}

/// Applies gate 2: true when every delivered verification measurement's
/// speed-of-Internet disc still covers the hinted center. Vacuously true
/// for an empty batch (no probes affordable ≠ refuted).
pub fn probe_consistent(center: &GeoPoint, measurements: &[VpMeasurement]) -> bool {
    measurements.iter().all(|m| {
        SpeedOfInternet::CBG.max_distance(m.rtt).value() >= m.location.distance(center).value()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use geo_model::soi::SpeedOfInternet;
    use geo_model::units::Ms;
    use ipgeo::cbg;
    use world_sim::ids::HostId;
    use world_sim::rdns::NamingScheme;
    use world_sim::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(83))).unwrap()
    }

    /// Tight consistent measurements around `target` from three synthetic
    /// vantage points, yielding a small constraint region.
    fn cbg_around(target: GeoPoint) -> CbgResult {
        let vps = [
            GeoPoint::new(target.lat() + 2.0, target.lon()),
            GeoPoint::new(target.lat() - 2.0, target.lon() + 2.0),
            GeoPoint::new(target.lat(), target.lon() - 2.0),
        ];
        let ms: Vec<VpMeasurement> = vps
            .iter()
            .enumerate()
            .map(|(i, loc)| VpMeasurement {
                vp: HostId(i as u32),
                location: *loc,
                rtt: SpeedOfInternet::CBG.min_rtt(loc.distance(&target)) * 1.3,
            })
            .collect();
        cbg(&ms, SpeedOfInternet::CBG).expect("consistent measurements intersect")
    }

    fn cand(city: CityId, ambiguous: bool) -> HintCandidate {
        HintCandidate {
            city,
            scheme: NamingScheme::Airport,
            ambiguous,
        }
    }

    #[test]
    fn in_region_candidate_survives_and_carries_the_hostname() {
        let w = world();
        let city = &w.cities[0];
        let result = cbg_around(city.center);
        let v =
            verify_against_region(&w, &result, "x.example.net", &[cand(city.id, false)]).unwrap();
        assert_eq!(v.city, city.id);
        assert_eq!(v.hostname, "x.example.net");
        assert!(!v.ambiguous);
    }

    #[test]
    fn out_of_region_candidates_are_refuted() {
        let w = world();
        let near = &w.cities[0];
        let result = cbg_around(near.center);
        // The farthest city from the region center cannot be inside a
        // region a few degrees across.
        let far = w
            .cities
            .iter()
            .max_by(|a, b| {
                a.center
                    .distance(&near.center)
                    .value()
                    .total_cmp(&b.center.distance(&near.center).value())
            })
            .unwrap();
        assert!(verify_against_region(&w, &result, "x", &[cand(far.id, false)]).is_none());
    }

    #[test]
    fn ambiguous_codes_resolve_to_the_in_region_city() {
        let w = world();
        let near = &w.cities[0];
        let far = w
            .cities
            .iter()
            .max_by(|a, b| {
                a.center
                    .distance(&near.center)
                    .value()
                    .total_cmp(&b.center.distance(&near.center).value())
            })
            .unwrap();
        let result = cbg_around(near.center);
        let v = verify_against_region(&w, &result, "x", &[cand(far.id, true), cand(near.id, true)])
            .unwrap();
        assert_eq!(v.city, near.id);
        assert!(v.ambiguous);
    }

    #[test]
    fn probe_consistency_refutes_too_distant_centers() {
        let vp = GeoPoint::new(48.0, 2.0);
        let near = GeoPoint::new(48.5, 2.5);
        let m = [VpMeasurement {
            vp: HostId(1),
            location: vp,
            rtt: SpeedOfInternet::CBG.min_rtt(vp.distance(&near)),
        }];
        assert!(probe_consistent(&near, &m));
        let far = GeoPoint::new(20.0, 60.0);
        assert!(!probe_consistent(&far, &m));
        // No probes delivered: vacuously consistent.
        assert!(probe_consistent(&far, &[]));
    }

    #[test]
    fn short_rtt_shrinks_the_disc_below_the_hint() {
        let vp = GeoPoint::new(10.0, 10.0);
        let hint = GeoPoint::new(14.0, 10.0);
        let m = [VpMeasurement {
            vp: HostId(0),
            location: vp,
            rtt: Ms(0.5),
        }];
        assert!(!probe_consistent(&hint, &m));
    }
}
