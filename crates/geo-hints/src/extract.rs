//! rDNS hint extraction: tokenizer + code-table matcher.
//!
//! The extractor is deliberately ignorant of how `world_sim::rdns` builds
//! its names — it sees only the hostname string and a code table derived
//! from the world's city list, the same asymmetry a real system faces
//! between an ISP's naming habit and a public airport-code table. Airport
//! codes are hashed three-letter tokens and **can collide across
//! cities**; the extractor returns every matching city and marks the
//! candidate ambiguous instead of guessing, leaving disambiguation to the
//! latency-verification stage.

use std::collections::HashMap;
use world_sim::ids::CityId;
use world_sim::rdns::{airport_code, city_code, reserved_tokens, NamingScheme};
use world_sim::World;

/// One city a hostname token could stand for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HintCandidate {
    /// The candidate city.
    pub city: CityId,
    /// Which naming scheme matched the token.
    pub scheme: NamingScheme,
    /// True when the matched token maps to more than one city (airport
    /// code collision) — the verification stage must pick.
    pub ambiguous: bool,
}

/// The code tables an extractor matches hostnames against: airport codes
/// (possibly colliding, multi-valued) and compact city codes (injective).
#[derive(Debug, Clone)]
pub struct CodeTable {
    airport: HashMap<String, Vec<CityId>>,
    city: HashMap<String, CityId>,
}

impl CodeTable {
    /// Builds both tables from the world's city list. City iteration
    /// order is the stored `Vec` order, so the table (and every colliding
    /// candidate list) is deterministic.
    pub fn build(world: &World) -> CodeTable {
        let mut airport: HashMap<String, Vec<CityId>> = HashMap::new();
        let mut city = HashMap::new();
        for c in &world.cities {
            airport.entry(airport_code(&c.name)).or_default().push(c.id);
            city.insert(city_code(&c.name), c.id);
        }
        CodeTable { airport, city }
    }

    /// Number of airport codes shared by more than one city.
    pub fn airport_collisions(&self) -> usize {
        self.airport.values().filter(|v| v.len() > 1).count()
    }

    /// All city candidates a hostname's tokens map to, in token order
    /// (city-code match first per token, then airport candidates in city
    /// order), deduplicated by city.
    pub fn extract(&self, hostname: &str) -> Vec<HintCandidate> {
        let mut out: Vec<HintCandidate> = Vec::new();
        let mut push = |cand: HintCandidate| {
            if !out.iter().any(|c| c.city == cand.city) {
                out.push(cand);
            }
        };
        for token in tokens(hostname) {
            if let Some(&city) = self.city.get(token) {
                push(HintCandidate {
                    city,
                    scheme: NamingScheme::CityCode,
                    ambiguous: false,
                });
                continue;
            }
            if token.len() == 3 && token.bytes().all(|b| b.is_ascii_lowercase()) {
                if let Some(cities) = self.airport.get(token) {
                    for &city in cities {
                        push(HintCandidate {
                            city,
                            scheme: NamingScheme::Airport,
                            ambiguous: cities.len() > 1,
                        });
                    }
                }
            }
        }
        out
    }
}

/// The location-bearing tokens of a hostname: label pieces split on `.`
/// and `-`, lowercased by construction in this world, with pure-numeric
/// pieces and reserved ISP-template words (role tokens, `as<digits>`,
/// domain scaffolding) dropped. A trailing unit number does not disguise
/// a reserved word: `core12` is still the reserved `core`.
pub fn tokens(hostname: &str) -> impl Iterator<Item = &str> {
    hostname
        .split(['.', '-'])
        .filter(|t| !t.is_empty())
        .filter(|t| {
            let stem = t.trim_end_matches(|c: char| c.is_ascii_digit());
            !stem.is_empty() && !reserved_tokens().any(|r| r == stem)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::rdns::{hostname, RdnsConfig};
    use world_sim::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(83))).unwrap()
    }

    #[test]
    fn tokenizer_drops_scaffolding_and_keeps_codes() {
        let toks: Vec<&str> = tokens("ge-par-3.as17.example.net").collect();
        assert_eq!(toks, vec!["par"]);
        let toks: Vec<&str> = tokens("eu0042.core12.as3.example.net").collect();
        assert_eq!(toks, vec!["eu0042"]);
        let toks: Vec<&str> = tokens("cpe7.lhr.as901.example.net").collect();
        assert_eq!(toks, vec!["lhr"]);
    }

    #[test]
    fn every_truthful_name_extracts_its_source_city() {
        let w = world();
        let table = CodeTable::build(&w);
        let cfg = RdnsConfig::new(1.0, 1.0);
        for &h in w.probes.iter().chain(&w.anchors) {
            let n = hostname(&w, &cfg, h).unwrap();
            let cands = table.extract(&n.name);
            assert!(
                cands.iter().any(|c| c.city == w.host(h).city),
                "{} missed city of host {h:?}",
                n.name
            );
        }
    }

    #[test]
    fn city_code_matches_are_unambiguous() {
        let w = world();
        let table = CodeTable::build(&w);
        for c in &w.cities {
            let name = format!("edge-{}-0.as1.example.net", city_code(&c.name));
            let cands = table.extract(&name);
            assert_eq!(cands.len(), 1);
            assert_eq!(cands[0].city, c.id);
            assert!(!cands[0].ambiguous);
        }
    }

    #[test]
    fn colliding_airport_codes_yield_every_city_marked_ambiguous() {
        let w = world();
        let table = CodeTable::build(&w);
        // Find (or accept the absence of) a collision in this world.
        let mut by_code: HashMap<String, Vec<CityId>> = HashMap::new();
        for c in &w.cities {
            by_code.entry(airport_code(&c.name)).or_default().push(c.id);
        }
        for (code, cities) in by_code {
            let cands = table.extract(&format!("core-{code}-1.as2.example.net"));
            assert_eq!(cands.len(), cities.len());
            for c in &cands {
                assert_eq!(c.ambiguous, cities.len() > 1, "code {code}");
            }
        }
    }

    #[test]
    fn unknown_codes_extract_nothing() {
        let w = world();
        let table = CodeTable::build(&w);
        // `zz9` is three chars but ends in a digit; `qqqq` is too long
        // for an airport code and no city compacts to it.
        assert!(table.extract("zz9.qqqq.as4.example.net").is_empty());
    }
}
