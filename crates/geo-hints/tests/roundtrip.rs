//! The generation→extraction round-trip contract: every *truthful* rDNS
//! name the world synthesizes must re-extract to the city it encodes —
//! for arbitrary world seeds, coverage/truthfulness knobs, and hosts.
//! (Misleading names round-trip to their *encoded* city too, which is
//! exactly why the latency gate exists; the property pins the extractor,
//! not the lie.)

use geo_hints::CodeTable;
use geo_model::rng::Seed;
use proptest::prelude::*;
use world_sim::rdns::{hostname, RdnsConfig};
use world_sim::{World, WorldConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truthful names re-extract to the host's actual city.
    #[test]
    fn truthful_names_reextract_to_their_source_city(
        seed in 0u64..64,
        coverage in 0.2f64..1.0,
    ) {
        let w = World::generate(WorldConfig::small(Seed(seed))).unwrap();
        let table = CodeTable::build(&w);
        let cfg = RdnsConfig::new(coverage, 1.0);
        for &h in w.probes.iter().chain(&w.anchors) {
            if let Some(n) = hostname(&w, &cfg, h) {
                prop_assert!(n.truthful);
                let cands = table.extract(&n.name);
                prop_assert!(
                    cands.iter().any(|c| c.city == w.host(h).city),
                    "{} does not re-extract city of {h:?}",
                    n.name
                );
            }
        }
    }

    /// Any generated name — truthful or stale — re-extracts to the city
    /// its code actually encodes.
    #[test]
    fn every_name_reextracts_its_encoded_city(
        seed in 0u64..64,
        truthfulness in 0.0f64..1.0,
    ) {
        let w = World::generate(WorldConfig::small(Seed(seed))).unwrap();
        let table = CodeTable::build(&w);
        let cfg = RdnsConfig::new(1.0, truthfulness);
        for &h in &w.probes {
            let n = hostname(&w, &cfg, h).unwrap();
            let cands = table.extract(&n.name);
            prop_assert!(
                cands.iter().any(|c| c.city == n.city),
                "{} does not re-extract its encoded city",
                n.name
            );
        }
    }
}
