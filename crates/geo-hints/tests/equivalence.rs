//! Determinism contracts of the fused pipeline:
//!
//! - the fused dataset — entries, CSV, `.igds` snapshot, and both
//!   campaign books — is bit-identical at `IPGEO_THREADS` 1 and 8;
//! - at hint coverage 0 with `Resilience::none()`, the fused pipeline's
//!   output is byte-identical to the no-hints baseline down to the
//!   `.igds` snapshot.

use geo_hints::{build_dataset_fused, FusedConfig, FusedReport};
use geo_model::ip::Prefix24;
use geo_model::rng::Seed;
use ipgeo::publish::{build_dataset_resilient, to_csv, DatasetEntry};
use ipgeo::Resilience;
use net_sim::Network;
use std::sync::Mutex;
use world_sim::ids::HostId;
use world_sim::{World, WorldConfig};

/// `IPGEO_THREADS` is process-global; tests that flip it must not
/// interleave.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (World, Network, Vec<HostId>, Vec<Prefix24>) {
    let world = World::generate(WorldConfig::small(Seed(351))).unwrap();
    let net = Network::new(Seed(351));
    let vps: Vec<HostId> = world
        .probes
        .iter()
        .copied()
        .filter(|&p| !world.host(p).is_mis_geolocated())
        .collect();
    let mut prefixes: Vec<Prefix24> = world
        .anchors
        .iter()
        .map(|&a| world.host(a).ip.prefix24())
        .collect();
    prefixes.extend(
        world
            .probes
            .iter()
            .take(40)
            .map(|&p| world.host(p).ip.prefix24()),
    );
    prefixes.sort();
    prefixes.dedup();
    (world, net, vps, prefixes)
}

fn build_fused(cfg: &FusedConfig) -> (Vec<DatasetEntry>, FusedReport, String, Vec<u8>) {
    let (world, net, vps, prefixes) = setup();
    let res = Resilience::none();
    let (entries, report) = build_dataset_fused(&world, &net, &res, &vps, &prefixes, 7, cfg);
    let csv = to_csv(&entries);
    let igds = geo_serve::format::encode(&entries, 351, 7);
    (entries, report, csv, igds)
}

fn entry_bits(entries: &[DatasetEntry]) -> Vec<(u32, u64, u64, String)> {
    entries
        .iter()
        .map(|e| {
            (
                e.prefix.0,
                e.location.lat().to_bits(),
                e.location.lon().to_bits(),
                format!("{:?}", e.evidence),
            )
        })
        .collect()
}

#[test]
fn fused_build_is_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = FusedConfig::new(0.7, 0.8);
    std::env::set_var("IPGEO_THREADS", "1");
    let (e1, r1, csv1, igds1) = build_fused(&cfg);
    std::env::set_var("IPGEO_THREADS", "8");
    let (e8, r8, csv8, igds8) = build_fused(&cfg);
    std::env::remove_var("IPGEO_THREADS");
    assert_eq!(entry_bits(&e1), entry_bits(&e8));
    assert_eq!(csv1, csv8);
    assert_eq!(igds1, igds8);
    assert_eq!(r1, r8);
    assert_eq!(r1.to_string(), r8.to_string());
}

#[test]
fn coverage_zero_matches_the_baseline_byte_for_byte() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::remove_var("IPGEO_THREADS");
    let (world, net, vps, prefixes) = setup();
    let res = Resilience::none();
    let (base_entries, base_report) =
        build_dataset_resilient(&world, &net, &res, &vps, &prefixes, 7);
    let cfg = FusedConfig::new(0.0, 0.5);
    let (entries, report) = build_dataset_fused(&world, &net, &res, &vps, &prefixes, 7, &cfg);
    assert_eq!(entry_bits(&entries), entry_bits(&base_entries));
    assert_eq!(to_csv(&entries), to_csv(&base_entries));
    assert_eq!(
        geo_serve::format::encode(&entries, 351, 7),
        geo_serve::format::encode(&base_entries, 351, 7)
    );
    assert_eq!(report.base, base_report);
    assert_eq!(report.hints.attempts, 0);
    assert_eq!(report.hints.credits.net(), 0);
}
