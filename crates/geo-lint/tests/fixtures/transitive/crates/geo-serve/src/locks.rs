//! Fixture lock-order cycle: Alpha locks then enters Beta's lock, Beta
//! locks then enters Alpha's lock.

use std::sync::Mutex;

pub struct Alpha {
    inner: Mutex<u32>,
}

pub struct Beta {
    inner: Mutex<u32>,
}

impl Alpha {
    pub fn ping(&self, b: &Beta) {
        let _g = self.inner.lock();
        b.cross_from_alpha();
    }

    pub fn entered_from_beta(&self) {
        let _g = self.inner.lock();
    }
}

impl Beta {
    pub fn pong(&self, a: &Alpha) {
        let _g = self.inner.lock();
        a.entered_from_beta();
    }

    pub fn cross_from_alpha(&self) {
        let _g = self.inner.lock();
    }
}
