//! Fixture serving path: the serve-entry root from which R1T/R4T walk.

use net_sim::shared::risky_get;

// geo-lint: serve-entry
fn worker_loop(state: &State) {
    let v = risky_get(&state.items, state.cursor);
    let w = pick(&state.items, state.cursor);
    net_sim::shared::refresh();
    mystery::frobnicate(v + w);
}

// geo-lint: allow(R1T, reason = "index bounded by the caller contract (cursor < items.len() holds at every call site)")
fn pick(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
