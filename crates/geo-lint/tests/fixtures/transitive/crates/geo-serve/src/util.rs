//! Fixture clock sink: fine for geo-serve's own per-file rules (D1 is
//! scoped to deterministic crates), caught only when a deterministic
//! crate can reach it (D1T).

// geo-lint: allow(D1, reason = "timing is display-only here")
pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
