//! Fixture hot path: the marked function is clean in its own body, but
//! the helper it calls allocates — visible only through P1T.

// geo-lint: hot-path
pub fn hot(n: usize) -> usize {
    build_table(n).len()
}

fn build_table(n: usize) -> Vec<u32> {
    vec![0; n]
}
