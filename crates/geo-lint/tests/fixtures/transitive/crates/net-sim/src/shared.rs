//! Fixture helpers a serving path can reach: an unchecked index (R1
//! does not look at net-sim, so only R1T sees it) and a thread spawn
//! (likewise invisible to the per-file R4).

pub fn risky_get(items: &[u32], i: usize) -> u32 {
    items[i]
}

pub fn refresh() {
    std::thread::spawn(|| {});
}
