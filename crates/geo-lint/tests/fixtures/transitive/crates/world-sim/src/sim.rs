//! Fixture deterministic root: its own body is clock-free, but it calls
//! into geo-serve code that reads the wall clock — a D1T violation.

pub fn step(tick: u64) -> u64 {
    let s = geo_serve::util::stamp();
    tick + s
}
