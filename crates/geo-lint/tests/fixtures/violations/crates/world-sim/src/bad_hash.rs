//! Fixture: hash-order iteration, one suppressed, one sorted (clean).

use std::collections::{HashMap, HashSet};

pub fn bare_loop(seen: &HashSet<u32>) -> u32 {
    let mut acc = 0;
    for v in seen {
        acc ^= v;
    }
    acc
}

pub fn unsorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn suppressed(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.values().map(|v| v ^ 1).collect() // geo-lint: allow(D2, reason = "fixture: output re-sorted by the caller")
}

pub fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn aggregate(m: &HashMap<u32, u32>) -> usize {
    m.values().count()
}
