//! Fixture: wall-clock and ambient-entropy reads in a deterministic crate.

pub fn timed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
