//! Fixture: panicking calls in a serving path; fine inside tests.

pub fn handle(line: Option<&str>) -> String {
    let line = line.unwrap();
    if line.is_empty() {
        panic!("empty request");
    }
    line.to_uppercase()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
