//! R5 fixture: unbounded buffer growth in a serving path.

use std::io::Read;
use std::net::TcpStream;

pub fn slurp(mut stream: TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).ok();
    buf
}

pub fn drip(mut stream: TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
    }
    buf
}

pub fn metered(mut stream: TcpStream, body_limit: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if buf.len() + n > body_limit {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    buf
}

pub fn dump(mut stream: TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    // geo-lint: allow(R5, reason = "fixture: one-shot admin debug dump, peer closes promptly")
    stream.read_to_end(&mut buf).ok();
    buf
}
