//! Fixture: blocking primitives in a serving path (R4); the worker
//! bootstrap and an allowed one-shot client read are exempt.

// geo-lint: worker-bootstrap
pub fn spawn_workers(n: usize) {
    for _ in 0..n {
        std::thread::spawn(|| {});
    }
}

pub fn handle_connection(stream: std::net::TcpStream) {
    std::thread::spawn(move || serve(stream));
}

pub fn serve(stream: std::net::TcpStream) {
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    use std::io::BufRead;
    reader.read_line(&mut line).ok();
}

pub fn client_roundtrip(stream: &mut std::net::TcpStream) -> [u8; 8] {
    let mut header = [0u8; 8];
    use std::io::Read;
    // geo-lint: allow(R4, reason = "one-shot test client, not the serving path")
    stream.read_exact(&mut header).ok();
    header
}
