//! Fixture: direct RNG construction bypassing `geo_model::rng`.

pub fn direct(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
