//! Fixture: directive errors — unknown rule id, stale allow.

// geo-lint: allow(Q7, reason = "no such rule")
pub fn unknown() {}

// geo-lint: allow(D1, reason = "nothing to suppress here")
pub fn stale() {}
