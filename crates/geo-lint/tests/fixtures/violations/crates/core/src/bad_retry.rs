//! Fixture: an unbounded retry loop (R3) next to a properly bounded one.

pub fn retry_forever() {
    loop {
        match ping() {
            Err(PlatformError::ServerError) => continue,
            _ => break,
        }
    }
}

pub fn retry_bounded() {
    let mut attempt = 0;
    loop {
        attempt += 1;
        if attempt >= 4 {
            break;
        }
        match ping() {
            Err(e) if e.is_retryable() => continue,
            _ => break,
        }
    }
}
