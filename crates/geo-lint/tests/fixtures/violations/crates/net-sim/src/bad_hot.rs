//! Deliberate P1 violations: allocation inside `hot-path` functions.

// geo-lint: hot-path
fn marked_collect(xs: &[u32]) -> u32 {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    doubled.iter().sum()
}

// geo-lint: hot-path
#[inline]
fn marked_ctor(n: usize) -> usize {
    let mut buf = Vec::with_capacity(n);
    buf.push(n);
    buf.len()
}

// geo-lint: hot-path
fn marked_macro(x: u32) -> usize {
    format!("{x}").len()
}

// geo-lint: hot-path
fn marked_clean(xs: &[u32]) -> u32 {
    xs.iter().sum()
}

fn unmarked_alloc(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    v.resize(n, 0);
    v
}

// geo-lint: hot-path
fn marked_allowed() -> usize {
    // geo-lint: allow(P1, reason = "fixture: cold fallback inside a hot function")
    String::new().len()
}
