//! Fixture: deterministic idioms that must not trip any rule.

use std::collections::{BTreeMap, HashMap};

pub fn sorted_iteration(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    pairs.sort_unstable();
    pairs
}

pub fn btree_walk(m: &BTreeMap<u32, u32>) -> u64 {
    let mut acc = 0;
    for (k, v) in m {
        acc += u64::from(k ^ v);
    }
    acc
}

pub fn lookups(m: &mut HashMap<u32, u32>) -> Option<u32> {
    m.insert(1, 2);
    m.get(&1).copied()
}
