//! Golden-file tests: run the linter over fixture workspaces with known
//! violations and compare the full human report byte-for-byte, plus CLI
//! exit-code and JSON-mode checks through the real binary.

use geo_lint::rules::Config;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("golden file")
}

#[test]
fn violations_fixture_matches_golden_report() {
    let report = geo_lint::check(&fixture("violations"), &Config::workspace()).unwrap();
    let rendered = report.render_human();
    let expected = golden("violations.expected.txt");
    assert_eq!(
        rendered, expected,
        "\n--- rendered ---\n{rendered}\n--- expected ---\n{expected}"
    );
    assert!(!report.is_clean());
}

#[test]
fn clean_fixture_is_clean() {
    let report = geo_lint::check(&fixture("clean"), &Config::workspace()).unwrap();
    assert!(report.is_clean(), "{}", report.render_human());
    assert!(report.suppressed.is_empty());
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn violations_fixture_finds_every_rule() {
    let report = geo_lint::check(&fixture("violations"), &Config::workspace()).unwrap();
    for rule in [
        "D1", "D2", "D3", "P1", "R1", "R2", "R3", "R4", "R5", "X1", "X2",
    ] {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "no {rule} diagnostic in:\n{}",
            report.render_human()
        );
    }
    // The sorted/aggregate/suppressed idioms must not add D2 noise: exactly
    // the bare loop and the unsorted keys remain.
    let d2: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "D2")
        .collect();
    assert_eq!(d2.len(), 2, "{d2:?}");
    // Marked-but-clean and unmarked-allocating functions add no P1 noise.
    let p1: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "P1")
        .collect();
    assert_eq!(p1.len(), 3, "{p1:?}");
    // The bootstrap-exempt spawn and the unmarked spawn are told apart:
    // exactly the serving-path spawn and the blocking read are flagged.
    let r4: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R4")
        .collect();
    assert_eq!(r4.len(), 2, "{r4:?}");
    // The `metered` read loop checks `body_limit` and must not be flagged:
    // exactly the EOF slurp and the budget-less drip loop remain.
    let r5: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "R5")
        .collect();
    assert_eq!(r5.len(), 2, "{r5:?}");
    // The four legitimate allows are recorded, with their reasons.
    assert_eq!(report.suppressed.len(), 4);
    assert_eq!(report.suppressed[0].rule, "R4");
    assert!(report.suppressed[0].reason.contains("one-shot test client"));
    assert_eq!(report.suppressed[1].rule, "R5");
    assert!(report.suppressed[1].reason.contains("debug dump"));
    assert_eq!(report.suppressed[2].rule, "P1");
    assert!(report.suppressed[2].reason.contains("cold fallback"));
    assert_eq!(report.suppressed[3].rule, "D2");
    assert!(report.suppressed[3].reason.contains("re-sorted"));
}

#[test]
fn cfg_test_regions_are_exempt() {
    let report = geo_lint::check(&fixture("violations"), &Config::workspace()).unwrap();
    // server.rs has an unwrap inside #[cfg(test)]; only the two serving-path
    // diagnostics (unwrap + panic!) may appear for that file.
    let server: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.file.ends_with("geo-serve/src/server.rs"))
        .collect();
    assert_eq!(server.len(), 2, "{server:?}");
    assert!(server.iter().all(|d| d.rule == "R1"));
    assert!(server.iter().all(|d| d.line < 11), "{server:?}");
}

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_geo-lint"))
        .args(args)
        .output()
        .expect("spawn geo-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean() {
    let bad = fixture("violations");
    let (code, _) = run_cli(&["check", "--root", bad.to_str().unwrap()]);
    assert_eq!(code, 1);
    let good = fixture("clean");
    let (code, out) = run_cli(&["check", "--root", good.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 diagnostics"), "{out}");
}

#[test]
fn cli_json_mode_is_well_formed() {
    let bad = fixture("violations");
    let (code, out) = run_cli(&["check", "--json", "--root", bad.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.contains("\"rule\": \"D1\""), "{out}");
    assert!(out.contains("\"clean\": false"), "{out}");
    assert_eq!(out.trim_end().chars().last(), Some('}'), "{out}");
    // Snippets with embedded quotes/backslashes must be escaped.
    assert!(out.contains(r#"panic!(\"empty request\");"#), "{out}");
}

#[test]
fn cli_rules_lists_all_rules() {
    let (code, out) = run_cli(&["rules"]);
    assert_eq!(code, 0);
    for rule in [
        "D1", "D2", "D3", "P1", "R1", "R2", "R3", "R4", "R5", "X1", "X2",
    ] {
        assert!(out.contains(rule), "{out}");
    }
}

#[test]
fn cli_usage_errors_exit_2() {
    let (code, _) = run_cli(&[]);
    assert_eq!(code, 2);
    let (code, _) = run_cli(&["check", "--root"]);
    assert_eq!(code, 2);
    let (code, _) = run_cli(&["check", "--frobnicate"]);
    assert_eq!(code, 2);
}
