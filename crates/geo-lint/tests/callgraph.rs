//! Golden-file tests for call-graph mode: run the linter with
//! reachability analysis over a fixture workspace that violates every
//! transitive rule, and compare both renderings byte-for-byte.

use geo_lint::rules::Config;
use geo_lint::CheckOptions;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("golden file")
}

fn check_transitive() -> geo_lint::report::Report {
    let opts = CheckOptions {
        call_graph: true,
        ..CheckOptions::default()
    };
    geo_lint::check_with(&fixture("transitive"), &Config::workspace(), opts).unwrap()
}

#[test]
fn transitive_fixture_matches_golden_human_report() {
    let report = check_transitive();
    let rendered = report.render_human();
    let expected = golden("transitive.expected.txt");
    assert_eq!(
        rendered, expected,
        "\n--- rendered ---\n{rendered}\n--- expected ---\n{expected}"
    );
    assert!(!report.is_clean());
}

#[test]
fn transitive_fixture_matches_golden_json() {
    let report = check_transitive();
    let rendered = report.render_json();
    let expected = golden("transitive.expected.json");
    assert_eq!(
        rendered, expected,
        "\n--- rendered ---\n{rendered}\n--- expected ---\n{expected}"
    );
}

#[test]
fn every_transitive_rule_fires_exactly_once_with_a_full_chain() {
    let report = check_transitive();
    for rule in ["R1T", "R4T", "D1T", "P1T", "L1"] {
        let hits: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule)
            .collect();
        assert_eq!(hits.len(), 1, "{rule}: {hits:?}");
        assert!(
            hits[0].chain.len() >= 2,
            "{rule} chain too short: {:?}",
            hits[0].chain
        );
    }
    // Witness chains start at the root, end at the sink's function.
    let r1t = report.diagnostics.iter().find(|d| d.rule == "R1T").unwrap();
    assert_eq!(
        r1t.chain,
        vec![
            "geo_serve::server::worker_loop",
            "net_sim::shared::risky_get"
        ]
    );
    let d1t = report.diagnostics.iter().find(|d| d.rule == "D1T").unwrap();
    assert_eq!(
        d1t.chain,
        vec!["world_sim::sim::step", "geo_serve::util::stamp"]
    );
}

#[test]
fn unresolved_calls_are_reported_not_treated_as_safe() {
    let report = check_transitive();
    // `mystery::frobnicate()` cannot be resolved; it must surface in the
    // unresolved section (reachable from the serve-entry root), never
    // silently pass as safe.
    assert_eq!(report.unresolved.len(), 1, "{:?}", report.unresolved);
    let u = &report.unresolved[0];
    assert_eq!(u.name, "mystery::frobnicate");
    assert_eq!(u.from, "geo_serve::server::worker_loop");
    assert_eq!(u.why, "unresolved path");
    // And the graph summary counts it.
    assert_eq!(report.graph.as_ref().unwrap().unresolved, 1);
}

#[test]
fn transitive_allow_suppresses_and_scoped_out_allow_is_stale() {
    let report = check_transitive();
    // The fn-scoped allow(R1T) on `pick` suppresses its finding…
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "R1T");
    assert!(report.suppressed[0].reason.contains("caller contract"));
    // …and the allow(D1) in a crate where D1 never runs is flagged stale
    // with the scoped-out rationale, not silently ignored.
    let x2 = report.diagnostics.iter().find(|d| d.rule == "X2").unwrap();
    assert!(
        x2.rationale.contains("out of scope for its crate"),
        "{x2:?}"
    );
}

#[test]
fn without_call_graph_the_fixture_has_no_transitive_findings() {
    // The same tree linted per-file only: transitive rules stay silent,
    // their allows are exempt from X2 (the graph never ran), and the
    // per-file rules see nothing wrong with any single file.
    let report = geo_lint::check(&fixture("transitive"), &Config::workspace()).unwrap();
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["X2"], "{:?}", report.diagnostics);
    assert!(report.graph.is_none());
    assert!(report.unresolved.is_empty());
}

#[test]
fn cli_call_graph_json_carries_chains_and_exits_nonzero() {
    let root = fixture("transitive");
    let out = Command::new(env!("CARGO_BIN_EXE_geo-lint"))
        .args([
            "check",
            "--json",
            "--call-graph",
            "--root",
            root.to_str().unwrap(),
        ])
        .output()
        .expect("spawn geo-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.as_ref(), golden("transitive.expected.json"));
}
