//! Interprocedural reachability rules over the call graph.
//!
//! Multi-source BFS from each rule's root set, with parent pointers so
//! every finding carries the *shortest* witness call chain from a root to
//! the sink's function. All traversal orders are index-based over
//! deterministically-ordered nodes/edges, so reports are byte-stable.
//!
//! | rule  | roots                                   | sinks                         |
//! |-------|------------------------------------------|-------------------------------|
//! | `R1T` | `// geo-lint: serve-entry` fns           | panic family + `expr[…]`      |
//! | `R4T` | `// geo-lint: serve-entry` fns           | spawn/blocking reads, lock-across-write |
//! | `D1T` | every `src/` fn of clock-sensitive crates| wall clock / ambient entropy  |
//! | `P1T` | `// geo-lint: hot-path` fns              | heap allocation in callees    |
//! | `L1`  | —                                        | lock-acquisition-order cycles |
//!
//! Sinks already covered by the corresponding per-file rule (R1/R4/D1/P1)
//! are skipped, so a site is reported exactly once, by exactly one rule.

use crate::callgraph::{self, Graph};
use crate::parser::SinkKind;
use crate::rules::Config;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One transitive finding, pre-snippet (the merge pass fills snippets and
/// applies allows).
#[derive(Debug)]
pub(crate) struct TransFinding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub rationale: String,
    /// Witness call chain, root first, sink function last.
    pub chain: Vec<String>,
    /// Allow-scope window of the sink's function: a standalone allow whose
    /// target line falls in `[item_line, sig_line]` suppresses fn-wide.
    pub fn_item_line: usize,
    pub fn_sig_line: usize,
}

/// An unresolved call that is reachable from at least one rule root — the
/// honest "this analysis has a blind spot here" record.
#[derive(Debug)]
pub(crate) struct ReachableUnresolved {
    pub from_key: String,
    pub name: String,
    pub file: String,
    pub line: usize,
    pub why: String,
}

pub(crate) struct Outcome {
    pub findings: Vec<TransFinding>,
    pub unresolved: Vec<ReachableUnresolved>,
    pub functions: usize,
    pub edges: usize,
    pub unresolved_total: usize,
}

/// Runs every transitive rule over the graph.
pub(crate) fn analyze(cfg: &Config, graph: &Graph) -> Outcome {
    let mut findings: Vec<TransFinding> = Vec::new();

    let serve_roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.in_src
                && n.markers.iter().any(|m| m == "serve-entry")
                && n.crate_dir
                    .as_deref()
                    .is_some_and(|c| cfg.server_crates.iter().any(|s| s == c))
        })
        .collect();
    let serve_parents = bfs(graph, &serve_roots);

    run_r1t(cfg, graph, &serve_parents, &mut findings);
    run_r4t(cfg, graph, &serve_parents, &mut findings);

    let clock_roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.in_src
                && n.crate_dir
                    .as_deref()
                    .is_some_and(|c| cfg.clock_root_crates.iter().any(|d| d == c))
        })
        .collect();
    let clock_parents = bfs(graph, &clock_roots);
    run_d1t(cfg, graph, &clock_parents, &mut findings);

    let hot_roots: Vec<usize> = (0..graph.nodes.len())
        .filter(|&i| {
            let n = &graph.nodes[i];
            n.in_src
                && n.markers.iter().any(|m| m == "hot-path")
                && n.crate_dir
                    .as_deref()
                    .is_some_and(|c| cfg.hot_path_crates.iter().any(|h| h == c))
        })
        .collect();
    let hot_parents = bfs(graph, &hot_roots);
    run_p1t(graph, &hot_parents, &mut findings);

    run_l1(graph, &mut findings);

    // Unresolved calls reachable from any root set are surfaced; the rest
    // only count toward the summary total.
    let mut unresolved: Vec<ReachableUnresolved> = Vec::new();
    for u in &graph.unresolved {
        let reachable = serve_parents[u.from].is_some()
            || clock_parents[u.from].is_some()
            || hot_parents[u.from].is_some();
        if reachable {
            let n = &graph.nodes[u.from];
            unresolved.push(ReachableUnresolved {
                from_key: n.key.clone(),
                name: u.name.clone(),
                file: n.file.clone(),
                line: u.line,
                why: u.why.clone(),
            });
        }
    }

    Outcome {
        findings,
        unresolved,
        functions: graph.nodes.len(),
        edges: graph.edge_count,
        unresolved_total: graph.unresolved.len(),
    }
}

/// Multi-source BFS. Returns per-node `Some(parent)` when reachable (a
/// root's parent is itself). Roots are visited in index order and each
/// adjacency list is pre-sorted, so shortest chains are deterministic.
fn bfs(graph: &Graph, roots: &[usize]) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut sorted_roots: Vec<usize> = roots.to_vec();
    sorted_roots.sort_unstable();
    for &r in &sorted_roots {
        if parent[r].is_none() {
            parent[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        for e in &graph.edges[n] {
            if parent[e.target].is_none() {
                parent[e.target] = Some(n);
                queue.push_back(e.target);
            }
        }
    }
    parent
}

/// Witness chain from a root to `node`, keys root-first.
fn chain(graph: &Graph, parents: &[Option<usize>], node: usize) -> Vec<String> {
    let mut rev = vec![node];
    let mut cur = node;
    while let Some(p) = parents[cur] {
        if p == cur {
            break;
        }
        rev.push(p);
        cur = p;
    }
    rev.reverse();
    rev.into_iter()
        .map(|i| callgraph::key_of(graph, i).to_string())
        .collect()
}

fn finding(
    graph: &Graph,
    parents: &[Option<usize>],
    node: usize,
    rule: &'static str,
    line: usize,
    rationale: String,
) -> TransFinding {
    let n = &graph.nodes[node];
    TransFinding {
        rule,
        file: n.file.clone(),
        line,
        rationale,
        chain: chain(graph, parents, node),
        fn_item_line: n.item_line,
        fn_sig_line: n.sig_line,
    }
}

/// True when `node`'s file is in a crate from `list`'s `src/` tree.
fn in_src_of(graph: &Graph, node: usize, list: &[String]) -> bool {
    let n = &graph.nodes[node];
    n.in_src
        && n.crate_dir
            .as_deref()
            .is_some_and(|c| list.iter().any(|d| d == c))
}

/// R1T: panic family + indexing reachable from serving entry points.
/// Panic-family sinks inside server-crate `src/` are R1's jurisdiction and
/// skipped; indexing is new surface and reported everywhere reachable.
fn run_r1t(cfg: &Config, graph: &Graph, parents: &[Option<usize>], out: &mut Vec<TransFinding>) {
    for node in 0..graph.nodes.len() {
        if parents[node].is_none() {
            continue;
        }
        let covered_by_r1 = in_src_of(graph, node, &cfg.server_crates);
        for s in &graph.nodes[node].sinks {
            let rationale = match s.kind {
                SinkKind::Panic if !covered_by_r1 => format!(
                    "{} can panic and is reachable from a serving entry point; a bad \
                     request must not be able to kill a worker",
                    s.what
                ),
                SinkKind::Index => format!(
                    "{} indexing panics out of bounds and is reachable from a serving \
                     entry point; use a checked `.get(…)` and handle the miss",
                    s.what
                ),
                _ => continue,
            };
            out.push(finding(graph, parents, node, "R1T", s.line, rationale));
        }
    }
}

/// R4T: blocking constructs reachable from serving entry points. Spawn and
/// blocking reads inside server-crate `src/` are R4's jurisdiction; the
/// lock-held-across-write heuristic (a `.lock()` earlier in the same
/// function than a `.write*()`) is new surface and applies everywhere.
fn run_r4t(cfg: &Config, graph: &Graph, parents: &[Option<usize>], out: &mut Vec<TransFinding>) {
    for node in 0..graph.nodes.len() {
        if parents[node].is_none() {
            continue;
        }
        let covered_by_r4 = in_src_of(graph, node, &cfg.server_crates);
        let sinks = &graph.nodes[node].sinks;
        for s in sinks {
            match s.kind {
                SinkKind::Spawn | SinkKind::BlockingRead if !covered_by_r4 => {
                    out.push(finding(
                        graph,
                        parents,
                        node,
                        "R4T",
                        s.line,
                        format!(
                            "{} blocks or respawns threads and is reachable from the \
                             event-loop worker; the serving path must stay nonblocking",
                            s.what
                        ),
                    ));
                }
                SinkKind::LockAcquire => {
                    let held_across_write = sinks
                        .iter()
                        .any(|w| w.kind == SinkKind::Write && w.order > s.order);
                    if held_across_write {
                        out.push(finding(
                            graph,
                            parents,
                            node,
                            "R4T",
                            s.line,
                            "`.lock()` is held across a later `.write*()` in the same \
                             function, stalling every contender on socket backpressure; \
                             drop the guard before writing"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

/// D1T: wall-clock/entropy reachable from clock-sensitive crates. Sinks
/// inside deterministic-crate `src/` are D1's jurisdiction and skipped.
fn run_d1t(cfg: &Config, graph: &Graph, parents: &[Option<usize>], out: &mut Vec<TransFinding>) {
    for node in 0..graph.nodes.len() {
        if parents[node].is_none() {
            continue;
        }
        if in_src_of(graph, node, &cfg.deterministic_crates) {
            continue;
        }
        for s in &graph.nodes[node].sinks {
            if s.kind != SinkKind::Clock {
                continue;
            }
            out.push(finding(
                graph,
                parents,
                node,
                "D1T",
                s.line,
                format!(
                    "{} reads the wall clock or ambient entropy and is reachable from a \
                     deterministic crate; the campaign output would stop being a pure \
                     function of the seed",
                    s.what
                ),
            ));
        }
    }
}

/// P1T: heap allocation in the callees of hot-path-marked functions. The
/// marked bodies themselves are P1's jurisdiction and skipped.
fn run_p1t(graph: &Graph, parents: &[Option<usize>], out: &mut Vec<TransFinding>) {
    for node in 0..graph.nodes.len() {
        if parents[node].is_none() {
            continue;
        }
        if graph.nodes[node].markers.iter().any(|m| m == "hot-path") {
            continue;
        }
        for s in &graph.nodes[node].sinks {
            if s.kind != SinkKind::Alloc {
                continue;
            }
            out.push(finding(
                graph,
                parents,
                node,
                "P1T",
                s.line,
                format!(
                    "{} heap-allocates in a function called from a `// geo-lint: \
                     hot-path` function; hoist the buffer or pass scratch in",
                    s.what
                ),
            ));
        }
    }
}

/// L1: lock-acquisition-order cycles. Edge `A → B` exists when some
/// function acquires class `A` and, later in the same body, acquires class
/// `B` directly or calls into code that does. A cycle means two threads
/// can deadlock by taking the classes in opposite orders.
fn run_l1(graph: &Graph, out: &mut Vec<TransFinding>) {
    let mut class_edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut witness: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let mut closure_cache: HashMap<usize, BTreeSet<String>> = HashMap::new();

    for node in 0..graph.nodes.len() {
        let n = &graph.nodes[node];
        let locks: Vec<&crate::parser::Sink> = n
            .sinks
            .iter()
            .filter(|s| s.kind == SinkKind::LockAcquire)
            .collect();
        if locks.is_empty() {
            continue;
        }
        let from_class = callgraph::lock_class(n);
        let mut add_edge = |a: &str, b: &str, line: usize| {
            if a == b {
                return;
            }
            class_edges
                .entry(a.to_string())
                .or_default()
                .insert(b.to_string());
            let w = (n.file.clone(), line, n.key.clone(), n.item_line, n.sig_line);
            witness
                .entry((a.to_string(), b.to_string()))
                .and_modify(|old| {
                    if (&w.0, w.1) < (&old.0, old.1) {
                        *old = w.clone();
                    }
                })
                .or_insert(w);
        };
        for l in &locks {
            // Calls made after the acquisition: everything their closure
            // locks is taken while this class is held. (Two `.lock()`s in
            // the same body share the function's class, so only calls can
            // introduce a cross-class edge.)
            for e in &graph.edges[node] {
                if e.order <= l.order {
                    continue;
                }
                for c in callgraph::lock_closure(graph, e.target, &mut closure_cache) {
                    add_edge(&from_class, &c, e.line);
                }
            }
        }
    }

    // Cycle detection: DFS over sorted classes; report each cycle once at
    // its lexicographically-smallest class.
    let classes: Vec<String> = class_edges.keys().cloned().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &classes {
        let mut path: Vec<String> = Vec::new();
        dfs_cycles(start, &class_edges, &mut path, &mut reported, &witness, out);
    }
}

/// Per-edge witness: (file, line, via-fn-key, fn_item_line, fn_sig_line).
type Witness = (String, usize, String, usize, usize);

fn dfs_cycles(
    cur: &String,
    edges: &BTreeMap<String, BTreeSet<String>>,
    path: &mut Vec<String>,
    reported: &mut BTreeSet<Vec<String>>,
    witness: &BTreeMap<(String, String), Witness>,
    out: &mut Vec<TransFinding>,
) {
    if let Some(pos) = path.iter().position(|c| c == cur) {
        // Found a cycle: path[pos..] + cur.
        let cycle: Vec<String> = path[pos..].to_vec();
        let mut canon = cycle.clone();
        canon.sort();
        if !reported.insert(canon) {
            return;
        }
        // Anchor the diagnostic at the witness of the first edge.
        let first = (
            cycle[0].clone(),
            cycle.get(1).cloned().unwrap_or_else(|| cycle[0].clone()),
        );
        let Some((file, line, via, item_line, sig_line)) = witness.get(&first).cloned() else {
            return;
        };
        let mut chain: Vec<String> = Vec::new();
        let mut desc: Vec<String> = Vec::new();
        for (i, a) in cycle.iter().enumerate() {
            let b = cycle.get(i + 1).unwrap_or(&cycle[0]);
            if let Some((wf, wl, wvia, _, _)) = witness.get(&(a.clone(), b.clone())) {
                chain.push(format!("{a} → {b} (in `{wvia}` at {wf}:{wl})"));
                desc.push(format!("`{a}` then `{b}`"));
            }
        }
        out.push(TransFinding {
            rule: "L1",
            file,
            line,
            rationale: format!(
                "lock-order cycle: {} — two threads taking these classes in opposite \
                 orders can deadlock; pick one global acquisition order (witness: `{via}`)",
                desc.join(", then ")
            ),
            chain,
            fn_item_line: item_line,
            fn_sig_line: sig_line,
        });
        return;
    }
    if path.len() > 32 {
        return;
    }
    path.push(cur.clone());
    if let Some(nexts) = edges.get(cur) {
        for n in nexts {
            dfs_cycles(n, edges, path, reported, witness, out);
        }
    }
    path.pop();
}
