//! The lint rules and the per-file checking pass.
//!
//! Every rule is a scan over the token stream produced by [`crate::lexer`],
//! scoped by where the file lives in the workspace (see [`Config`]).
//! `#[cfg(test)]` modules and `#[test]` functions are stripped before the
//! determinism/robustness rules run — tests may time themselves and unwrap
//! freely.

use crate::lexer::{self, Comment, FileLex, Token, TokenKind};
use crate::report::{Diagnostic, Report, Suppression};

/// Static description of one rule, for `geo-lint rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// All rules, including the meta-rules about allow directives themselves.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "no wall-clock or ambient entropy (SystemTime, Instant::now, thread_rng, \
                  from_entropy) in deterministic crates",
    },
    RuleInfo {
        id: "D2",
        summary: "no iteration over HashMap/HashSet in deterministic crates outside \
                  sort-then-iterate (hash iteration order is unspecified)",
    },
    RuleInfo {
        id: "D3",
        summary: "RNG construction must flow through geo_model::rng (Seed::rng / KeyRng), \
                  not direct SeedableRng calls",
    },
    RuleInfo {
        id: "R1",
        summary: "no unwrap/expect/panic in geo-serve server and request paths — a bad \
                  request or poisoned lock must not kill the server",
    },
    RuleInfo {
        id: "R2",
        summary: "no `static mut` or `unsafe impl Send/Sync` — shared mutable state goes \
                  through std sync primitives",
    },
    RuleInfo {
        id: "R3",
        summary: "no unbounded retry loops: a `loop`/`while true` that handles retryable \
                  `PlatformError`s must bound its attempts with a counter or budget",
    },
    RuleInfo {
        id: "R4",
        summary: "no `thread::spawn` or blocking socket reads (`read_line`/`read_exact`) in \
                  geo-serve serving paths outside the `// geo-lint: worker-bootstrap` pool \
                  setup — the event loop must stay nonblocking",
    },
    RuleInfo {
        id: "R5",
        summary: "unbounded buffer growth in geo-serve serving paths: `.read_to_end()`/\
                  `.read_to_string()`, or a read loop that grows a buffer without \
                  comparing against a byte budget (an identifier naming a max/budget/\
                  limit/bound)",
    },
    RuleInfo {
        id: "P1",
        summary: "heap allocation (Vec/String constructors, vec!/format!, .collect/.to_vec/\
                  .to_string/.to_owned) inside a function marked `// geo-lint: hot-path`",
    },
    RuleInfo {
        id: "R1T",
        summary: "panic/unwrap/expect or indexing-panic reachable (via the call graph) from \
                  a `// geo-lint: serve-entry` serving entry point",
    },
    RuleInfo {
        id: "R4T",
        summary: "blocking construct (thread::spawn, blocking reads, a lock held across a \
                  write) reachable from a serving entry point",
    },
    RuleInfo {
        id: "D1T",
        summary: "wall-clock or ambient entropy reachable from a deterministic crate's \
                  public surface through cross-crate calls",
    },
    RuleInfo {
        id: "P1T",
        summary: "heap allocation in a function transitively called from a \
                  `// geo-lint: hot-path` function",
    },
    RuleInfo {
        id: "L1",
        summary: "lock-acquisition-order cycle across HotCache/ServeStats/Registry-style \
                  mutex classes — opposite acquisition orders can deadlock",
    },
    RuleInfo {
        id: "X1",
        summary: "malformed or unknown-rule `geo-lint: allow(...)` directive",
    },
    RuleInfo {
        id: "X2",
        summary: "stale allow: the directive suppresses nothing on its target line",
    },
];

/// True when `id` names a suppressible (non-meta) rule.
fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id && !r.id.starts_with('X'))
}

/// The rules that need the call graph. Their allows are fn-scopable (a
/// standalone allow above the sink's `fn` suppresses the whole function)
/// and exempt from X2 staleness when the graph did not run.
const TRANSITIVE_RULES: &[&str] = &["R1T", "R4T", "D1T", "P1T", "L1"];

/// Where each rule family applies, expressed as crate-name lists relative
/// to the checked root. Fixtures construct their own `Config`, which is how
/// the golden tests exercise scoping without replicating this repo's names.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose `src/` must be a pure function of the seed (D1–D3).
    pub deterministic_crates: Vec<String>,
    /// Crates whose `src/` is a serving path (R1).
    pub server_crates: Vec<String>,
    /// Crates whose `src/` talks to the fault-injecting platform and must
    /// bound its retry loops (R3).
    pub retry_crates: Vec<String>,
    /// Crates whose `src/` carries `// geo-lint: hot-path` markers that P1
    /// enforces; markers elsewhere are inert documentation.
    pub hot_path_crates: Vec<String>,
    /// Vendored stand-in crates, skipped entirely.
    pub vendored_crates: Vec<String>,
    /// Crates whose `src/` functions are D1T roots: anything they can
    /// reach (in any crate) must stay clock/entropy-free. A superset of
    /// `deterministic_crates` — atlas-sim is seeded-deterministic too even
    /// though its own body rules are scoped differently.
    pub clock_root_crates: Vec<String>,
    /// File (root-relative, `/`-separated) exempt from D3: the one place
    /// allowed to touch `SeedableRng` directly.
    pub rng_module: String,
}

impl Config {
    /// The scoping used for this workspace.
    pub fn workspace() -> Config {
        Config {
            deterministic_crates: [
                "world-sim",
                "net-sim",
                "geo-model",
                "core",
                "eval",
                "geo-hints",
            ]
            .map(String::from)
            .to_vec(),
            server_crates: vec!["geo-serve".into()],
            retry_crates: ["core", "atlas-sim"].map(String::from).to_vec(),
            hot_path_crates: ["net-sim", "geo-model"].map(String::from).to_vec(),
            vendored_crates: ["rand", "proptest", "criterion"].map(String::from).to_vec(),
            clock_root_crates: [
                "world-sim",
                "net-sim",
                "geo-model",
                "core",
                "eval",
                "geo-hints",
                "atlas-sim",
            ]
            .map(String::from)
            .to_vec(),
            rng_module: "crates/geo-model/src/rng.rs".into(),
        }
    }
}

/// Classification of one file by its root-relative path.
struct FileCtx<'a> {
    rel: &'a str,
    /// Component after `crates/`, if the file lives under a crate.
    crate_name: Option<&'a str>,
    /// True when the file is under the crate's `src/` directory.
    in_src: bool,
}

impl<'a> FileCtx<'a> {
    fn classify(rel: &'a str) -> FileCtx<'a> {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next());
        let in_src = match crate_name {
            Some(name) => rel.starts_with(&format!("crates/{name}/src/")),
            None => false,
        };
        FileCtx {
            rel,
            crate_name,
            in_src,
        }
    }

    fn is_deterministic(&self, cfg: &Config) -> bool {
        self.in_src
            && self
                .crate_name
                .is_some_and(|c| cfg.deterministic_crates.iter().any(|d| d == c))
    }

    fn is_server(&self, cfg: &Config) -> bool {
        self.in_src
            && self
                .crate_name
                .is_some_and(|c| cfg.server_crates.iter().any(|d| d == c))
    }

    fn is_retry(&self, cfg: &Config) -> bool {
        self.in_src
            && self
                .crate_name
                .is_some_and(|c| cfg.retry_crates.iter().any(|d| d == c))
    }

    fn is_hot_path(&self, cfg: &Config) -> bool {
        self.in_src
            && self
                .crate_name
                .is_some_and(|c| cfg.hot_path_crates.iter().any(|d| d == c))
    }
}

/// The per-file analysis result: raw diagnostics (snippets filled), parsed
/// allow directives, and the item-level parse used for the call graph.
/// Self-contained (owns its data) so the file pass can run in parallel.
pub(crate) struct FileAnalysis {
    pub rel: String,
    pub lines: Vec<String>,
    /// Per-file rule findings plus X1 directive errors.
    pub diags: Vec<Diagnostic>,
    pub allows: Vec<Allow>,
    pub parsed: crate::parser::ParsedFile,
}

/// Runs the per-file rules and the item parser over one file. Pure: no
/// report mutation, so calls are order-independent and parallelizable.
pub(crate) fn analyze_file(cfg: &Config, rel: &str, src: &str) -> FileAnalysis {
    let ctx = FileCtx::classify(rel);
    let lexed = lexer::lex(src);
    let code = strip_test_regions(&lexed.tokens);
    let lines: Vec<String> = src.lines().map(str::to_string).collect();

    let mut diags: Vec<Diagnostic> = Vec::new();
    if ctx.is_deterministic(cfg) {
        check_d1(&code, &mut diags);
        check_d2(&code, &mut diags);
        if ctx.rel != cfg.rng_module {
            check_d3(&code, &mut diags);
        }
    }
    if ctx.is_server(cfg) {
        check_r1(&code, &mut diags);
        check_r4(&lexed, &code, &mut diags);
        check_r5(&code, &mut diags);
    }
    check_r2(&code, &mut diags);
    if ctx.is_retry(cfg) {
        check_r3(&code, &mut diags);
    }
    if ctx.is_hot_path(cfg) {
        check_p1(&lexed, &code, &mut diags);
    }

    for d in &mut diags {
        d.file = rel.to_string();
        d.snippet = lines
            .get(d.line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
    }

    let mut allows = Vec::new();
    for c in &lexed.comments {
        parse_allows(c, &lexed, rel, &lines, &mut allows, &mut diags);
    }

    // Item parse on the test-stripped tokens: test fns stay out of the
    // call graph, mirroring the per-file rules.
    let parsed = crate::parser::parse(&code, &lexed.comments);

    FileAnalysis {
        rel: rel.to_string(),
        lines,
        diags,
        allows,
        parsed,
    }
}

/// Reconciles analyses and transitive findings against allow directives,
/// appending to `report`. Transitive findings may be suppressed either on
/// the sink line or fn-scoped (a standalone allow above the sink's `fn`).
/// Unused allows become X2 — with a distinct rationale when the allowed
/// rule is not even checked for that file, and no X2 at all for
/// transitive-rule allows when the call graph did not run (their validity
/// cannot be judged without it).
pub(crate) fn merge(
    cfg: &Config,
    analyses: Vec<FileAnalysis>,
    transitive: Vec<crate::reach::TransFinding>,
    call_graph_ran: bool,
    report: &mut Report,
) {
    let mut trans_by_file: std::collections::BTreeMap<&str, Vec<&crate::reach::TransFinding>> =
        std::collections::BTreeMap::new();
    for f in &transitive {
        trans_by_file.entry(f.file.as_str()).or_default().push(f);
    }

    for mut a in analyses {
        let ctx = FileCtx::classify(&a.rel);
        // (diagnostic, fn allow-window for transitive findings).
        let mut candidates: Vec<(Diagnostic, Option<(usize, usize)>)> =
            a.diags.drain(..).map(|d| (d, None)).collect();
        for t in trans_by_file.get(a.rel.as_str()).into_iter().flatten() {
            candidates.push((
                Diagnostic {
                    rule: t.rule.into(),
                    file: t.file.clone(),
                    line: t.line,
                    snippet: a
                        .lines
                        .get(t.line.saturating_sub(1))
                        .map(|l| l.trim().to_string())
                        .unwrap_or_default(),
                    rationale: t.rationale.clone(),
                    chain: t.chain.clone(),
                },
                Some((t.fn_item_line, t.fn_sig_line)),
            ));
        }

        'diag: for (d, window) in candidates {
            for al in &mut a.allows {
                let line_match = al.target_line == d.line;
                let fn_match =
                    window.is_some_and(|(lo, hi)| al.target_line >= lo && al.target_line <= hi);
                if al.rule == d.rule && (line_match || fn_match) {
                    report.suppressed.push(Suppression {
                        rule: d.rule.clone(),
                        file: a.rel.clone(),
                        line: d.line,
                        reason: al.reason.clone().unwrap_or_default(),
                    });
                    al.used = true;
                    continue 'diag;
                }
            }
            report.diagnostics.push(d);
        }

        for al in &a.allows {
            if al.used {
                continue;
            }
            let is_transitive = TRANSITIVE_RULES.contains(&al.rule.as_str());
            if is_transitive && !call_graph_ran {
                continue;
            }
            let rationale = if rule_checked_here(cfg, &ctx, &al.rule) {
                format!(
                    "stale allow: no {} violation on line {} — remove the directive",
                    al.rule, al.target_line
                )
            } else {
                format!(
                    "stale allow: rule {} is not checked for this file (out of scope \
                     for its crate), so the directive can never suppress anything — \
                     remove it",
                    al.rule
                )
            };
            report.diagnostics.push(Diagnostic {
                rule: "X2".into(),
                file: a.rel.clone(),
                line: al.directive_line,
                snippet: a
                    .lines
                    .get(al.directive_line.saturating_sub(1))
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                rationale,
                chain: Vec::new(),
            });
        }

        report.files_scanned += 1;
    }
}

/// Whether `rule` actually runs for the file `ctx` describes — the X2
/// scoping check for unused allows.
fn rule_checked_here(cfg: &Config, ctx: &FileCtx<'_>, rule: &str) -> bool {
    match rule {
        "D1" | "D2" => ctx.is_deterministic(cfg),
        "D3" => ctx.is_deterministic(cfg) && ctx.rel != cfg.rng_module,
        "R1" | "R4" | "R5" => ctx.is_server(cfg),
        "R2" => true,
        "R3" => ctx.is_retry(cfg),
        "P1" => ctx.is_hot_path(cfg),
        // Transitive rules can fire in any file once the graph runs
        // (merge already skipped them when it did not).
        r if TRANSITIVE_RULES.contains(&r) => true,
        _ => true,
    }
}

/// Lints one file; appends non-suppressed diagnostics and used
/// suppressions to `report`. `rel` is the root-relative path. This is the
/// serial per-file mode: no call graph, no transitive rules.
pub fn lint_file(cfg: &Config, rel: &str, src: &str, report: &mut Report) {
    let analysis = analyze_file(cfg, rel, src);
    merge(cfg, vec![analysis], Vec::new(), false, report);
}

/// A parsed `// geo-lint: allow(RULE, reason = "...")` directive.
#[derive(Debug)]
pub(crate) struct Allow {
    rule: String,
    reason: Option<String>,
    /// Line of the comment itself.
    directive_line: usize,
    /// Line the allow applies to: the comment's own line for trailing
    /// comments, the next code line for standalone comment lines.
    target_line: usize,
    /// Set once the allow has suppressed at least one diagnostic.
    used: bool,
}

/// Parses every `geo-lint:` occurrence in one comment. Malformed or
/// unknown-rule directives are reported immediately as X1 into `diags`.
fn parse_allows(
    c: &Comment,
    lexed: &FileLex,
    rel: &str,
    lines: &[String],
    allows: &mut Vec<Allow>,
    diags: &mut Vec<Diagnostic>,
) {
    // A directive must *start* the comment (after doc-comment markers):
    // prose that merely mentions `geo-lint:` mid-sentence is not one.
    let anchored = c.text.trim_start_matches(['/', '!', '*']).trim_start();
    if !anchored.starts_with("geo-lint:") {
        return;
    }
    let mut rest = anchored;
    while let Some(pos) = rest.find("geo-lint:") {
        rest = &rest[pos + "geo-lint:".len()..];
        let body = rest.trim_start();
        let fail = |why: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                rule: "X1".into(),
                file: rel.to_string(),
                line: c.line,
                snippet: lines
                    .get(c.line.saturating_sub(1))
                    .map(|l| l.trim().to_string())
                    .unwrap_or_default(),
                rationale: format!(
                    "malformed geo-lint directive: {why} \
                     (expected `geo-lint: allow(<rule>, reason = \"...\")`)"
                ),
                chain: Vec::new(),
            });
        };
        if matches!(body.trim(), "hot-path" | "worker-bootstrap" | "serve-entry") {
            // Markers, not allows: `check_p1`/`check_r4` consume the first
            // two; the reachability engine roots R1T/R4T at `serve-entry`.
            continue;
        }
        let Some(args) = body.strip_prefix("allow(") else {
            fail(
                "only `allow(...)` and the `hot-path`/`worker-bootstrap`/`serve-entry` \
                 markers are understood",
                diags,
            );
            continue;
        };
        // The reason string may itself contain `)` (code snippets like
        // `buf.len()`), so the directive ends at the first `)` that sits
        // outside a `"…"` span, not at the first `)` overall.
        let mut close = None;
        let mut in_str = false;
        for (i, ch) in args.char_indices() {
            match ch {
                '"' => in_str = !in_str,
                ')' if !in_str => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            fail("unclosed `allow(`", diags);
            continue;
        };
        let inner = &args[..close];
        let (rule, reason_part) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), Some(rest.trim())),
            None => (inner.trim(), None),
        };
        if !is_known_rule(rule) {
            fail(&format!("unknown rule id `{rule}`"), diags);
            continue;
        }
        let reason = reason_part
            .and_then(|r| r.strip_prefix("reason"))
            .map(|r| r.trim_start_matches(['=', ' ']))
            .map(|r| r.trim_matches('"').to_string());
        let Some(reason) = reason.filter(|r| !r.is_empty()) else {
            fail("missing `reason = \"...\"`", diags);
            continue;
        };
        let trailing = lexed.tokens.iter().any(|t| t.line == c.line);
        let target_line = if trailing {
            c.line
        } else {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(usize::MAX)
        };
        allows.push(Allow {
            rule: rule.to_string(),
            reason: Some(reason),
            directive_line: c.line,
            target_line,
            used: false,
        });
    }
}

/// Removes tokens inside `#[cfg(test)]` items and `#[test]` functions.
fn strip_test_regions(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            // Skip to the end of the attribute's item: either a `;`
            // (e.g. `mod tests;`) or a balanced `{ ... }` block.
            let mut j = i;
            // Consume the attribute itself: `# [ ... ]`.
            j += 1; // '#'
            let mut depth = 0;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            // Now consume until the item ends.
            let mut brace = 0i32;
            let mut entered = false;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') {
                    brace += 1;
                    entered = true;
                } else if t.is_punct('}') {
                    brace -= 1;
                } else if t.is_punct(';') && !entered {
                    j += 1;
                    break;
                }
                j += 1;
                if entered && brace == 0 {
                    break;
                }
            }
            i = j;
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// True when `tokens[i..]` starts `#[cfg(test)]` or `#[test]`.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct('#') {
        return false;
    }
    let t = |k: usize| tokens.get(i + k);
    let is = |k: usize, name: &str| t(k).is_some_and(|x| x.is_ident(name));
    let p = |k: usize, c: char| t(k).is_some_and(|x| x.is_punct(c));
    // #[test]
    if p(1, '[') && is(2, "test") && p(3, ']') {
        return true;
    }
    // #[cfg(test)]
    p(1, '[') && is(2, "cfg") && p(3, '(') && is(4, "test") && p(5, ')') && p(6, ']')
}

fn diag(rule: &str, line: usize, rationale: String) -> Diagnostic {
    Diagnostic {
        rule: rule.into(),
        file: String::new(),
        line,
        snippet: String::new(),
        rationale,
        chain: Vec::new(),
    }
}

/// D1: wall-clock and ambient-entropy reads.
fn check_d1(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        match name {
            "SystemTime" | "UNIX_EPOCH" => diags.push(diag(
                "D1",
                t.line,
                format!("`{name}` reads the wall clock; deterministic crates must be pure functions of the seed"),
            )),
            "thread_rng" | "from_entropy" => diags.push(diag(
                "D1",
                t.line,
                format!("`{name}` draws ambient OS entropy; derive randomness from `geo_model::rng::Seed` instead"),
            )),
            "Instant"
                if tokens.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|x| x.is_ident("now"))
                => {
                    diags.push(diag(
                        "D1",
                        t.line,
                        "`Instant::now()` reads the monotonic clock; timing belongs in `bench`, not in deterministic crates".into(),
                    ));
                }
            _ => {}
        }
    }
}

/// Iterator-producing methods on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Sorting calls that make hash-iteration output order-stable.
const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Chain members whose result does not depend on iteration order.
const ORDER_INSENSITIVE: &[&str] = &["count", "len", "any", "all", "is_empty", "contains"];

/// D2: iteration over HashMap/HashSet outside sort-then-iterate.
fn check_d2(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    let bindings = collect_hash_bindings(tokens);
    if !bindings.iter().any(|b| b.hash) {
        return;
    }
    // Latest binding before the use site wins, so a name reused for a
    // BTree collection in a later function does not inherit hash-ness.
    let is_hash_at = |name: &str, use_tok: usize| {
        bindings
            .iter()
            .rev()
            .find(|b| b.tok < use_tok && b.name == name)
            .is_some_and(|b| b.hash)
    };
    let rationale = |name: &str, how: &str| {
        format!(
            "`{name}` is a HashMap/HashSet and {how} observes its unspecified iteration order; \
             sort the items (or collect into a BTree map/set) before consuming them"
        )
    };

    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !is_hash_at(name, i) {
            continue;
        }
        // Chain form: `name.iter()`, `self.name.values_mut()`, …
        let chain = tokens.get(i + 1).is_some_and(|x| x.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|x| x.ident().is_some_and(|m| ITER_METHODS.contains(&m)))
            && tokens.get(i + 3).is_some_and(|x| x.is_punct('('));
        if chain {
            if !iteration_is_ordered(tokens, i) {
                let method = tokens[i + 2].ident().unwrap_or_default();
                diags.push(diag(
                    "D2",
                    t.line,
                    rationale(name, &format!("`.{method}()`")),
                ));
            }
            continue;
        }
        // Bare for-loop form: `for x in &name {` / `for x in name {`.
        if in_bare_for_loop(tokens, i) {
            diags.push(diag("D2", t.line, rationale(name, "`for … in`")));
        }
    }
}

/// One `name`-to-type fact, at the token index where `name` appears.
/// `hash: false` bindings record that the name was (re)bound to a
/// non-hash type, shadowing any earlier hash binding for later uses.
struct Binding {
    name: String,
    tok: usize,
    hash: bool,
}

/// Collects identifier bindings relevant to D2, in token order: typed
/// bindings/fields/params (`name: HashMap<…>`) and constructor bindings
/// (`name = HashMap::new()`).
fn collect_hash_bindings(tokens: &[Token]) -> Vec<Binding> {
    let mut out: Vec<Binding> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if name == "HashMap" || name == "HashSet" {
            continue;
        }
        let Some(next) = tokens.get(i + 1) else {
            continue;
        };
        // `name : HashMap<…>` — the *outermost* type must be the hash
        // collection (a `Vec<HashMap<…>>` is iterated in Vec order and is
        // fine). Skip reference/lifetime/mut prefixes and path segments.
        if next.is_punct(':') && !tokens.get(i + 2).is_some_and(|x| x.is_punct(':')) {
            let mut k = i + 2;
            loop {
                match tokens.get(k).map(|t| &t.kind) {
                    Some(TokenKind::Punct('&')) | Some(TokenKind::Lifetime) => k += 1,
                    Some(TokenKind::Ident(s)) if s == "mut" || s == "dyn" => k += 1,
                    Some(TokenKind::Ident(_))
                        if tokens.get(k + 1).is_some_and(|x| x.is_punct(':'))
                            && tokens.get(k + 2).is_some_and(|x| x.is_punct(':')) =>
                    {
                        // Path segment (`std::collections::…`): keep going.
                        k += 3;
                    }
                    Some(TokenKind::Ident(s)) => {
                        out.push(Binding {
                            name: name.to_string(),
                            tok: i,
                            hash: s == "HashMap" || s == "HashSet",
                        });
                        break;
                    }
                    _ => break,
                }
            }
        }
        // `name = [path::]HashMap::new(…)` — the initializer must *be* a
        // hash-collection constructor call, not merely contain one nested
        // somewhere (`Vec` of maps, closure bodies, …).
        if next.is_punct('=')
            && !tokens.get(i + 2).is_some_and(|x| x.is_punct('='))
            && !tokens.get(i.wrapping_sub(1)).is_some_and(|x| {
                x.is_punct('=') || x.is_punct('<') || x.is_punct('>') || x.is_punct('!')
            })
        {
            let mut k = i + 2;
            loop {
                match tokens.get(k).map(|t| &t.kind) {
                    Some(TokenKind::Ident(s)) if s == "HashMap" || s == "HashSet" => {
                        if tokens.get(k + 1).is_some_and(|x| x.is_punct(':')) {
                            out.push(Binding {
                                name: name.to_string(),
                                tok: i,
                                hash: true,
                            });
                        }
                        break;
                    }
                    Some(TokenKind::Ident(_))
                        if tokens.get(k + 1).is_some_and(|x| x.is_punct(':'))
                            && tokens.get(k + 2).is_some_and(|x| x.is_punct(':')) =>
                    {
                        k += 3;
                    }
                    _ => break,
                }
            }
        }
    }
    out
}

/// True when the hash iteration starting at token `i` (the collection
/// identifier) is made order-stable: the surrounding statement sorts,
/// collects into a BTree, or only computes order-insensitive aggregates —
/// or the statement `let`-binds a value that one of the next few
/// statements sorts.
fn iteration_is_ordered(tokens: &[Token], i: usize) -> bool {
    // Backward to the statement start (`;`, `{`, `}` boundary).
    let mut start = i;
    while start > 0 {
        let t = &tokens[start - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        start -= 1;
    }
    // Forward to the statement end: `;` or `{` at relative depth 0.
    let mut end = i;
    let mut depth = 0i32;
    while end < tokens.len() {
        let t = &tokens[end];
        match t.kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct(';') if depth <= 0 => break,
            TokenKind::Punct('{') if depth <= 0 => break,
            _ => {}
        }
        end += 1;
    }

    let stmt = &tokens[start..end];
    let has = |names: &[&str]| {
        stmt.iter()
            .any(|t| t.ident().is_some_and(|s| names.contains(&s)))
    };
    if has(SORT_METHODS) || has(&["BTreeMap", "BTreeSet"]) || has(ORDER_INSENSITIVE) {
        return true;
    }

    // `let [mut] NAME = …collect…;` followed within three statements by
    // `NAME.sort*(…)` — the repo's canonical collect-then-sort idiom.
    let mut it = stmt.iter();
    if !it.next().is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut name = it.next().and_then(|t| t.ident());
    if name == Some("mut") {
        name = it.next().and_then(|t| t.ident());
    }
    let Some(name) = name else { return false };

    let mut stmts_seen = 0;
    let mut depth = 0i32;
    let mut j = end;
    while j + 2 < tokens.len() && stmts_seen < 4 {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => depth -= 1,
            TokenKind::Punct(';') if depth <= 0 => stmts_seen += 1,
            _ => {}
        }
        if t.is_ident(name)
            && tokens[j + 1].is_punct('.')
            && tokens[j + 2]
                .ident()
                .is_some_and(|m| SORT_METHODS.contains(&m))
        {
            return true;
        }
        j += 1;
    }
    false
}

/// True when token `i` (a hash-collection identifier) is the bare iterated
/// expression of a `for` loop: `for PAT in [&][mut][self.]name {`.
fn in_bare_for_loop(tokens: &[Token], i: usize) -> bool {
    // The token after the collection must open the loop body (possibly
    // after a closing `)` for tuple patterns — not applicable here since
    // the collection ends the expression).
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct('{')) {
        return false;
    }
    // Walk backward over `&`, `mut`, `self`, `.` to find `in` then `for`.
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        let passable =
            t.is_punct('&') || t.is_punct('.') || t.is_ident("mut") || t.is_ident("self");
        if passable {
            j -= 1;
            continue;
        }
        return t.is_ident("in") && {
            // Something before `in` must eventually be `for`; scan back a
            // bounded window over the pattern.
            tokens[..j - 1]
                .iter()
                .rev()
                .take(16)
                .any(|t| t.is_ident("for"))
        };
    }
    false
}

/// D3: direct `SeedableRng` construction outside `geo_model::rng`.
fn check_d3(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    for t in tokens {
        let Some(name) = t.ident() else { continue };
        if matches!(
            name,
            "seed_from_u64" | "from_seed" | "from_rng" | "SeedableRng"
        ) {
            diags.push(diag(
                "D3",
                t.line,
                format!(
                    "`{name}` constructs an RNG directly; route seeding through \
                     `geo_model::rng` (`Seed::rng()` / `KeyRng::new`) so streams stay \
                     domain-separated"
                ),
            ));
        }
    }
}

/// R1: panicking calls in server/request paths.
fn check_r1(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        match name {
            "unwrap" | "expect" => {
                let method_call = i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|x| x.is_punct('('));
                if method_call {
                    diags.push(diag(
                        "R1",
                        t.line,
                        format!(
                            "`.{name}()` can panic and take the whole server down; handle the \
                             error (log-and-continue, or recover the poisoned lock)"
                        ),
                    ));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|x| x.is_punct('!')) =>
            {
                diags.push(diag(
                        "R1",
                        t.line,
                        format!("`{name}!` in a serving path kills the connection thread or process; return an error instead"),
                    ));
            }
            _ => {}
        }
    }
}

/// R4: blocking concurrency primitives in a serving path.
///
/// geo-serve answers queries from a fixed worker pool driving a
/// readiness event loop; `thread::spawn` reintroduces per-connection
/// threads, and blocking socket reads (`.read_line()`, `.read_exact()`)
/// park a worker on bytes that may never arrive, starving every other
/// connection on its poller. The one legitimate spawn site — building
/// the pool itself — is marked `// geo-lint: worker-bootstrap` directly
/// above the function, which exempts that function's body.
fn check_r4(lexed: &FileLex, code: &[Token], diags: &mut Vec<Diagnostic>) {
    let exempt = bootstrap_ranges(lexed, code);
    let exempted = |i: usize| exempt.iter().any(|r| r.contains(&i));
    for (i, t) in code.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        match name {
            "spawn" => {
                // The path form `thread::spawn` / `std::thread::spawn`.
                // Method-call `.spawn(...)` is `thread::Builder` or a
                // scoped spawn, which the bootstrap fn also uses — the
                // path check keeps those callable behind the marker.
                let path_call = i >= 3
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && code[i - 3].is_ident("thread");
                if path_call && !exempted(i) {
                    diags.push(diag(
                        "R4",
                        t.line,
                        "`thread::spawn` in a serving path brings back per-connection \
                         threads; serve from the fixed worker pool (the only spawn site \
                         is the `// geo-lint: worker-bootstrap` function)"
                            .into(),
                    ));
                }
            }
            "read_line" | "read_exact" => {
                let method_call = i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|x| x.is_punct('('));
                if method_call && !exempted(i) {
                    diags.push(diag(
                        "R4",
                        t.line,
                        format!(
                            "`.{name}()` blocks a pool worker on bytes that may never \
                             arrive, starving every connection on its poller; read \
                             nonblocking chunks and let the event loop schedule readiness"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Token-index ranges (into `code`) of function bodies marked
/// `// geo-lint: worker-bootstrap`. Marker resolution mirrors the P1
/// hot-path marker: the first `fn` within a few lines below the comment
/// owns it; its balanced `{ … }` body is the exempt range.
fn bootstrap_ranges(lexed: &FileLex, code: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    for c in &lexed.comments {
        let anchored = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(body) = anchored.strip_prefix("geo-lint:") else {
            continue;
        };
        if body.trim() != "worker-bootstrap" {
            continue;
        }
        let Some(fn_tok) = code
            .iter()
            .position(|t| t.line > c.line && t.is_ident("fn"))
        else {
            continue;
        };
        if code[fn_tok].line > c.line + 8 {
            continue;
        }
        let Some(open) = (fn_tok..code.len()).find(|&k| code[k].is_punct('{')) else {
            continue;
        };
        let mut depth = 0i32;
        let mut end = open;
        while end < code.len() {
            if code[end].is_punct('{') {
                depth += 1;
            } else if code[end].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        ranges.push(open..end.min(code.len()));
    }
    ranges
}

/// Methods through which a read loop accumulates bytes into a buffer.
const GROW_METHODS: &[&str] = &["push", "extend", "extend_from_slice", "append", "push_str"];

/// Substrings that mark an identifier as a size budget. Matched
/// case-insensitively, so `MAX_INBUF`, `ReplyBudget` and `line_limit`
/// all count as bounds.
const BUDGET_MARKERS: &[&str] = &["max", "budget", "limit", "bound"];

/// True when any identifier in `body` names a budget (see
/// [`BUDGET_MARKERS`]).
fn mentions_budget(body: &[Token]) -> bool {
    body.iter().any(|t| {
        t.ident().is_some_and(|s| {
            let lower = s.to_ascii_lowercase();
            BUDGET_MARKERS.iter().any(|m| lower.contains(m))
        })
    })
}

/// R5: unbounded buffer growth in a serving path.
///
/// A server that buffers client bytes without a ceiling hands every
/// client a memory-exhaustion lever: `read_to_end`/`read_to_string`
/// wait for an EOF a hostile client never sends, and a chunked read
/// loop that only ever `extend`s its buffer grows without limit under
/// a slow drip that never completes a frame. The fix is a byte budget
/// (`proto::MAX_BODY`-style) compared inside the loop, with a typed
/// eviction when it trips — which is exactly what the rule looks for:
/// a loop containing both a `.read(…)` and a growth call is flagged
/// unless some identifier in the loop names a max/budget/limit/bound.
fn check_r5(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    // Whole-stream slurps are unbounded by construction.
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if matches!(name, "read_to_end" | "read_to_string")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            diags.push(diag(
                "R5",
                t.line,
                format!(
                    "`.{name}()` buffers until EOF with no size ceiling; a client that \
                     never closes its half of the socket exhausts memory — read bounded \
                     chunks against a byte budget and evict with a typed error"
                ),
            ));
        }
    }

    // Read loops that grow a buffer without ever consulting a budget.
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if !(t.is_ident("loop") || t.is_ident("while") || t.is_ident("for")) {
            i += 1;
            continue;
        }
        // The body opens at the first `{` outside the loop-head's
        // parens/brackets (closure bodies in the head are rare enough
        // that the paren guard covers the real cases).
        let mut depth = 0i32;
        let mut open = None;
        for (k, tok) in tokens.iter().enumerate().skip(i + 1) {
            match tok.kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth -= 1,
                TokenKind::Punct('{') if depth <= 0 => {
                    open = Some(k);
                    break;
                }
                TokenKind::Punct(';') if depth <= 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let mut brace = 0i32;
        let mut end = open;
        while end < tokens.len() {
            if tokens[end].is_punct('{') {
                brace += 1;
            } else if tokens[end].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            end += 1;
        }
        // Include the loop head: `while buf.len() < max && …` bounds the
        // loop just as well as a check inside the body.
        let scope = &tokens[i..end.min(tokens.len())];
        let method_call = |name: &str| {
            scope.iter().enumerate().any(|(k, tok)| {
                tok.is_ident(name)
                    && k > 0
                    && scope[k - 1].is_punct('.')
                    && scope.get(k + 1).is_some_and(|x| x.is_punct('('))
            })
        };
        let reads = method_call("read");
        let grows = GROW_METHODS.iter().any(|m| method_call(m));
        if reads && grows && !mentions_budget(scope) {
            diags.push(diag(
                "R5",
                t.line,
                "unbounded buffer growth: this loop reads from a stream and grows a \
                 buffer without comparing against a byte budget; a slow-drip client \
                 that never completes a frame exhausts memory — cap the buffer \
                 (`proto::MAX_BODY`-style) and evict the connection when it trips"
                    .into(),
            ));
        }
        // Advance one token only, so nested loops are still inspected.
        i += 1;
    }
}

/// Identifiers that signal a retry loop bounds its own attempts: a counter
/// compared or incremented inside the loop, or a budget being drawn down.
const ATTEMPT_MARKERS: &[&str] = &[
    "attempt",
    "attempts",
    "max_attempts",
    "tries",
    "retries",
    "budget",
    "remaining",
];

/// R3: a `loop { … }` / `while true { … }` whose body handles retryable
/// platform errors (`PlatformError`, `is_retryable`) without any bounded
/// attempt accounting. Under fault injection such a loop can spin forever
/// on a fault the plan keeps returning.
fn check_r3(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let open = if t.is_ident("loop") && tokens.get(i + 1).is_some_and(|x| x.is_punct('{')) {
            Some(i + 1)
        } else if t.is_ident("while")
            && tokens.get(i + 1).is_some_and(|x| x.is_ident("true"))
            && tokens.get(i + 2).is_some_and(|x| x.is_punct('{'))
        {
            Some(i + 2)
        } else {
            None
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        // The loop's balanced body.
        let mut depth = 0i32;
        let mut j = open;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let body = &tokens[open..j.min(tokens.len())];
        let retryable = body.iter().any(|t| {
            t.ident()
                .is_some_and(|s| s == "PlatformError" || s == "is_retryable")
        });
        let bounded = body
            .iter()
            .any(|t| t.ident().is_some_and(|s| ATTEMPT_MARKERS.contains(&s)));
        if retryable && !bounded {
            diags.push(diag(
                "R3",
                t.line,
                "unbounded retry loop: it matches retryable `PlatformError`s but never \
                 counts attempts; bound it with an attempt counter or budget (see \
                 `ipgeo::resilient::RetryPolicy`)"
                    .into(),
            ));
        }
        // Advance one token only, so nested loops are still inspected.
        i += 1;
    }
}

/// R2: mutable statics and hand-asserted thread-safety.
fn check_r2(tokens: &[Token], diags: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("static") && tokens.get(i + 1).is_some_and(|x| x.is_ident("mut")) {
            diags.push(diag(
                "R2",
                t.line,
                "`static mut` is unsynchronized shared mutable state; use an atomic, a \
                 `Mutex`, or `OnceLock`"
                    .into(),
            ));
        }
        if t.is_ident("unsafe") && tokens.get(i + 1).is_some_and(|x| x.is_ident("impl")) {
            diags.push(diag(
                "R2",
                t.line,
                "`unsafe impl` hand-asserts a thread-safety contract the compiler cannot \
                 check; prefer types that are `Send`/`Sync` by construction"
                    .into(),
            ));
        }
    }
}

/// Types whose associated constructors allocate (P1): `Vec::new(…)`,
/// `String::with_capacity(…)`, … Bare mentions in type position are fine.
const ALLOC_CTOR_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// The allocating associated functions on those types.
const ALLOC_CTOR_FNS: &[&str] = &["new", "with_capacity", "from", "default"];

/// Chained methods that allocate their result.
const ALLOC_CHAIN_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// P1: heap allocation inside a function marked `// geo-lint: hot-path`.
///
/// The marker is a standalone comment directly above the function
/// (attributes between marker and `fn` are fine). Hot-path functions run
/// per simulated packet or per route link; a `Vec`/`String` allocation
/// there turns an O(1) step into allocator traffic that dominates the
/// campaign profile. Flagged constructs: allocating constructors
/// (`Vec::new`, `String::with_capacity`, …), `vec!`/`format!`, and
/// allocating chain methods (`.collect()`, `.to_vec()`, …).
fn check_p1(lexed: &FileLex, code: &[Token], diags: &mut Vec<Diagnostic>) {
    for c in &lexed.comments {
        let anchored = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(body) = anchored.strip_prefix("geo-lint:") else {
            continue;
        };
        if body.trim() != "hot-path" {
            continue;
        }
        // The marked function: the first `fn` shortly after the marker
        // (bounded so a detached marker cannot adopt an unrelated
        // function further down the file).
        let Some(fn_tok) = code
            .iter()
            .position(|t| t.line > c.line && t.is_ident("fn"))
        else {
            continue;
        };
        if code[fn_tok].line > c.line + 8 {
            continue;
        }
        // Balanced `{ … }` body after the signature.
        let Some(open) = (fn_tok..code.len()).find(|&k| code[k].is_punct('{')) else {
            continue;
        };
        let mut depth = 0i32;
        let mut end = open;
        while end < code.len() {
            if code[end].is_punct('{') {
                depth += 1;
            } else if code[end].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        scan_hot_body(&code[open..end.min(code.len())], diags);
    }
}

/// Scans one hot-path function body for allocating constructs.
fn scan_hot_body(body: &[Token], diags: &mut Vec<Diagnostic>) {
    let p1 = |what: &str, line: usize, diags: &mut Vec<Diagnostic>| {
        diags.push(diag(
            "P1",
            line,
            format!(
                "`{what}` heap-allocates inside a `// geo-lint: hot-path` function; \
                 hoist the buffer to the caller or use a fixed-size scratch"
            ),
        ));
    };
    for (i, t) in body.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        // `Vec::new(…)` and friends.
        if ALLOC_CTOR_TYPES.contains(&name)
            && body.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && body.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && body
                .get(i + 3)
                .is_some_and(|x| x.ident().is_some_and(|m| ALLOC_CTOR_FNS.contains(&m)))
            && body.get(i + 4).is_some_and(|x| x.is_punct('('))
        {
            let m = body[i + 3].ident().unwrap_or_default();
            p1(&format!("{name}::{m}"), t.line, diags);
            continue;
        }
        // `vec![…]` / `format!(…)`.
        if ALLOC_MACROS.contains(&name) && body.get(i + 1).is_some_and(|x| x.is_punct('!')) {
            p1(&format!("{name}!"), t.line, diags);
            continue;
        }
        // `.collect()`, `.to_vec()`, …
        if ALLOC_CHAIN_METHODS.contains(&name)
            && i > 0
            && body[i - 1].is_punct('.')
            && body.get(i + 1).is_some_and(|x| x.is_punct('('))
        {
            p1(&format!(".{name}()"), t.line, diags);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cfg: &Config, rel: &str, src: &str) -> Report {
        let mut report = Report::default();
        lint_file(cfg, rel, src, &mut report);
        report.sort();
        report
    }

    fn det(src: &str) -> Report {
        run(&Config::workspace(), "crates/core/src/lib.rs", src)
    }

    #[test]
    fn d1_fires_on_instant_now_in_deterministic_crate() {
        let r = det("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "D1");
        assert_eq!(r.diagnostics[0].line, 1);
    }

    #[test]
    fn d1_ignores_instant_elsewhere_and_outside_scope() {
        // `Instant` without `::now` (e.g. a stored field type) is fine.
        assert!(det("struct S { t: Instant }").is_clean());
        // The same code in a non-deterministic crate is fine.
        let r = run(
            &Config::workspace(),
            "crates/bench/src/lib.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn d1_skips_cfg_test_modules() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n  fn f() { let t = Instant::now(); }\n}";
        assert!(det(src).is_clean());
    }

    #[test]
    fn d2_fires_on_unsorted_hash_iteration() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {\n  for v in m.values() { drop(v); }\n}";
        let r = det(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "D2");
        assert_eq!(r.diagnostics[0].line, 3);
    }

    #[test]
    fn d2_fires_on_bare_for_loop_over_hash() {
        let src = "use std::collections::HashSet;\nfn f(s: HashSet<u32>) {\n  for v in &s { drop(v); }\n}";
        let r = det(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "D2");
    }

    #[test]
    fn d2_allows_collect_then_sort() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n  let mut v: Vec<u32> = m.keys().copied().collect();\n  v.sort();\n  v\n}";
        assert!(det(src).is_clean(), "{:?}", det(src).diagnostics);
    }

    #[test]
    fn d2_allows_same_statement_sort_and_btree_collect() {
        let sorted = "fn f(m: &std::collections::HashMap<u32, u32>) {\n  let mut v: Vec<_> = m.keys().collect(); v.sort_unstable();\n}";
        assert!(det(sorted).is_clean(), "{:?}", det(sorted).diagnostics);
        let btree = "fn f(m: &std::collections::HashMap<u32, u32>) {\n  let b: std::collections::BTreeMap<_, _> = m.iter().collect();\n  for x in &b { drop(x); }\n}";
        assert!(det(btree).is_clean(), "{:?}", det(btree).diagnostics);
    }

    #[test]
    fn d2_allows_order_insensitive_aggregates() {
        let src =
            "fn f(m: &std::collections::HashMap<u32, u32>) -> usize {\n  m.values().count()\n}";
        assert!(det(src).is_clean(), "{:?}", det(src).diagnostics);
    }

    #[test]
    fn d2_tracks_constructor_bindings() {
        let src = "fn f() {\n  let mut m = std::collections::HashMap::new();\n  m.insert(1, 2);\n  for v in m.values() { drop(v); }\n}";
        let r = det(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 4);
    }

    #[test]
    fn d2_ignores_lookups_and_inserts() {
        let src = "fn f(m: &mut std::collections::HashMap<u32, u32>) {\n  m.insert(1, 2);\n  let _ = m.get(&1);\n  let _ = m.len();\n}";
        assert!(det(src).is_clean(), "{:?}", det(src).diagnostics);
    }

    #[test]
    fn d3_fires_on_direct_seeding_but_not_in_rng_module() {
        let src = "fn f() { let r = StdRng::seed_from_u64(1); }";
        let r = det(src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "D3");
        let rng = run(&Config::workspace(), "crates/geo-model/src/rng.rs", src);
        assert!(rng.is_clean());
    }

    #[test]
    fn r1_fires_in_server_crate_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "R1");
        assert!(run(&Config::workspace(), "crates/core/src/lib.rs", src).is_clean());
    }

    #[test]
    fn r1_fires_on_panic_macros_not_assert() {
        let src = "fn f() { assert!(true); panic!(\"boom\"); }";
        let r = run(&Config::workspace(), "crates/geo-serve/src/lib.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].rationale.contains("panic"));
    }

    #[test]
    fn r1_ignores_unwrap_or_else() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }";
        assert!(run(&Config::workspace(), "crates/geo-serve/src/lib.rs", src).is_clean());
    }

    #[test]
    fn r4_fires_on_spawn_and_blocking_reads_in_server_crate_only() {
        let src = "fn f(s: &mut TcpStream) {\n  std::thread::spawn(|| {});\n  let mut b = [0u8; 8];\n  s.read_exact(&mut b).ok();\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 2, "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().all(|d| d.rule == "R4"));
        assert_eq!(r.diagnostics[0].line, 2);
        assert_eq!(r.diagnostics[1].line, 4);
        // The same code outside geo-serve is out of scope.
        assert!(run(&Config::workspace(), "crates/core/src/lib.rs", src).is_clean());
    }

    #[test]
    fn r4_fires_on_read_line() {
        let src = "fn f(r: &mut BufReader<TcpStream>) {\n  let mut line = String::new();\n  r.read_line(&mut line).ok();\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R4");
        assert!(r.diagnostics[0].rationale.contains("read_line"));
    }

    #[test]
    fn r4_exempts_the_worker_bootstrap_function_body() {
        let src = "// geo-lint: worker-bootstrap\nfn spawn_pool(n: usize) {\n  for _ in 0..n {\n    std::thread::spawn(|| {});\n  }\n}\nfn elsewhere() {\n  std::thread::spawn(|| {});\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R4");
        assert_eq!(r.diagnostics[0].line, 8);
    }

    #[test]
    fn r4_marker_must_sit_directly_above_a_fn() {
        // A detached marker exempts nothing (and is not an X1 either —
        // it is a known marker, just inert).
        let src = "// geo-lint: worker-bootstrap\nconst N: usize = 4;\n\n\n\n\n\n\n\n\nfn f() { std::thread::spawn(|| {}); }";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R4");
    }

    #[test]
    fn r4_ignores_identifiers_that_merely_resemble_the_calls() {
        // A `spawn` that is not `thread::spawn`, and `read_exact` as a
        // bare name rather than a method call.
        let src = "fn f(scope: &Scope) {\n  scope.spawn(|| {});\n  let read_exact = 1;\n  drop(read_exact);\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn r4_allow_directive_suppresses_with_reason() {
        let src = "fn f(s: &mut TcpStream) {\n  let mut b = [0u8; 8];\n  // geo-lint: allow(R4, reason = \"one-shot client, not the serving path\")\n  s.read_exact(&mut b).ok();\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, "R4");
    }

    #[test]
    fn r5_fires_on_read_to_end_in_server_crate_only() {
        let src = "fn f(s: &mut TcpStream) -> Vec<u8> {\n  let mut b = Vec::new();\n  s.read_to_end(&mut b).ok();\n  b\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R5");
        assert_eq!(r.diagnostics[0].line, 3);
        assert!(r.diagnostics[0].rationale.contains("read_to_end"));
        // The same code outside geo-serve is out of scope.
        assert!(run(&Config::workspace(), "crates/core/src/lib.rs", src).is_clean());
    }

    #[test]
    fn r5_fires_on_a_budget_less_read_loop() {
        let src = "fn f(s: &mut TcpStream, buf: &mut Vec<u8>) {\n  let mut chunk = [0u8; 4096];\n  loop {\n    let n = match s.read(&mut chunk) { Ok(0) | Err(_) => break, Ok(n) => n };\n    buf.extend_from_slice(&chunk[..n]);\n  }\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R5");
        assert_eq!(r.diagnostics[0].line, 3);
    }

    #[test]
    fn r5_accepts_a_loop_that_checks_a_budget() {
        // `MAX_INBUF` (case-insensitive `max`) marks the loop as bounded;
        // so would `budget`, `limit` or `bound` in any identifier.
        let src = "fn f(s: &mut TcpStream, buf: &mut Vec<u8>) {\n  let mut chunk = [0u8; 4096];\n  loop {\n    let n = match s.read(&mut chunk) { Ok(0) | Err(_) => break, Ok(n) => n };\n    if buf.len() + n > MAX_INBUF { break; }\n    buf.extend_from_slice(&chunk[..n]);\n  }\n}";
        assert!(run(&Config::workspace(), "crates/geo-serve/src/server.rs", src).is_clean());
        // A bound in the `while` head counts too.
        let head = "fn f(s: &mut TcpStream, buf: &mut Vec<u8>) {\n  let mut chunk = [0u8; 64];\n  while buf.len() < line_limit {\n    let n = match s.read(&mut chunk) { Ok(0) | Err(_) => break, Ok(n) => n };\n    buf.extend_from_slice(&chunk[..n]);\n  }\n}";
        assert!(run(&Config::workspace(), "crates/geo-serve/src/server.rs", head).is_clean());
    }

    #[test]
    fn r5_ignores_loops_that_do_not_both_read_and_grow() {
        // Growth without a read (building a reply) is fine...
        let grow_only =
            "fn f(out: &mut Vec<u8>, xs: &[u8]) {\n  for x in xs {\n    out.push(*x);\n  }\n}";
        assert!(run(
            &Config::workspace(),
            "crates/geo-serve/src/server.rs",
            grow_only
        )
        .is_clean());
        // ...and so is a read into a fixed scratch that is never kept.
        let read_only = "fn f(s: &mut TcpStream) {\n  let mut chunk = [0u8; 64];\n  loop {\n    if s.read(&mut chunk).is_err() { break; }\n  }\n}";
        assert!(run(
            &Config::workspace(),
            "crates/geo-serve/src/server.rs",
            read_only
        )
        .is_clean());
    }

    #[test]
    fn r5_allow_directive_suppresses_with_reason() {
        let src = "fn f(s: &mut TcpStream) -> Vec<u8> {\n  let mut b = Vec::new();\n  // geo-lint: allow(R5, reason = \"one-shot admin dump, bounded by the peer\")\n  s.read_to_end(&mut b).ok();\n  b\n}";
        let r = run(&Config::workspace(), "crates/geo-serve/src/server.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, "R5");
    }

    #[test]
    fn r2_fires_everywhere() {
        let src = "static mut COUNTER: u32 = 0;";
        let r = run(&Config::workspace(), "crates/bench/src/lib.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "R2");
    }

    #[test]
    fn r3_fires_on_unbounded_retry_loops_in_retry_crates_only() {
        let src = "fn f() {\n  loop {\n    match ping() {\n      Err(PlatformError::ServerError) => continue,\n      _ => break,\n    }\n  }\n}";
        let r = det(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R3");
        assert_eq!(r.diagnostics[0].line, 2);
        // atlas-sim is in scope too; bench is not.
        let atlas = run(
            &Config::workspace(),
            "crates/atlas-sim/src/platform.rs",
            src,
        );
        assert_eq!(atlas.diagnostics.len(), 1, "{:?}", atlas.diagnostics);
        assert!(run(&Config::workspace(), "crates/bench/src/lib.rs", src).is_clean());
    }

    #[test]
    fn r3_fires_on_while_true_retry() {
        let src = "fn f(e: &PlatformError) {\n  while true {\n    if e.is_retryable() { continue; }\n    break;\n  }\n}";
        let r = det(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "R3");
    }

    #[test]
    fn r3_allows_attempt_bounded_loops_and_fault_free_loops() {
        let bounded = "fn f() {\n  let mut attempt = 0;\n  loop {\n    attempt += 1;\n    if attempt >= 4 { break; }\n    match ping() {\n      Err(e) if e.is_retryable() => continue,\n      _ => break,\n    }\n  }\n}";
        assert!(det(bounded).is_clean(), "{:?}", det(bounded).diagnostics);
        // A loop with no retryable error handling is not a retry loop.
        let plain = "fn f() { loop { if done() { break; } } }";
        assert!(det(plain).is_clean(), "{:?}", det(plain).diagnostics);
    }

    fn hot(src: &str) -> Report {
        run(&Config::workspace(), "crates/net-sim/src/hotpath.rs", src)
    }

    #[test]
    fn p1_fires_on_allocation_in_marked_function() {
        let src = "// geo-lint: hot-path\nfn f(xs: &[u32]) -> Vec<u32> {\n  xs.iter().map(|x| x * 2).collect()\n}";
        let r = hot(src);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "P1");
        assert_eq!(r.diagnostics[0].line, 3);
        let ctor = "// geo-lint: hot-path\n#[inline]\nfn f() -> usize { let v = Vec::with_capacity(4); v.len() }";
        let r = hot(ctor);
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].rationale.contains("Vec::with_capacity"));
        let mac = "// geo-lint: hot-path\nfn f(x: u32) -> usize { format!(\"{x}\").len() }";
        assert_eq!(hot(mac).diagnostics.len(), 1, "{:?}", hot(mac).diagnostics);
    }

    #[test]
    fn p1_ignores_unmarked_functions_and_out_of_scope_crates() {
        // Allocation without a marker is fine (types in signatures too).
        let unmarked = "fn f(out: &mut Vec<u32>) { out.push(1); }\nfn g() -> Vec<u8> { vec![0] }";
        assert!(hot(unmarked).is_clean(), "{:?}", hot(unmarked).diagnostics);
        // A marked clean function is fine.
        let clean = "// geo-lint: hot-path\nfn f(xs: &[f64]) -> f64 { xs.iter().sum() }";
        assert!(hot(clean).is_clean(), "{:?}", hot(clean).diagnostics);
        // Markers outside hot-path crates are inert documentation.
        let src = "// geo-lint: hot-path\nfn f() -> Vec<u8> { vec![0] }";
        let r = run(&Config::workspace(), "crates/core/src/lib.rs", src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn hot_path_marker_is_not_a_malformed_directive() {
        let r = hot("// geo-lint: hot-path\nfn f() -> u32 { 1 }");
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        // A detached marker (no function within reach) stays inert.
        let detached = "// geo-lint: hot-path\nconst X: u32 = 1;";
        assert!(hot(detached).is_clean(), "{:?}", hot(detached).diagnostics);
    }

    #[test]
    fn p1_can_be_allowed_with_reason() {
        let src = "// geo-lint: hot-path\nfn f() -> usize {\n  // geo-lint: allow(P1, reason = \"cold fallback\")\n  String::new().len()\n}";
        let r = hot(src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, "P1");
    }

    #[test]
    fn allow_suppresses_exactly_its_rule_on_its_line() {
        let src = "fn f() { let t = Instant::now(); } // geo-lint: allow(D1, reason = \"demo\")";
        let r = det(src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, "D1");
        assert_eq!(r.suppressed[0].reason, "demo");
        // An allow for a different rule does not suppress D1 and is stale.
        let wrong = "fn f() { let t = Instant::now(); } // geo-lint: allow(D3, reason = \"demo\")";
        let r = det(wrong);
        let rules: Vec<&str> = r.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(rules, vec!["D1", "X2"], "{:?}", r.diagnostics);
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// geo-lint: allow(D1, reason = \"demo\")\nfn f() { let t = Instant::now(); }";
        let r = det(src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].line, 2);
    }

    #[test]
    fn reason_may_contain_parens_and_commas() {
        let src = "fn f() { let t = Instant::now(); } \
                   // geo-lint: allow(D1, reason = \"bench probe (see bench.rs), uses len()\")";
        let r = det(src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(
            r.suppressed[0].reason,
            "bench probe (see bench.rs), uses len()"
        );
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_errors() {
        let r = det("fn f() {} // geo-lint: allow(Z9, reason = \"x\")");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "X1");
        assert!(r.diagnostics[0].rationale.contains("Z9"));
        let r = det("fn f() {} // geo-lint: allow(D1)");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, "X1");
        assert!(r.diagnostics[0].rationale.contains("reason"));
    }

    #[test]
    fn stale_allow_is_reported() {
        let r = det("fn f() {} // geo-lint: allow(D1, reason = \"nothing here\")");
        assert_eq!(r.diagnostics.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].rule, "X2");
    }

    #[test]
    fn meta_rules_cannot_be_allowed() {
        let r = det("fn f() {} // geo-lint: allow(X2, reason = \"no\")");
        assert_eq!(r.diagnostics[0].rule, "X1");
    }
}
