//! Workspace file discovery.
//!
//! Finds every `.rs` file the linter should scan under a root directory:
//! each crate's `src/`, `tests/`, `examples/`, and `benches/` plus the
//! workspace-level `tests/` and `examples/` trees. Vendored stand-in
//! crates and build output are skipped. Results are sorted so reports are
//! byte-stable across filesystems.

use crate::rules::Config;
use std::path::{Path, PathBuf};

/// Collects root-relative (`/`-separated) paths of all files to lint.
pub fn discover(root: &Path, cfg: &Config) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !entry.path().is_dir() || cfg.vendored_crates.iter().any(|v| v == &name) {
                continue;
            }
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs(&entry.path().join(sub), root, &mut files)?;
            }
        }
    }
    for sub in ["tests", "examples"] {
        collect_rs(&root.join(sub), root, &mut files)?;
    }

    files.sort();
    files.dedup();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (if it exists) as
/// root-relative paths.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut stack: Vec<PathBuf> = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                // `fixtures` trees hold deliberately-violating lint-test
                // inputs; they are data, not workspace source.
                if path
                    .file_name()
                    .is_some_and(|n| n == "target" || n == "fixtures")
                {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}
