//! `geo-lint`: the workspace determinism & robustness auditor.
//!
//! Everything this replication publishes rests on one claim: a campaign is
//! a pure function of `(seed, src, dst, nonce)`, so datasets and `.igds`
//! snapshots are byte-identical at any thread count. Equivalence tests
//! guard that invariant at a handful of points; this crate guards it
//! *statically*, across the whole workspace, by scanning every source file
//! for the constructs that historically break it:
//!
//! | rule | violation |
//! |------|-----------|
//! | `D1` | wall-clock / ambient entropy in deterministic crates |
//! | `D2` | iteration over `HashMap`/`HashSet` outside sort-then-iterate |
//! | `D3` | RNG construction bypassing `geo_model::rng` seeding |
//! | `R1` | `unwrap`/`expect`/`panic!` in `geo-serve` serving paths |
//! | `R2` | `static mut` / `unsafe impl` shared mutable state |
//! | `P1` | heap allocation inside a `// geo-lint: hot-path` function |
//! | `X1` | malformed or unknown `geo-lint: allow(...)` directive |
//! | `X2` | stale allow (suppresses nothing) |
//!
//! A violation is suppressed with an inline
//! `// geo-lint: allow(<rule>, reason = "...")` on the offending line (or
//! on its own line directly above); every suppression is recorded in the
//! report. The tool is dependency-free — a hand-rolled lexer, no registry
//! crates — and runs as `cargo run -p geo-lint -- check`.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use report::Report;
use rules::Config;
use std::path::Path;

/// Checks every discovered file under `root`, returning the sorted report.
pub fn check(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in walk::discover(root, cfg)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        rules::lint_file(cfg, &rel, &src, &mut report);
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real workspace must stay clean: this is the same gate CI runs,
    /// enforced from the tier-1 test suite so a violating change cannot
    /// land even when CI is skipped.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crate lives at <root>/crates/geo-lint");
        let report = check(root, &Config::workspace()).expect("workspace scan");
        assert!(report.files_scanned > 50, "suspiciously few files scanned");
        assert!(
            report.is_clean(),
            "geo-lint violations in the workspace:\n{}",
            report.render_human()
        );
    }
}
