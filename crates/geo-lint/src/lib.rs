//! `geo-lint`: the workspace determinism & robustness auditor.
//!
//! Everything this replication publishes rests on one claim: a campaign is
//! a pure function of `(seed, src, dst, nonce)`, so datasets and `.igds`
//! snapshots are byte-identical at any thread count. Equivalence tests
//! guard that invariant at a handful of points; this crate guards it
//! *statically*, across the whole workspace, by scanning every source file
//! for the constructs that historically break it:
//!
//! | rule | violation |
//! |------|-----------|
//! | `D1` | wall-clock / ambient entropy in deterministic crates |
//! | `D2` | iteration over `HashMap`/`HashSet` outside sort-then-iterate |
//! | `D3` | RNG construction bypassing `geo_model::rng` seeding |
//! | `R1` | `unwrap`/`expect`/`panic!` in `geo-serve` serving paths |
//! | `R2` | `static mut` / `unsafe impl` shared mutable state |
//! | `R5` | unbounded buffer growth (`read_to_end`, budget-less read loops) in serving paths |
//! | `P1` | heap allocation inside a `// geo-lint: hot-path` function |
//! | `X1` | malformed or unknown `geo-lint: allow(...)` directive |
//! | `X2` | stale allow (suppresses nothing, or allows an unchecked rule) |
//!
//! With `--call-graph` the per-file rules gain interprocedural siblings.
//! An item-level parser ([`parser`]) extracts every `fn` with its calls
//! and sinks, a best-effort resolver ([`callgraph`]) links them across
//! crates, and a reachability engine ([`reach`]) walks the graph:
//!
//! | rule  | violation |
//! |-------|-----------|
//! | `R1T` | panic/indexing reachable from a `// geo-lint: serve-entry` fn |
//! | `R4T` | blocking construct / lock-across-write reachable from serving |
//! | `D1T` | clock/entropy reachable from a deterministic crate |
//! | `P1T` | allocation in callees of `// geo-lint: hot-path` functions |
//! | `L1`  | lock-acquisition-order cycle between mutex classes |
//!
//! Every transitive finding carries its witness call chain, and calls the
//! resolver could not pin down are *reported* (never silently treated as
//! safe). A violation is suppressed with an inline
//! `// geo-lint: allow(<rule>, reason = "...")` on the offending line (or
//! on its own line directly above; for transitive rules, above the sink's
//! `fn` to scope the allow to the whole function); every suppression is
//! recorded in the report. The tool is dependency-free — a hand-rolled
//! lexer, no registry crates — and runs as `cargo run -p geo-lint -- check`.

pub(crate) mod callgraph;
pub mod lexer;
pub(crate) mod parser;
pub(crate) mod reach;
pub mod report;
pub mod rules;
pub mod walk;

use report::{GraphSummary, Report, UnresolvedCall};
use rules::Config;
use std::path::Path;

/// Knobs for a check run.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Build the workspace call graph and run the transitive rules.
    pub call_graph: bool,
    /// Analyze files in parallel (`geo_model::runtime::par_map_indexed`).
    /// Output is byte-identical to the serial pass either way.
    pub parallel: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            call_graph: false,
            parallel: true,
        }
    }
}

/// Checks every discovered file under `root`, returning the sorted report.
pub fn check(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    check_with(root, cfg, CheckOptions::default())
}

/// [`check`], with explicit options.
pub fn check_with(root: &Path, cfg: &Config, opts: CheckOptions) -> std::io::Result<Report> {
    let rels = walk::discover(root, cfg)?;
    let mut srcs: Vec<String> = Vec::with_capacity(rels.len());
    for rel in &rels {
        srcs.push(std::fs::read_to_string(root.join(rel))?);
    }

    // The per-file pass is pure, so the parallel map is safe and — because
    // `par_map_indexed` returns results in index order — byte-identical to
    // the serial loop.
    let analyses: Vec<rules::FileAnalysis> = if opts.parallel {
        geo_model::runtime::par_map_indexed(rels.len(), |i| {
            rules::analyze_file(cfg, &rels[i], &srcs[i])
        })
    } else {
        (0..rels.len())
            .map(|i| rules::analyze_file(cfg, &rels[i], &srcs[i]))
            .collect()
    };

    let mut report = Report::default();
    let mut transitive = Vec::new();
    if opts.call_graph {
        let idents = callgraph::crate_idents(root);
        let inputs: Vec<callgraph::FileInput<'_>> = analyses
            .iter()
            .map(|a| callgraph::FileInput {
                rel: &a.rel,
                parsed: &a.parsed,
            })
            .collect();
        let graph = callgraph::build(&inputs, &idents);
        let outcome = reach::analyze(cfg, &graph);
        transitive = outcome.findings;
        report.unresolved = outcome
            .unresolved
            .into_iter()
            .map(|u| UnresolvedCall {
                from: u.from_key,
                name: u.name,
                file: u.file,
                line: u.line,
                why: u.why,
            })
            .collect();
        report.graph = Some(GraphSummary {
            functions: outcome.functions,
            edges: outcome.edges,
            unresolved: outcome.unresolved_total,
        });
    }

    rules::merge(cfg, analyses, transitive, opts.call_graph, &mut report);
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crate lives at <root>/crates/geo-lint")
    }

    /// The real workspace must stay clean: this is the same gate CI runs,
    /// enforced from the tier-1 test suite so a violating change cannot
    /// land even when CI is skipped.
    #[test]
    fn workspace_is_clean() {
        let report = check(repo_root(), &Config::workspace()).expect("workspace scan");
        assert!(report.files_scanned > 50, "suspiciously few files scanned");
        assert!(
            report.is_clean(),
            "geo-lint violations in the workspace:\n{}",
            report.render_human()
        );
    }

    /// The call-graph gate: zero unsuppressed transitive findings in the
    /// real tree, a graph of credible size, and a total wall time under
    /// the 5 s CI budget.
    #[test]
    fn workspace_call_graph_is_clean() {
        #[allow(clippy::disallowed_methods)] // timing a test, not product code
        let t0 = std::time::Instant::now();
        let report = check_with(
            repo_root(),
            &Config::workspace(),
            CheckOptions {
                call_graph: true,
                parallel: true,
            },
        )
        .expect("workspace scan");
        let elapsed = t0.elapsed();
        assert!(
            report.is_clean(),
            "transitive geo-lint violations in the workspace:\n{}",
            report.render_human()
        );
        let g = report.graph.expect("graph summary present");
        assert!(g.functions > 100, "suspiciously small graph: {g:?}");
        assert!(g.edges > 100, "suspiciously few edges: {g:?}");
        assert!(
            elapsed.as_secs_f64() < 5.0,
            "full-workspace call-graph lint took {elapsed:?}, budget is 5 s"
        );
    }

    /// Satellite: the parallel and serial passes must be byte-identical in
    /// both renderings, call graph included.
    #[test]
    fn parallel_and_serial_reports_are_byte_identical() {
        let cfg = Config::workspace();
        let mk = |parallel| {
            check_with(
                repo_root(),
                &cfg,
                CheckOptions {
                    call_graph: true,
                    parallel,
                },
            )
            .expect("workspace scan")
        };
        let par = mk(true);
        let ser = mk(false);
        assert_eq!(par.render_human(), ser.render_human());
        assert_eq!(par.render_json(), ser.render_json());
    }
}
