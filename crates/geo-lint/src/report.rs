//! Diagnostics, suppressions, and report rendering (human and JSON).

use std::fmt::Write as _;

/// One finding: a rule fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D1`, `D2`, `D3`, `R1`, `R2`, `X1`, `X2`).
    pub rule: String,
    /// Path relative to the checked root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// One-line rationale for why this is a violation.
    pub rationale: String,
    /// Witness call chain for transitive findings (root first, sink's
    /// function last); empty for per-file rules.
    pub chain: Vec<String>,
}

/// A recorded, *used* suppression: an allow directive that silenced at
/// least one diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    /// Line of the suppressed violation.
    pub line: usize,
    pub reason: String,
}

/// A call the resolver could not pin down, reachable from a rule root.
/// Surfaced so a blind spot in the analysis is never mistaken for safety.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnresolvedCall {
    /// Key of the calling function (`geo_serve::server::sweep_conn`).
    pub from: String,
    /// The call as written (`mystery::frobnicate`, `.lookup()`).
    pub name: String,
    pub file: String,
    pub line: usize,
    /// Why resolution failed (`ambiguous method: 2 candidates …`).
    pub why: String,
}

/// Call-graph size summary, present when `--call-graph` ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSummary {
    pub functions: usize,
    pub edges: usize,
    /// Total unresolved calls (including ones not reachable from any root).
    pub unresolved: usize,
}

/// The full result of a check run.
#[derive(Debug, Default)]
pub struct Report {
    /// Non-suppressed diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Allow directives that matched a violation.
    pub suppressed: Vec<Suppression>,
    /// Unresolved calls reachable from a transitive-rule root; empty when
    /// the call graph did not run.
    pub unresolved: Vec<UnresolvedCall>,
    /// Present when the call graph ran.
    pub graph: Option<GraphSummary>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run found nothing to complain about.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Canonical ordering so output is byte-stable across runs.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.unresolved
            .sort_by(|a, b| (&a.file, a.line, &a.name).cmp(&(&b.file, b.line, &b.name)));
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{} {}:{}: `{}`", d.rule, d.file, d.line, d.snippet);
            let _ = writeln!(out, "   {}", d.rationale);
            if !d.chain.is_empty() {
                let _ = writeln!(out, "   via {}", d.chain.join(" → "));
            }
        }
        if !self.unresolved.is_empty() {
            let _ = writeln!(out, "unresolved calls (reachable from rule roots):");
            for u in &self.unresolved {
                let _ = writeln!(
                    out,
                    "   {}:{}: `{}` in `{}` ({})",
                    u.file, u.line, u.name, u.from, u.why
                );
            }
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(out, "suppressed:");
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "   {} {}:{} (reason: {})",
                    s.rule, s.file, s.line, s.reason
                );
            }
        }
        if let Some(g) = &self.graph {
            let _ = writeln!(
                out,
                "call graph: {} functions, {} edges, {} unresolved calls",
                g.functions, g.edges, g.unresolved
            );
        }
        let _ = writeln!(
            out,
            "geo-lint: {} diagnostic{} ({} suppressed) across {} file{}",
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        );
        out
    }

    /// JSON rendering (hand-rolled; the workspace has no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"rationale\": {}",
                json_str(&d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.snippet),
                json_str(&d.rationale),
            );
            if !d.chain.is_empty() {
                out.push_str(", \"chain\": [");
                for (j, hop) in d.chain.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_str(hop));
                }
                out.push(']');
            }
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"unresolved\": [");
        for (i, u) in self.unresolved.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"from\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"why\": {}}}",
                json_str(&u.from),
                json_str(&u.name),
                json_str(&u.file),
                u.line,
                json_str(&u.why),
            );
        }
        if !self.unresolved.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.reason),
            );
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"call_graph\": ");
        match &self.graph {
            Some(g) => {
                let _ = write!(
                    out,
                    "{{\"functions\": {}, \"edges\": {}, \"unresolved\": {}}}",
                    g.functions, g.edges, g.unresolved
                );
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        );
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            diagnostics: vec![Diagnostic {
                rule: "D1".into(),
                file: "crates/x/src/a.rs".into(),
                line: 3,
                snippet: "let t = Instant::now();".into(),
                rationale: "wall-clock read in a deterministic crate".into(),
                chain: Vec::new(),
            }],
            suppressed: vec![Suppression {
                rule: "R1".into(),
                file: "crates/y/src/b.rs".into(),
                line: 9,
                reason: "invariant: fresh encode always decodes".into(),
            }],
            unresolved: Vec::new(),
            graph: None,
            files_scanned: 2,
        };
        r.sort();
        r
    }

    #[test]
    fn human_output_mentions_everything() {
        let text = sample().render_human();
        assert!(text.contains("D1 crates/x/src/a.rs:3"), "{text}");
        assert!(text.contains("Instant::now"), "{text}");
        assert!(text.contains("suppressed:"), "{text}");
        assert!(text.contains("R1 crates/y/src/b.rs:9"), "{text}");
        assert!(
            text.contains("1 diagnostic (1 suppressed) across 2 files"),
            "{text}"
        );
    }

    #[test]
    fn json_escapes_and_structure() {
        let mut r = sample();
        r.diagnostics[0].snippet = "say \"hi\"\\path".into();
        let json = r.render_json();
        assert!(json.contains(r#""say \"hi\"\\path""#), "{json}");
        assert!(json.contains("\"files_scanned\": 2"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"clean\": true"));
        // No call graph → null summary, and nothing graph-ish in human text.
        assert!(r.render_json().contains("\"call_graph\": null"));
        assert!(!r.render_human().contains("call graph:"));
    }

    #[test]
    fn chains_unresolved_and_graph_render_in_both_formats() {
        let mut r = sample();
        r.diagnostics[0].rule = "R1T".into();
        r.diagnostics[0].chain = vec![
            "geo_serve::server::worker_loop".into(),
            "geo_serve::store::Store::get".into(),
        ];
        r.unresolved.push(UnresolvedCall {
            from: "geo_serve::server::sweep_conn".into(),
            name: ".lookup()".into(),
            file: "crates/geo-serve/src/server.rs".into(),
            line: 41,
            why: "ambiguous method: 2 candidates in the workspace".into(),
        });
        r.graph = Some(GraphSummary {
            functions: 10,
            edges: 7,
            unresolved: 3,
        });
        r.sort();

        let text = r.render_human();
        assert!(
            text.contains("via geo_serve::server::worker_loop → geo_serve::store::Store::get"),
            "{text}"
        );
        assert!(
            text.contains("unresolved calls (reachable from rule roots):"),
            "{text}"
        );
        assert!(
            text.contains("`.lookup()` in `geo_serve::server::sweep_conn`"),
            "{text}"
        );
        assert!(
            text.contains("call graph: 10 functions, 7 edges, 3 unresolved calls"),
            "{text}"
        );

        let json = r.render_json();
        assert!(
            json.contains(
                r#""chain": ["geo_serve::server::worker_loop", "geo_serve::store::Store::get"]"#
            ),
            "{json}"
        );
        assert!(
            json.contains(r#""why": "ambiguous method: 2 candidates in the workspace""#),
            "{json}"
        );
        assert!(
            json.contains(r#""call_graph": {"functions": 10, "edges": 7, "unresolved": 3}"#),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
