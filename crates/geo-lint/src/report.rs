//! Diagnostics, suppressions, and report rendering (human and JSON).

use std::fmt::Write as _;

/// One finding: a rule fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`D1`, `D2`, `D3`, `R1`, `R2`, `X1`, `X2`).
    pub rule: String,
    /// Path relative to the checked root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// One-line rationale for why this is a violation.
    pub rationale: String,
}

/// A recorded, *used* suppression: an allow directive that silenced at
/// least one diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub file: String,
    /// Line of the suppressed violation.
    pub line: usize,
    pub reason: String,
}

/// The full result of a check run.
#[derive(Debug, Default)]
pub struct Report {
    /// Non-suppressed diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Allow directives that matched a violation.
    pub suppressed: Vec<Suppression>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run found nothing to complain about.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Canonical ordering so output is byte-stable across runs.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{} {}:{}: `{}`", d.rule, d.file, d.line, d.snippet);
            let _ = writeln!(out, "   {}", d.rationale);
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(out, "suppressed:");
            for s in &self.suppressed {
                let _ = writeln!(
                    out,
                    "   {} {}:{} (reason: {})",
                    s.rule, s.file, s.line, s.reason
                );
            }
        }
        let _ = writeln!(
            out,
            "geo-lint: {} diagnostic{} ({} suppressed) across {} file{}",
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
        );
        out
    }

    /// JSON rendering (hand-rolled; the workspace has no serde).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"rationale\": {}}}",
                json_str(&d.rule),
                json_str(&d.file),
                d.line,
                json_str(&d.snippet),
                json_str(&d.rationale),
            );
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&s.rule),
                json_str(&s.file),
                s.line,
                json_str(&s.reason),
            );
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.is_clean()
        );
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report {
            diagnostics: vec![Diagnostic {
                rule: "D1".into(),
                file: "crates/x/src/a.rs".into(),
                line: 3,
                snippet: "let t = Instant::now();".into(),
                rationale: "wall-clock read in a deterministic crate".into(),
            }],
            suppressed: vec![Suppression {
                rule: "R1".into(),
                file: "crates/y/src/b.rs".into(),
                line: 9,
                reason: "invariant: fresh encode always decodes".into(),
            }],
            files_scanned: 2,
        };
        r.sort();
        r
    }

    #[test]
    fn human_output_mentions_everything() {
        let text = sample().render_human();
        assert!(text.contains("D1 crates/x/src/a.rs:3"), "{text}");
        assert!(text.contains("Instant::now"), "{text}");
        assert!(text.contains("suppressed:"), "{text}");
        assert!(text.contains("R1 crates/y/src/b.rs:9"), "{text}");
        assert!(
            text.contains("1 diagnostic (1 suppressed) across 2 files"),
            "{text}"
        );
    }

    #[test]
    fn json_escapes_and_structure() {
        let mut r = sample();
        r.diagnostics[0].snippet = "say \"hi\"\\path".into();
        let json = r.render_json();
        assert!(json.contains(r#""say \"hi\"\\path""#), "{json}");
        assert!(json.contains("\"files_scanned\": 2"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"clean\": true"));
    }
}
