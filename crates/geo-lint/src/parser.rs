//! Item-level parser on top of [`crate::lexer`]: function items, inline
//! module nesting, `impl` blocks, `use` imports, call expressions, and the
//! rule-relevant "sink" constructs inside each function body.
//!
//! This is deliberately not a full Rust parser. It tracks exactly the
//! structure the call-graph rules need: which function a token belongs to,
//! what that function calls, and which panicking / blocking / clock /
//! allocating constructs its body contains. Everything it cannot classify
//! is preserved as an unresolved call downstream, never silently dropped.

use crate::lexer::{Comment, Token, TokenKind};

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub(crate) struct Call {
    pub kind: CallKind,
    pub line: usize,
    /// Token index inside the file, for lock-order sequencing.
    pub order: usize,
}

/// The syntactic shape of a call, which drives name resolution.
#[derive(Debug, Clone)]
pub(crate) enum CallKind {
    /// `name(…)` — same-module free fn, import, or prelude.
    Bare(String),
    /// `recv.name(…)` with a non-`self` receiver.
    Method(String),
    /// `self.name(…)` — resolved against the enclosing `impl` first.
    SelfMethod(String),
    /// `a::b::name(…)`, `Type::name(…)`, `Self::name(…)`, …
    Path(Vec<String>),
}

/// Rule-relevant constructs found inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SinkKind {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`.
    Panic,
    /// `expr[…]` indexing, which panics out of bounds.
    Index,
    /// `thread::spawn`.
    Spawn,
    /// `.read_line(…)` / `.read_exact(…)`.
    BlockingRead,
    /// Wall clock or ambient entropy (`SystemTime`, `Instant::now`, …).
    Clock,
    /// Heap allocation (`Vec::new`, `vec!`, `.collect()`, …).
    Alloc,
    /// `.lock(…)` — a mutex acquisition (for R4T/L1).
    LockAcquire,
    /// `.write(…)` / `.write_all(…)` — a socket/stream write (for R4T).
    Write,
}

/// One sink occurrence.
#[derive(Debug, Clone)]
pub(crate) struct Sink {
    pub kind: SinkKind,
    pub line: usize,
    /// Token index inside the file, for lock-order sequencing.
    pub order: usize,
    /// Human-readable form of the construct (`.unwrap()`, `buf[…]`, …).
    pub what: String,
}

/// One parsed `fn` item with a body.
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Name with any `r#` prefix stripped.
    pub name: String,
    /// Enclosing inherent/trait `impl` type, if any.
    pub impl_type: Option<String>,
    /// Inline `mod` path within the file (file-level module comes from the
    /// path and is added by the call-graph builder).
    pub module: Vec<String>,
    /// First line of the item (leading attribute if present, else the
    /// signature line) — the start of the fn-scoped allow window.
    pub item_line: usize,
    /// Line of the `fn` keyword.
    pub sig_line: usize,
    pub calls: Vec<Call>,
    pub sinks: Vec<Sink>,
    /// `geo-lint:` markers attached directly above (`hot-path`,
    /// `worker-bootstrap`, `serve-entry`).
    pub markers: Vec<String>,
}

#[cfg(test)]
impl FnItem {
    fn has_marker(&self, m: &str) -> bool {
        self.markers.iter().any(|x| x == m)
    }
}

/// The parsed form of one source file.
#[derive(Debug, Clone, Default)]
pub(crate) struct ParsedFile {
    pub fns: Vec<FnItem>,
    /// `use` aliases: local name → full path segments as written.
    pub imports: Vec<(String, Vec<String>)>,
    /// `use path::*` glob prefixes.
    pub globs: Vec<Vec<String>>,
}

/// Marker comment spellings the parser attaches to functions.
const MARKERS: &[&str] = &["hot-path", "worker-bootstrap", "serve-entry"];

/// Keywords that must never be read as a call or an indexed expression.
const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Strips a raw-identifier prefix so `r#fn` and `fn` items/calls unify.
fn plain(name: &str) -> &str {
    name.strip_prefix("r#").unwrap_or(name)
}

/// Allocating constructors/macros/chain methods, mirrored from the P1 rule.
const ALLOC_CTOR_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];
const ALLOC_CTOR_FNS: &[&str] = &["new", "with_capacity", "from", "default"];
const ALLOC_CHAIN_METHODS: &[&str] = &["collect", "to_vec", "to_string", "to_owned"];

/// Method names consumed as sinks, not emitted as method calls.
const SINK_ONLY_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "read_line",
    "read_exact",
    "lock",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
];

#[derive(Debug)]
enum ScopeKind {
    Mod(String),
    Impl(Option<String>),
    /// Index into the in-progress `fns` vec.
    Fn(usize),
    Other,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth immediately *after* this scope's opening `{`.
    depth: i32,
}

/// Parses the test-stripped token stream `code` of one file; `comments`
/// are the file's comments (for marker attachment).
pub(crate) fn parse(code: &[Token], comments: &[Comment]) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0i32;
    let mut pending_scope: Option<ScopeKind> = None;
    let mut pending_item_line: Option<usize> = None;
    let mut i = 0usize;

    while i < code.len() {
        let t = &code[i];
        match &t.kind {
            TokenKind::Punct('#') if code.get(i + 1).is_some_and(|x| x.is_punct('[')) => {
                // Attribute: remember where the item started, then skip the
                // whole `#[…]` so its contents never look like calls.
                if pending_item_line.is_none() {
                    pending_item_line = Some(t.line);
                }
                let mut j = i + 1;
                let mut d = 0i32;
                while j < code.len() {
                    if code[j].is_punct('[') {
                        d += 1;
                    } else if code[j].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            TokenKind::Punct('{') => {
                depth += 1;
                scopes.push(Scope {
                    kind: pending_scope.take().unwrap_or(ScopeKind::Other),
                    depth,
                });
                pending_item_line = None;
                i += 1;
            }
            TokenKind::Punct('}') => {
                if scopes.last().is_some_and(|s| s.depth == depth) {
                    scopes.pop();
                }
                depth -= 1;
                pending_item_line = None;
                i += 1;
            }
            TokenKind::Punct(';') => {
                pending_item_line = None;
                i += 1;
            }
            TokenKind::Punct('[') => {
                if current_fn(&scopes).is_some() {
                    detect_index(code, i, &scopes, &mut out);
                }
                i += 1;
            }
            TokenKind::Ident(raw) => {
                let s = raw.as_str();
                let in_fn = current_fn(&scopes).is_some();
                match s {
                    "pub" if !in_fn => {
                        if pending_item_line.is_none() {
                            pending_item_line = Some(t.line);
                        }
                        i += 1;
                    }
                    "use" if !in_fn => {
                        i = parse_use(code, i + 1, &mut out);
                        pending_item_line = None;
                    }
                    "mod"
                        if code.get(i + 1).is_some_and(|x| x.ident().is_some())
                            && code.get(i + 2).is_some_and(|x| x.is_punct('{')) =>
                    {
                        let name = code[i + 1].ident().unwrap_or_default().to_string();
                        pending_scope = Some(ScopeKind::Mod(plain(&name).to_string()));
                        pending_item_line = None;
                        i += 2; // land on `{`
                    }
                    "impl" if !in_fn => {
                        let (ty, brace) = parse_impl_header(code, i);
                        match brace {
                            Some(b) => {
                                pending_scope = Some(ScopeKind::Impl(ty));
                                pending_item_line = None;
                                i = b; // land on `{`
                            }
                            None => i += 1,
                        }
                    }
                    "fn" => {
                        match parse_fn_header(code, i) {
                            Some((name, body_brace)) => {
                                let item_line = pending_item_line.take().unwrap_or(t.line);
                                let idx = out.fns.len();
                                out.fns.push(FnItem {
                                    name,
                                    impl_type: enclosing_impl(&scopes),
                                    module: module_path(&scopes),
                                    item_line,
                                    sig_line: t.line,
                                    calls: Vec::new(),
                                    sinks: Vec::new(),
                                    markers: Vec::new(),
                                });
                                pending_scope = Some(ScopeKind::Fn(idx));
                                i = body_brace; // land on `{`
                            }
                            // `fn(…)` pointer type or a bodyless trait decl.
                            None => i += 1,
                        }
                    }
                    _ if in_fn => {
                        i = detect_call_or_sink(code, i, &scopes, &mut out);
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }

    attach_markers(&mut out, comments);
    out
}

/// The innermost enclosing fn index, if any.
fn current_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s.kind {
        ScopeKind::Fn(idx) => Some(idx),
        _ => None,
    })
}

/// The `impl` type a newly-declared fn belongs to: the innermost Impl
/// scope, unless a Fn scope sits between (a nested fn is free-standing).
fn enclosing_impl(scopes: &[Scope]) -> Option<String> {
    for s in scopes.iter().rev() {
        match &s.kind {
            ScopeKind::Impl(ty) => return ty.clone(),
            ScopeKind::Fn(_) => return None,
            _ => {}
        }
    }
    None
}

/// Inline-module path at the current scope position.
fn module_path(scopes: &[Scope]) -> Vec<String> {
    scopes
        .iter()
        .filter_map(|s| match &s.kind {
            ScopeKind::Mod(name) => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// Parses the tokens between `impl` (at `i`) and its opening brace.
/// Returns the self-type's last path segment and the brace index.
fn parse_impl_header(code: &[Token], i: usize) -> (Option<String>, Option<usize>) {
    let mut brace = None;
    let mut j = i + 1;
    while j < code.len() {
        if code[j].is_punct('{') {
            brace = Some(j);
            break;
        }
        if code[j].is_punct(';') {
            return (None, None); // `impl Trait for Type;` — not a block
        }
        j += 1;
    }
    let Some(brace) = brace else {
        return (None, None);
    };
    let header = &code[i + 1..brace];
    // `impl Trait for Type {` → the type follows the last top-level `for`;
    // `impl<T> Type<T> {` → the type is the first path after the generics.
    let mut angle = 0i32;
    let mut for_pos: Option<usize> = None;
    for (k, t) in header.iter().enumerate() {
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            _ if angle == 0 && t.is_ident("for") => for_pos = Some(k),
            _ => {}
        }
    }
    let tail = match for_pos {
        Some(k) => &header[k + 1..],
        None => {
            // Skip leading generic params `<…>`.
            let mut k = 0;
            if header.first().is_some_and(|t| t.is_punct('<')) {
                let mut a = 0i32;
                while k < header.len() {
                    match header[k].kind {
                        TokenKind::Punct('<') => a += 1,
                        TokenKind::Punct('>') => {
                            a -= 1;
                            if a == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            &header[k..]
        }
    };
    // The self type's last path segment before `<`, `where`, or the end.
    let mut ty: Option<String> = None;
    for t in tail {
        match &t.kind {
            TokenKind::Ident(s) if s == "where" => break,
            TokenKind::Punct('<') => break,
            TokenKind::Ident(s) if s != "mut" && s != "dyn" => {
                ty = Some(plain(s).to_string());
            }
            _ => {}
        }
    }
    (ty, Some(brace))
}

/// Parses a `fn` header starting at the `fn` keyword. Returns the name and
/// the index of the body's opening brace, or `None` for fn-pointer types
/// and bodyless declarations.
fn parse_fn_header(code: &[Token], i: usize) -> Option<(String, usize)> {
    let name = code.get(i + 1)?.ident()?;
    let mut j = i + 2;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < code.len() {
        match code[j].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') if paren == 0 && bracket == 0 => {
                return Some((plain(name).to_string(), j));
            }
            TokenKind::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `use …;` statement starting just after the `use` keyword.
/// Returns the index one past the terminating `;`.
fn parse_use(code: &[Token], start: usize, out: &mut ParsedFile) -> usize {
    let mut j = start;
    parse_use_tree(code, &mut j, Vec::new(), out);
    while j < code.len() && !code[j].is_punct(';') {
        j += 1;
    }
    j.saturating_add(1).min(code.len())
}

/// Recursive descent over one use-tree level.
fn parse_use_tree(code: &[Token], j: &mut usize, prefix: Vec<String>, out: &mut ParsedFile) {
    let mut path = prefix;
    loop {
        match code.get(*j).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) if s == "as" => {
                *j += 1;
                if let Some(alias) = code.get(*j).and_then(|t| t.ident()) {
                    if alias != "_" {
                        out.imports.push((plain(alias).to_string(), path));
                    }
                    *j += 1;
                }
                return;
            }
            Some(TokenKind::Ident(s)) => {
                path.push(plain(s).to_string());
                *j += 1;
            }
            Some(TokenKind::Punct(':')) => *j += 1,
            Some(TokenKind::Punct('*')) => {
                out.globs.push(path);
                *j += 1;
                return;
            }
            Some(TokenKind::Punct('{')) => {
                *j += 1;
                loop {
                    match code.get(*j).map(|t| &t.kind) {
                        Some(TokenKind::Punct(',')) => *j += 1,
                        Some(TokenKind::Punct('}')) => {
                            *j += 1;
                            return;
                        }
                        Some(_) => parse_use_tree(code, j, path.clone(), out),
                        None => return,
                    }
                }
            }
            _ => {
                // End of this subtree (`,`, `}`, `;`): register the leaf.
                register_use_leaf(path, out);
                return;
            }
        }
    }
}

/// Registers a finished use-tree leaf: `a::b::c` binds `c`; `a::b::self`
/// binds `b`.
fn register_use_leaf(mut path: Vec<String>, out: &mut ParsedFile) {
    if path.last().is_some_and(|s| s == "self") {
        path.pop();
    }
    if let Some(local) = path.last().cloned() {
        out.imports.push((local, path));
    }
}

/// Handles an identifier token inside a fn body: emits calls and sinks.
/// Returns the next index to scan from.
fn detect_call_or_sink(code: &[Token], i: usize, scopes: &[Scope], out: &mut ParsedFile) -> usize {
    let Some(fn_idx) = current_fn(scopes) else {
        return i + 1;
    };
    let t = &code[i];
    let name_raw = t.ident().unwrap_or_default();
    let name = plain(name_raw);
    let line = t.line;
    let next_is = |k: usize, c: char| code.get(i + k).is_some_and(|x| x.is_punct(c));
    let prev_is = |c: char| i > 0 && code[i - 1].is_punct(c);

    let push_sink = |out: &mut ParsedFile, kind: SinkKind, what: String| {
        out.fns[fn_idx].sinks.push(Sink {
            kind,
            line,
            order: i,
            what,
        });
    };
    let push_call = |out: &mut ParsedFile, kind: CallKind| {
        out.fns[fn_idx].calls.push(Call {
            kind,
            line,
            order: i,
        });
    };

    // Clock/entropy identifiers (mirrors D1, call or not).
    match name {
        "SystemTime" | "UNIX_EPOCH" | "thread_rng" | "from_entropy" => {
            push_sink(out, SinkKind::Clock, format!("`{name}`"));
        }
        "Instant"
            if next_is(1, ':')
                && next_is(2, ':')
                && code.get(i + 3).is_some_and(|x| x.is_ident("now")) =>
        {
            push_sink(out, SinkKind::Clock, "`Instant::now()`".into());
        }
        _ => {}
    }

    // Macros: `name!…`.
    if next_is(1, '!') {
        match name {
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                push_sink(out, SinkKind::Panic, format!("`{name}!`"));
            }
            "vec" | "format" => push_sink(out, SinkKind::Alloc, format!("`{name}!`")),
            _ => {}
        }
        return i + 2;
    }

    // Method call: `recv.name(…)`.
    if prev_is('.') && next_is(1, '(') {
        match name {
            "unwrap" | "expect" => push_sink(out, SinkKind::Panic, format!("`.{name}()`")),
            "read_line" | "read_exact" => {
                push_sink(out, SinkKind::BlockingRead, format!("`.{name}()`"));
            }
            "lock" => push_sink(out, SinkKind::LockAcquire, "`.lock()`".into()),
            m if ALLOC_CHAIN_METHODS.contains(&m) => {
                push_sink(out, SinkKind::Alloc, format!("`.{name}()`"));
            }
            _ => {}
        }
        if name == "write" || name == "write_all" {
            push_sink(out, SinkKind::Write, format!("`.{name}()`"));
        }
        if !SINK_ONLY_METHODS.contains(&name) {
            let recv_is_self =
                i >= 2 && code[i - 2].is_ident("self") && !(i >= 3 && code[i - 3].is_punct('.'));
            if recv_is_self {
                push_call(out, CallKind::SelfMethod(name.to_string()));
            } else {
                push_call(out, CallKind::Method(name.to_string()));
            }
        }
        return i + 1;
    }

    // Path or bare call: `name(…)` / `a::b::name::<T>(…)`. Skip when this
    // ident is itself a later path segment (prev `::`) or a method name.
    if is_keyword(name_raw) || prev_is('.') || (prev_is(':') && i >= 2 && code[i - 2].is_punct(':'))
    {
        return i + 1;
    }
    let mut segs = vec![name.to_string()];
    let mut j = i + 1;
    loop {
        if code.get(j).is_some_and(|x| x.is_punct(':'))
            && code.get(j + 1).is_some_and(|x| x.is_punct(':'))
        {
            match code.get(j + 2).map(|t| &t.kind) {
                Some(TokenKind::Ident(s)) => {
                    segs.push(plain(s).to_string());
                    j += 3;
                }
                Some(TokenKind::Punct('<')) => {
                    // Turbofish: skip the balanced `<…>` run.
                    let mut a = 0i32;
                    let mut k = j + 2;
                    while k < code.len() {
                        match code[k].kind {
                            TokenKind::Punct('<') => a += 1,
                            TokenKind::Punct('>') => {
                                a -= 1;
                                if a == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    j = k;
                    break;
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    if !code.get(j).is_some_and(|x| x.is_punct('(')) {
        return i + 1;
    }

    // Clock sinks hide inside fully-qualified call paths: a call path is
    // consumed whole, so the head-ident check above never sees the inner
    // `Instant`/`SystemTime` segment of `std::time::Instant::now()`.
    // (Non-call paths return early above and rescan segment by segment,
    // which catches value constants like `std::time::UNIX_EPOCH`.) Paths
    // whose *head* segment is the clock identifier already fired above.
    if let Some(p) = segs.iter().skip(1).position(|s| {
        s == "SystemTime" || s == "UNIX_EPOCH" || s == "thread_rng" || s == "from_entropy"
    }) {
        let what = format!("`{}`", segs[p + 1]);
        push_sink(out, SinkKind::Clock, what);
    } else if segs.len() >= 2
        && segs[segs.len() - 2] == "Instant"
        && segs[segs.len() - 1] == "now"
        && segs[0] != "Instant"
    {
        push_sink(out, SinkKind::Clock, "`Instant::now()`".into());
    }

    // Sinks recognizable from the path shape.
    let n = segs.len();
    if n >= 2 && segs[n - 1] == "spawn" && segs[n - 2] == "thread" {
        push_sink(out, SinkKind::Spawn, "`thread::spawn`".into());
    }
    if n >= 2
        && ALLOC_CTOR_TYPES.contains(&segs[n - 2].as_str())
        && ALLOC_CTOR_FNS.contains(&segs[n - 1].as_str())
    {
        push_sink(
            out,
            SinkKind::Alloc,
            format!("`{}::{}`", segs[n - 2], segs[n - 1]),
        );
    }

    if n == 1 {
        push_call(out, CallKind::Bare(segs.pop().unwrap_or_default()));
    } else {
        push_call(out, CallKind::Path(segs));
    }
    // Continue from the segment after this ident so inner segments are not
    // re-scanned as fresh paths.
    (i + 1).max(j.min(code.len()))
}

/// Emits an Index sink for `expr[` shapes: the `[` at `i` follows an
/// identifier (not a keyword), `)` or `]`.
fn detect_index(code: &[Token], i: usize, scopes: &[Scope], out: &mut ParsedFile) {
    let Some(fn_idx) = current_fn(scopes) else {
        return;
    };
    let Some(prev) = i.checked_sub(1).map(|p| &code[p]) else {
        return;
    };
    let what = match &prev.kind {
        TokenKind::Ident(s) if !is_keyword(s) && s != "self" => format!("`{}[…]`", plain(s)),
        TokenKind::Punct(')') | TokenKind::Punct(']') => "`(…)[…]`".to_string(),
        _ => return,
    };
    out.fns[fn_idx].sinks.push(Sink {
        kind: SinkKind::Index,
        line: code[i].line,
        order: i,
        what,
    });
}

/// Attaches `geo-lint:` markers to the first fn whose signature starts
/// within 8 lines below the marker comment (mirrors the P1/R4 window).
fn attach_markers(out: &mut ParsedFile, comments: &[Comment]) {
    for c in comments {
        let anchored = c.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(body) = anchored.strip_prefix("geo-lint:") else {
            continue;
        };
        let marker = body.trim();
        if !MARKERS.contains(&marker) {
            continue;
        }
        let target = out
            .fns
            .iter_mut()
            .filter(|f| f.sig_line > c.line && f.sig_line <= c.line + 8)
            .min_by_key(|f| f.sig_line);
        if let Some(f) = target {
            f.markers.push(marker.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse_src(src: &str) -> ParsedFile {
        let lexed = lexer::lex(src);
        parse(&lexed.tokens, &lexed.comments)
    }

    #[test]
    fn extracts_fns_with_modules_and_impls() {
        let src = "mod inner {\n  struct S;\n  impl S {\n    fn method(&self) { helper(); }\n  }\n  fn helper() {}\n}\nfn top() {}";
        let p = parse_src(src);
        let names: Vec<(String, Option<String>, Vec<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone(), f.module.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("method".into(), Some("S".into()), vec!["inner".into()]),
                ("helper".into(), None, vec!["inner".into()]),
                ("top".into(), None, vec![]),
            ]
        );
        assert!(matches!(
            &p.fns[0].calls[0].kind,
            CallKind::Bare(n) if n == "helper"
        ));
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let p = parse_src("impl Display for Foo {\n  fn fmt(&self) { self.go(); }\n}");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Foo"));
        assert!(matches!(
            &p.fns[0].calls[0].kind,
            CallKind::SelfMethod(n) if n == "go"
        ));
    }

    #[test]
    fn classifies_call_shapes() {
        let src = "fn f(s: &Store) {\n  bare();\n  s.method_call();\n  a::b::path_call();\n  Type::assoc();\n  chained::<u32>();\n}";
        let p = parse_src(src);
        let kinds: Vec<String> = p.fns[0]
            .calls
            .iter()
            .map(|c| match &c.kind {
                CallKind::Bare(n) => format!("bare:{n}"),
                CallKind::Method(n) => format!("method:{n}"),
                CallKind::SelfMethod(n) => format!("self:{n}"),
                CallKind::Path(p) => format!("path:{}", p.join("::")),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "bare:bare",
                "method:method_call",
                "path:a::b::path_call",
                "path:Type::assoc",
                "bare:chained",
            ]
        );
    }

    #[test]
    fn records_sinks_with_lines() {
        let src = "fn f(xs: &[u32], i: usize) -> u32 {\n  let v = xs[i];\n  let o: Option<u32> = None;\n  o.unwrap();\n  panic!(\"no\");\n  v\n}";
        let p = parse_src(src);
        let sinks: Vec<(SinkKind, usize)> =
            p.fns[0].sinks.iter().map(|s| (s.kind, s.line)).collect();
        assert_eq!(
            sinks,
            vec![
                (SinkKind::Index, 2),
                (SinkKind::Panic, 4),
                (SinkKind::Panic, 5),
            ]
        );
    }

    #[test]
    fn index_detection_skips_types_attrs_and_macros() {
        let src = "fn f() {\n  let a: [u8; 4] = [0; 4];\n  #[allow(dead_code)]\n  let v = vec![1];\n  for x in [1, 2] { drop(x); }\n}";
        let p = parse_src(src);
        assert!(
            p.fns[0].sinks.iter().all(|s| s.kind != SinkKind::Index),
            "{:?}",
            p.fns[0].sinks
        );
    }

    #[test]
    fn parses_use_trees() {
        let src = "use crate::proto::{self, LocateRecord, encode_error as ee};\nuse geo_model::runtime::*;\nfn f() {}";
        let p = parse_src(src);
        let find = |n: &str| {
            p.imports
                .iter()
                .find(|(l, _)| l == n)
                .map(|(_, path)| path.join("::"))
        };
        assert_eq!(find("proto").as_deref(), Some("crate::proto"));
        assert_eq!(
            find("LocateRecord").as_deref(),
            Some("crate::proto::LocateRecord")
        );
        assert_eq!(find("ee").as_deref(), Some("crate::proto::encode_error"));
        assert_eq!(
            p.globs,
            vec![vec!["geo_model".to_string(), "runtime".into()]]
        );
    }

    #[test]
    fn raw_identifiers_unify_with_plain_names() {
        let p = parse_src("fn r#type() {}\nfn caller() { r#type(); }");
        assert_eq!(p.fns[0].name, "type");
        assert!(matches!(
            &p.fns[1].calls[0].kind,
            CallKind::Bare(n) if n == "type"
        ));
    }

    #[test]
    fn markers_attach_to_the_next_fn() {
        let src = "// geo-lint: serve-entry\nfn entry() {}\n\n// geo-lint: hot-path\n#[inline]\nfn hot() {}\nfn unmarked() {}";
        let p = parse_src(src);
        assert!(p.fns[0].has_marker("serve-entry"));
        assert!(p.fns[1].has_marker("hot-path"));
        assert_eq!(p.fns[1].item_line, 5, "attr line starts the item");
        assert!(p.fns[2].markers.is_empty());
    }

    #[test]
    fn bodyless_and_pointer_fns_are_skipped() {
        let src = "trait T { fn decl(&self); }\nfn real(cb: fn(u32) -> u32) { cb(1); }";
        let p = parse_src(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn clock_sinks_are_seen_through_qualified_paths() {
        let src = "fn f() -> u64 {\n  let t = std::time::Instant::now();\n  let s = std::time::SystemTime::now();\n  let e = std::time::UNIX_EPOCH;\n  0\n}\nfn bare() { let t = Instant::now(); }";
        let p = parse_src(src);
        let clocks: Vec<usize> = p.fns[0]
            .sinks
            .iter()
            .filter(|s| s.kind == SinkKind::Clock)
            .map(|s| s.line)
            .collect();
        assert_eq!(clocks, vec![2, 3, 4]);
        // The unqualified form keeps firing exactly once (no double count
        // between the head-ident check and the path check).
        let bare: Vec<_> = p.fns[1]
            .sinks
            .iter()
            .filter(|s| s.kind == SinkKind::Clock)
            .collect();
        assert_eq!(bare.len(), 1);
    }

    #[test]
    fn lock_and_write_order_is_recorded() {
        let src = "fn f(m: &Mutex<u32>, s: &mut TcpStream) {\n  let g = m.lock();\n  s.write_all(b\"x\").ok();\n}";
        let p = parse_src(src);
        let lock = p.fns[0]
            .sinks
            .iter()
            .find(|s| s.kind == SinkKind::LockAcquire)
            .unwrap();
        let write = p.fns[0]
            .sinks
            .iter()
            .find(|s| s.kind == SinkKind::Write)
            .unwrap();
        assert!(lock.order < write.order);
    }
}
