//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The workspace is offline and vendored-only, so `geo-lint` cannot lean on
//! `syn` or `proc-macro2`; instead this module tokenizes Rust source by hand.
//! It understands exactly what the rules need to never misfire inside
//! non-code text: line/doc comments, nested block comments, string literals
//! (plain, raw with any `#` count, byte, byte-raw), char literals vs.
//! lifetimes, and numbers. Everything else becomes an identifier or a
//! single-character punctuation token, each tagged with its 1-based line.
//!
//! Comments are not tokens: they are collected separately (with their line
//! numbers) so the directive parser can find `// geo-lint: allow(...)`
//! annotations without the rule scanners ever seeing comment text.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `for`, `HashMap`, …).
    Ident(String),
    /// Any literal: string, char, number. The payload is discarded — no
    /// rule inspects literal contents, they only need to be skipped safely.
    Literal,
    /// A lifetime such as `'a` (kept distinct so `'a` is never a char).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `{`, `(`, `#`, …).
    Punct(char),
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment with its source line (text excludes the `//` / `/*` markers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct FileLex {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`, separating code tokens from comments.
pub fn lex(src: &str) -> FileLex {
    let bytes = src.as_bytes();
    let mut out = FileLex::default();
    let mut i = 0;
    let mut line = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..end].to_string(),
                });
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment; contents are recorded so a
                // directive in a block comment is still diagnosable.
                let start = i + 2;
                let start_line = line;
                let mut depth = 1;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    match (bytes[j], bytes.get(j + 1)) {
                        (b'/', Some(b'*')) => {
                            depth += 1;
                            j += 2;
                        }
                        (b'*', Some(b'/')) => {
                            depth -= 1;
                            j += 2;
                        }
                        (b'\n', _) => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end.min(src.len())].to_string(),
                });
                i = j;
            }
            '"' => {
                let tok_line = line;
                i = lex_string(bytes, i, &mut line, &mut out, tok_line);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = lex_raw_or_byte(bytes, i, &mut line, &mut out);
            }
            'r' if bytes.get(i + 1) == Some(&b'#')
                && bytes
                    .get(i + 2)
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_') =>
            {
                // Raw identifier (`r#fn`, `r#type`): one Ident token with
                // the `r#` prefix kept, so keyword scans (`is_ident("fn")`)
                // can never mistake it for the keyword itself.
                let start = i;
                i += 2;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            '\'' => i = lex_quote(bytes, i, line, &mut out),
            c if c.is_ascii_digit() => {
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    let continues = b.is_ascii_alphanumeric()
                        || b == '_'
                        || (b == '.' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()))
                        || ((b == '+' || b == '-')
                            && matches!(bytes[i - 1], b'e' | b'E')
                            && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()));
                    if !continues {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` starts a raw/byte string (`r"`, `r#`, `b"`,
/// `br"`, `br#`) rather than an identifier beginning with `r`/`b`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    match rest {
        [b'r', b'"', ..] | [b'r', b'#', ..] | [b'b', b'"', ..] => {
            // `r#ident` is a raw identifier, not a raw string: require the
            // hashes (if any) to terminate in a quote.
            if rest.len() >= 2 && rest[1] == b'#' {
                let mut j = 1;
                while j < rest.len() && rest[j] == b'#' {
                    j += 1;
                }
                rest.get(j) == Some(&b'"')
            } else {
                true
            }
        }
        [b'b', b'r', b'"', ..] | [b'b', b'r', b'#', ..] => true,
        [b'b', b'\'', ..] => true,
        _ => false,
    }
}

/// Lexes a plain `"..."` string starting at the opening quote.
fn lex_string(
    bytes: &[u8],
    start: usize,
    line: &mut usize,
    out: &mut FileLex,
    tok_line: usize,
) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        line: tok_line,
    });
    i
}

/// Lexes raw strings (`r"…"`, `r##"…"##`), byte strings (`b"…"`), raw byte
/// strings (`br#"…"#`), and byte chars (`b'x'`), starting at the prefix.
fn lex_raw_or_byte(bytes: &[u8], start: usize, line: &mut usize, out: &mut FileLex) -> usize {
    let tok_line = *line;
    let mut i = start;
    // Skip the b/r prefix letters.
    while i < bytes.len() && (bytes[i] == b'b' || bytes[i] == b'r') {
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // Byte char b'x'.
        return lex_quote(bytes, i, tok_line, out);
    }
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1; // opening quote
    let raw = bytes[start] == b'r' || (bytes[start] == b'b' && bytes.get(start + 1) == Some(&b'r'));
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0;
                while seen < hashes && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    i = j;
                    break;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        line: tok_line,
    });
    i
}

/// Lexes a `'` — either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
fn lex_quote(bytes: &[u8], start: usize, line: usize, out: &mut FileLex) -> usize {
    let mut i = start + 1;
    // Lifetime: 'ident not followed by a closing quote.
    let is_lifetime = matches!(bytes.get(i), Some(c) if (c.is_ascii_alphabetic() || *c == b'_'))
        && {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            bytes.get(j) != Some(&b'\'')
        };
    if is_lifetime {
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        out.tokens.push(Token {
            kind: TokenKind::Lifetime,
            line,
        });
        return i;
    }
    // Char literal: skip escape or single char, then the closing quote.
    if bytes.get(i) == Some(&b'\\') {
        i += 2;
    } else {
        // Possibly multi-byte UTF-8; advance to the closing quote.
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    i = (i + 1).min(bytes.len());
    out.tokens.push(Token {
        kind: TokenKind::Literal,
        line,
    });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let f = lex("let x = 1;\nfoo.bar()");
        assert_eq!(
            idents("let x = 1;\nfoo.bar()"),
            vec!["let", "x", "foo", "bar"]
        );
        let bar = f.tokens.iter().find(|t| t.is_ident("bar")).unwrap();
        assert_eq!(bar.line, 2);
    }

    #[test]
    fn comments_are_not_tokens() {
        let f = lex("a // Instant::now()\nb /* thread_rng */ c");
        assert_eq!(
            idents("a // Instant::now()\nb /* thread_rng */ c"),
            vec!["a", "b", "c"]
        );
        assert_eq!(f.comments.len(), 2);
        assert!(f.comments[0].text.contains("Instant::now"));
        assert_eq!(f.comments[0].line, 1);
        assert_eq!(f.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            idents(r#"let s = "Instant::now()"; t"#),
            vec!["let", "s", "t"]
        );
        assert_eq!(
            idents(r##"let s = r#"unwrap() " quote"# ; t"##),
            vec!["let", "s", "t"]
        );
        assert_eq!(
            idents(r#"let s = b"bytes\"more"; t"#),
            vec!["let", "s", "t"]
        );
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let f = lex("\"a\nb\"\nend");
        let end = f.tokens.iter().find(|t| t.is_ident("end")).unwrap();
        assert_eq!(end.line, 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        // 'x' and '\n' are literals, not lifetimes.
        let lits = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        assert_eq!(idents("1.5e-3 0xFFu32 1_000usize next"), vec!["next"]);
        // A method call on a float binding is not swallowed by the number.
        assert_eq!(idents("x.max(1.0).sqrt()"), vec!["x", "max", "sqrt"]);
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        assert_eq!(idents("r#type = 1; end"), vec!["r#type", "end"]);
    }

    #[test]
    fn raw_fn_identifier_cannot_fake_an_item() {
        // `r#fn` must lex as one identifier distinct from the `fn` keyword,
        // or the item parser would see a phantom function item.
        let names = idents("fn r#fn() {} fn caller() { r#fn(); }");
        assert_eq!(names, vec!["fn", "r#fn", "fn", "caller", "r#fn"]);
        assert!(!lex("let r#match = 1;")
            .tokens
            .iter()
            .any(|t| t.is_ident("match")));
    }

    #[test]
    fn byte_and_raw_byte_strings_hide_contents_and_track_lines() {
        assert_eq!(
            idents("let s = b\"unwrap() \\\" quote\"; t"),
            vec!["let", "s", "t"]
        );
        // Raw byte string with embedded quote-hash and a newline inside.
        let f = lex("let s = br##\"panic!() \"# still\nin\"##;\nend");
        let names: Vec<&str> = f.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(names, vec!["let", "s", "end"]);
        let end = f.tokens.iter().find(|t| t.is_ident("end")).unwrap();
        assert_eq!(end.line, 3);
    }

    #[test]
    fn turbofish_runs_lex_cleanly() {
        // `::<…>` must not swallow following tokens: every ident inside and
        // after the turbofish survives, and the punct run is intact.
        let f = lex("xs.iter().collect::<Vec<u32>>().len()");
        let names: Vec<&str> = f.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(names, vec!["xs", "iter", "collect", "Vec", "u32", "len"]);
        let puncts: String = f
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, ".().::<<>>().()");
    }
}
