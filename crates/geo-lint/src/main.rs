//! CLI: `geo-lint check [--json] [--root <dir>]` and `geo-lint rules`.
//!
//! Exit codes: 0 clean (suppressions alone are fine), 1 diagnostics found,
//! 2 usage or I/O error.

use geo_lint::rules::{Config, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: geo-lint <check [--json] [--root <dir>] | rules>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            for r in RULES {
                println!("{}  {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run` the working directory is the workspace
    // root already; fall back to the manifest's grandparent so the binary
    // also works from anywhere inside the tree.
    if !root.join("crates").is_dir() {
        let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map(std::path::Path::to_path_buf);
        if let Some(p) = from_manifest.filter(|p| p.join("crates").is_dir()) {
            root = p;
        }
    }

    match geo_lint::check(&root, &Config::workspace()) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("geo-lint: {e}");
            ExitCode::from(2)
        }
    }
}
