//! CLI: `geo-lint check [--json] [--call-graph] [--serial] [--root <dir>]`
//! and `geo-lint rules`.
//!
//! Exit codes: 0 clean (suppressions alone are fine), 1 diagnostics found,
//! 2 usage or I/O error. Wall time goes to stderr so piped `--json` output
//! stays valid JSON.

use geo_lint::rules::{Config, RULES};
use geo_lint::CheckOptions;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: geo-lint <check [--json] [--call-graph] [--serial] [--root <dir>] | rules>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("rules") => {
            for r in RULES {
                println!("{}  {}", r.id, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut opts = CheckOptions::default();
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--call-graph" => opts.call_graph = true,
            "--serial" => opts.parallel = false,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run` the working directory is the workspace
    // root already; fall back to the manifest's grandparent so the binary
    // also works from anywhere inside the tree.
    if !root.join("crates").is_dir() {
        let from_manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .map(std::path::Path::to_path_buf);
        if let Some(p) = from_manifest.filter(|p| p.join("crates").is_dir()) {
            root = p;
        }
    }

    #[allow(clippy::disallowed_methods)] // CLI wall-time, not simulation code
    let t0 = std::time::Instant::now();
    match geo_lint::check_with(&root, &Config::workspace(), opts) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            eprintln!(
                "geo-lint: wall time {:.3}s ({} mode{})",
                t0.elapsed().as_secs_f64(),
                if opts.parallel { "parallel" } else { "serial" },
                if opts.call_graph { ", call-graph" } else { "" },
            );
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("geo-lint: {e}");
            ExitCode::from(2)
        }
    }
}
