//! Cross-crate call graph over the parsed workspace.
//!
//! Nodes are `fn` items keyed by `crate_ident::module::[Type::]name`.
//! Resolution is best-effort and explicitly layered (see DESIGN §13):
//! same-module free functions, `use`-imported names, fully-qualified
//! paths (with `crate`/`self`/`super`/`Self` normalization), enclosing
//! `impl` for `self.method()` calls, and unique-name matching for other
//! method calls. What cannot be pinned down is *recorded* as an
//! unresolved call — never treated as resolved-to-nothing-safe.

use crate::parser::{CallKind, ParsedFile, Sink};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One function node in the graph.
#[derive(Debug)]
pub(crate) struct FnNode {
    /// Display key: `crate_ident::module::[Type::]name`.
    pub key: String,
    /// Root-relative file path.
    pub file: String,
    /// Crate directory name (`geo-serve`), if under `crates/`.
    pub crate_dir: Option<String>,
    /// True when the file is under the crate's `src/`.
    pub in_src: bool,
    pub impl_type: Option<String>,
    pub name: String,
    pub item_line: usize,
    pub sig_line: usize,
    pub markers: Vec<String>,
    pub sinks: Vec<Sink>,
}

/// One resolved call edge, with the token order of the call site (for
/// lock-order sequencing).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Edge {
    pub target: usize,
    pub order: usize,
    pub line: usize,
}

/// One call the resolver could not pin to a workspace function (and could
/// not prove external either).
#[derive(Debug)]
pub(crate) struct UnresolvedEdge {
    pub from: usize,
    /// The call as written (`mystery::frobnicate`, `.lookup()`).
    pub name: String,
    pub line: usize,
    pub why: String,
}

/// The built graph.
#[derive(Debug)]
pub(crate) struct Graph {
    pub nodes: Vec<FnNode>,
    /// Per-node outgoing edges, sorted by (target, order), deduped by
    /// target keeping the earliest call site.
    pub edges: Vec<Vec<Edge>>,
    pub unresolved: Vec<UnresolvedEdge>,
    pub edge_count: usize,
}

/// Path heads that are known-external: std and friends, vendored crates,
/// primitives, and prelude types whose associated calls never target
/// workspace code. Workspace imports are consulted *before* this list, so
/// a real `use crate::…` alias always wins.
const EXTERNAL_HEADS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "rand",
    "proptest",
    "criterion",
    // primitives
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "f32",
    "f64",
    "bool",
    "char",
    "str",
    // prelude
    "String",
    "Vec",
    "Box",
    "Option",
    "Result",
    "Some",
    "Ok",
    "Err",
    "Iterator",
    "IntoIterator",
    "Default",
    "Clone",
    "Copy",
    "Drop",
    "Send",
    "Sync",
    "ToOwned",
    "ToString",
    "From",
    "Into",
    "TryFrom",
    "TryInto",
    "PartialEq",
    "PartialOrd",
    "Eq",
    "Ord",
    "Hash",
];

/// Method names owned by ubiquitous std types (slices, Vec, HashMap,
/// strings, atomics, locks, io traits, iterators, threads). A method
/// *call* with one of these names on an unknown receiver is
/// overwhelmingly more likely to target std than workspace code, so the
/// name-based fallback skips them — `self.method()` and fully-qualified
/// resolution still work, and a same-named workspace method called on an
/// unknown receiver simply never gets a name-guessed edge.
const STD_METHODS: &[&str] = &[
    // collections & slices
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "drain",
    "retain",
    "truncate",
    "resize",
    "reserve",
    "entry",
    "or_insert",
    "or_default",
    "keys",
    "values",
    "first",
    "last",
    "split_at",
    "chunks",
    "windows",
    "binary_search",
    "binary_search_by",
    "partition_point",
    "swap",
    "fill",
    "copy_from_slice",
    // iterators
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "min_by",
    "max_by",
    "count",
    "any",
    "all",
    "position",
    "zip",
    "enumerate",
    "rev",
    "skip",
    "step_by",
    "copied",
    "cloned",
    "flatten",
    "flat_map",
    "chain",
    "take",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    // strings & conversions
    "to_vec",
    "to_string",
    "to_owned",
    "as_str",
    "as_slice",
    "as_bytes",
    "as_ref",
    "as_mut",
    "as_deref",
    "parse",
    "split",
    "split_once",
    "trim",
    "starts_with",
    "ends_with",
    "find",
    "replace",
    "chars",
    "bytes",
    "lines",
    "clone",
    // Option/Result plumbing
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "and_then",
    "or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    // atomics, locks, cells
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "lock",
    "get_or_init",
    "set",
    "wait",
    "notify_all",
    "notify_one",
    // io, net, threads
    "read",
    "write",
    "write_all",
    "flush",
    "read_line",
    "read_exact",
    "recv",
    "try_recv",
    "send",
    "join",
    "spawn",
    "accept",
    "connect",
    "shutdown",
    "set_nonblocking",
    "set_nodelay",
    "peer_addr",
    "local_addr",
    // math
    "abs",
    "floor",
    "ceil",
    "sqrt",
    "powi",
    "powf",
    "hypot",
    "to_radians",
];

/// Input slice for the builder: one file's identity and parse.
pub(crate) struct FileInput<'a> {
    pub rel: &'a str,
    pub parsed: &'a ParsedFile,
}

/// Builds the call graph. `crate_idents` maps crate directory names to
/// their lib identifiers (`core` → `ipgeo`), from `Cargo.toml` when
/// available, else `dir.replace('-', "_")`.
pub(crate) fn build(files: &[FileInput<'_>], crate_idents: &BTreeMap<String, String>) -> Graph {
    let ident_to_dir: HashMap<&str, &str> = crate_idents
        .iter()
        .map(|(d, i)| (i.as_str(), d.as_str()))
        .collect();

    // 1. Nodes, in (file, fn) order — deterministic because file lists are
    //    sorted upstream.
    let mut nodes: Vec<FnNode> = Vec::new();
    // (file index, fn index in parse) → node index, for the edge pass.
    let mut node_of: HashMap<(usize, usize), usize> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        let (crate_dir, in_src, file_mods) = classify_path(f.rel);
        let crate_ident = crate_ident_for(f.rel, crate_dir.as_deref(), crate_idents);
        for (gi, item) in f.parsed.fns.iter().enumerate() {
            let mut segs: Vec<&str> = vec![&crate_ident];
            segs.extend(file_mods.iter().map(String::as_str));
            segs.extend(item.module.iter().map(String::as_str));
            if let Some(ty) = &item.impl_type {
                segs.push(ty);
            }
            segs.push(&item.name);
            node_of.insert((fi, gi), nodes.len());
            nodes.push(FnNode {
                key: segs.join("::"),
                file: f.rel.to_string(),
                crate_dir: crate_dir.clone(),
                in_src,
                impl_type: item.impl_type.clone(),
                name: item.name.clone(),
                item_line: item.item_line,
                sig_line: item.sig_line,
                markers: item.markers.clone(),
                sinks: item.sinks.clone(),
            });
        }
    }

    // 2. Resolution indexes. Name-based method fallback only consults
    //    `src/` nodes so integration-test helpers cannot capture calls.
    let mut by_path: HashMap<String, usize> = HashMap::new();
    let mut method_by_crate: HashMap<(String, String), Vec<usize>> = HashMap::new();
    let mut method_anywhere: HashMap<String, Vec<usize>> = HashMap::new();
    let mut typefn_by_crate: HashMap<(String, String, String), Vec<usize>> = HashMap::new();
    let mut freefn_by_crate: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (idx, n) in nodes.iter().enumerate() {
        by_path.entry(n.key.clone()).or_insert(idx);
        if !n.in_src {
            continue;
        }
        let Some(dir) = &n.crate_dir else { continue };
        if let Some(ty) = &n.impl_type {
            method_by_crate
                .entry((dir.clone(), n.name.clone()))
                .or_default()
                .push(idx);
            method_anywhere.entry(n.name.clone()).or_default().push(idx);
            typefn_by_crate
                .entry((dir.clone(), ty.clone(), n.name.clone()))
                .or_default()
                .push(idx);
        } else {
            freefn_by_crate
                .entry((dir.clone(), n.name.clone()))
                .or_default()
                .push(idx);
        }
    }

    // 3. Edges.
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
    let mut unresolved: Vec<UnresolvedEdge> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let (crate_dir, _, file_mods) = classify_path(f.rel);
        let crate_ident = crate_ident_for(f.rel, crate_dir.as_deref(), crate_idents);
        let imports: HashMap<&str, &[String]> = f
            .parsed
            .imports
            .iter()
            .map(|(l, p)| (l.as_str(), p.as_slice()))
            .collect();
        let scope = ResolveScope {
            crate_ident: &crate_ident,
            crate_dir: crate_dir.as_deref(),
            file_mods: &file_mods,
            imports: &imports,
            globs: &f.parsed.globs,
            ident_to_dir: &ident_to_dir,
            by_path: &by_path,
            method_by_crate: &method_by_crate,
            method_anywhere: &method_anywhere,
            typefn_by_crate: &typefn_by_crate,
            freefn_by_crate: &freefn_by_crate,
        };
        for (gi, item) in f.parsed.fns.iter().enumerate() {
            let from = node_of[&(fi, gi)];
            for call in &item.calls {
                match scope.resolve(&call.kind, item) {
                    Resolution::Target(to) => edges[from].push(Edge {
                        target: to,
                        order: call.order,
                        line: call.line,
                    }),
                    Resolution::External => {}
                    Resolution::Unresolved(name, why) => unresolved.push(UnresolvedEdge {
                        from,
                        name,
                        line: call.line,
                        why,
                    }),
                }
            }
        }
    }

    // Dedup per (from, target), keeping the earliest call site; sort for
    // deterministic traversal.
    let mut edge_count = 0usize;
    for list in &mut edges {
        list.sort_by_key(|e| (e.target, e.order));
        list.dedup_by_key(|e| e.target);
        edge_count += list.len();
    }
    unresolved.sort_by(|a, b| {
        (&nodes[a.from].file, a.line, &a.name).cmp(&(&nodes[b.from].file, b.line, &b.name))
    });

    Graph {
        nodes,
        edges,
        unresolved,
        edge_count,
    }
}

/// (crate dir, in_src, module path) for a root-relative file path.
fn classify_path(rel: &str) -> (Option<String>, bool, Vec<String>) {
    let Some(rest) = rel.strip_prefix("crates/") else {
        return (None, false, Vec::new());
    };
    let Some((crate_dir, tail)) = rest.split_once('/') else {
        return (None, false, Vec::new());
    };
    let Some(src_tail) = tail.strip_prefix("src/") else {
        return (Some(crate_dir.to_string()), false, Vec::new());
    };
    let mut mods: Vec<String> = src_tail
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    match mods.last().map(String::as_str) {
        Some("lib") | Some("main") => {
            mods.pop();
        }
        Some("mod") => {
            mods.pop();
        }
        _ => {}
    }
    (Some(crate_dir.to_string()), true, mods)
}

/// The crate identifier used in paths: the lib ident for `src/` files, a
/// per-file pseudo-crate for integration tests/examples/benches (each is
/// its own crate and must not alias the lib).
fn crate_ident_for(
    rel: &str,
    crate_dir: Option<&str>,
    crate_idents: &BTreeMap<String, String>,
) -> String {
    let in_src = crate_dir.is_some_and(|d| rel.starts_with(&format!("crates/{d}/src/")));
    if let (Some(dir), true) = (crate_dir, in_src) {
        return crate_idents
            .get(dir)
            .cloned()
            .unwrap_or_else(|| dir.replace('-', "_"));
    }
    // tests/examples/benches and workspace-level trees: unique pseudo-crate
    // per file so their helpers never collide with lib paths.
    format!("file:{rel}")
}

enum Resolution {
    Target(usize),
    External,
    Unresolved(String, String),
}

struct ResolveScope<'a> {
    crate_ident: &'a str,
    crate_dir: Option<&'a str>,
    file_mods: &'a [String],
    imports: &'a HashMap<&'a str, &'a [String]>,
    globs: &'a [Vec<String>],
    ident_to_dir: &'a HashMap<&'a str, &'a str>,
    by_path: &'a HashMap<String, usize>,
    method_by_crate: &'a HashMap<(String, String), Vec<usize>>,
    method_anywhere: &'a HashMap<String, Vec<usize>>,
    typefn_by_crate: &'a HashMap<(String, String, String), Vec<usize>>,
    freefn_by_crate: &'a HashMap<(String, String), Vec<usize>>,
}

impl ResolveScope<'_> {
    fn resolve(&self, kind: &CallKind, item: &crate::parser::FnItem) -> Resolution {
        match kind {
            CallKind::Bare(name) => self.resolve_bare(name, item),
            CallKind::SelfMethod(name) => self.resolve_self_method(name, item),
            CallKind::Method(name) => self.resolve_method(name),
            CallKind::Path(segs) => self.resolve_path(segs, item, 0),
        }
    }

    fn module_key<'b>(&'b self, item: &'b crate::parser::FnItem) -> Vec<&'b str> {
        let mut segs: Vec<&str> = vec![self.crate_ident];
        segs.extend(self.file_mods.iter().map(String::as_str));
        segs.extend(item.module.iter().map(String::as_str));
        segs
    }

    fn lookup(&self, segs: &[&str]) -> Option<usize> {
        self.by_path.get(&segs.join("::")).copied()
    }

    fn resolve_bare(&self, name: &str, item: &crate::parser::FnItem) -> Resolution {
        // Same module first.
        let mut segs = self.module_key(item);
        segs.push(name);
        if let Some(idx) = self.lookup(&segs) {
            return Resolution::Target(idx);
        }
        // `use`-imported name: the import path *is* the function path.
        if let Some(path) = self.imports.get(name) {
            let owned: Vec<String> = path.to_vec();
            return self.resolve_path(&owned, item, 1);
        }
        // Glob imports.
        for g in self.globs {
            let mut p: Vec<String> = g.clone();
            p.push(name.to_string());
            if let Resolution::Target(idx) = self.resolve_path(&p, item, 1) {
                return Resolution::Target(idx);
            }
        }
        // Unknown bare names are prelude functions, tuple-struct
        // constructors, or locals — external by construction.
        Resolution::External
    }

    fn resolve_self_method(&self, name: &str, item: &crate::parser::FnItem) -> Resolution {
        if let Some(ty) = &item.impl_type {
            // Same module, same type.
            let mut segs = self.module_key(item);
            segs.push(ty);
            segs.push(name);
            if let Some(idx) = self.lookup(&segs) {
                return Resolution::Target(idx);
            }
            // Another impl block of the same type elsewhere in the crate.
            if let Some(dir) = self.crate_dir {
                if let Some(c) =
                    self.typefn_by_crate
                        .get(&(dir.to_string(), ty.clone(), name.to_string()))
                {
                    if c.len() == 1 {
                        return Resolution::Target(c[0]);
                    }
                }
            }
        }
        self.resolve_method(name)
    }

    fn resolve_method(&self, name: &str) -> Resolution {
        // Std-owned method names never get a name-guessed edge: `.load()`
        // is an atomic, not `Dataset::load`; `.spawn()` is a thread scope,
        // not `QueryServer::spawn`.
        if STD_METHODS.contains(&name) {
            return Resolution::External;
        }
        // Same crate first, then workspace-wide; a unique name match
        // resolves, an ambiguous one is recorded, no match is external
        // (std/vendored methods).
        if let Some(dir) = self.crate_dir {
            if let Some(c) = self
                .method_by_crate
                .get(&(dir.to_string(), name.to_string()))
            {
                return match c.len() {
                    1 => Resolution::Target(c[0]),
                    n => Resolution::Unresolved(
                        format!(".{name}()"),
                        format!("ambiguous method: {n} candidates in this crate"),
                    ),
                };
            }
        }
        match self.method_anywhere.get(name).map(Vec::as_slice) {
            Some([one]) => Resolution::Target(*one),
            Some(many) => Resolution::Unresolved(
                format!(".{name}()"),
                format!(
                    "ambiguous method: {} candidates in the workspace",
                    many.len()
                ),
            ),
            None => Resolution::External,
        }
    }

    /// Resolves a path call. `hops` bounds import-chain recursion.
    fn resolve_path(
        &self,
        segs: &[String],
        item: &crate::parser::FnItem,
        hops: usize,
    ) -> Resolution {
        if hops > 4 || segs.is_empty() {
            return Resolution::Unresolved(segs.join("::"), "import chain too deep".into());
        }
        let head = segs[0].as_str();

        // Normalize relative heads.
        let abs: Option<Vec<String>> = match head {
            "crate" => {
                let mut p = vec![self.crate_ident.to_string()];
                p.extend(segs[1..].iter().cloned());
                Some(p)
            }
            "self" => {
                let mut p: Vec<String> = self
                    .module_key(item)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                p.extend(segs[1..].iter().cloned());
                Some(p)
            }
            "super" => {
                let mut base: Vec<String> = self
                    .module_key(item)
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                let mut k = 0;
                while k < segs.len() && segs[k] == "super" {
                    base.pop();
                    k += 1;
                }
                base.extend(segs[k..].iter().cloned());
                Some(base)
            }
            "Self" => match &item.impl_type {
                Some(ty) => {
                    let mut p: Vec<String> = self
                        .module_key(item)
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    p.push(ty.clone());
                    p.extend(segs[1..].iter().cloned());
                    Some(p)
                }
                None => {
                    return Resolution::Unresolved(
                        segs.join("::"),
                        "`Self::` outside an impl block".into(),
                    )
                }
            },
            _ => None,
        };
        if let Some(abs) = abs {
            return self.resolve_absolute(&abs, segs);
        }

        // Import alias on the first segment.
        if let Some(path) = self.imports.get(head) {
            let mut p: Vec<String> = path.to_vec();
            p.extend(segs[1..].iter().cloned());
            return self.resolve_path(&p, item, hops + 1);
        }

        // A workspace crate identifier: already absolute.
        if self.ident_to_dir.contains_key(head) {
            return self.resolve_absolute(segs, segs);
        }

        // Known-external head.
        if EXTERNAL_HEADS.contains(&head) {
            return Resolution::External;
        }

        // Same-module type or sibling module of the current crate.
        let mut local: Vec<String> = self
            .module_key(item)
            .iter()
            .map(|s| s.to_string())
            .collect();
        local.extend(segs.iter().cloned());
        if let Some(idx) = self.lookup(&local.iter().map(String::as_str).collect::<Vec<_>>()) {
            return Resolution::Target(idx);
        }
        let mut rooted: Vec<String> = vec![self.crate_ident.to_string()];
        rooted.extend(segs.iter().cloned());
        if let Some(idx) = self.lookup(&rooted.iter().map(String::as_str).collect::<Vec<_>>()) {
            return Resolution::Target(idx);
        }

        // Glob imports may bring the head into scope.
        for g in self.globs {
            let mut p: Vec<String> = g.clone();
            p.extend(segs.iter().cloned());
            if let Resolution::Target(idx) = self.resolve_path(&p, item, hops + 1) {
                return Resolution::Target(idx);
            }
        }

        path_fallback(segs)
    }

    /// Resolves an absolutized path, with re-export fallbacks.
    fn resolve_absolute(&self, abs: &[String], as_written: &[String]) -> Resolution {
        let refs: Vec<&str> = abs.iter().map(String::as_str).collect();
        if let Some(idx) = self.lookup(&refs) {
            return Resolution::Target(idx);
        }
        let head = abs[0].as_str();
        let Some(dir) = self.ident_to_dir.get(head) else {
            // Import chains can land on std (`use std::thread` → `thread::spawn`).
            if EXTERNAL_HEADS.contains(&head) {
                return Resolution::External;
            }
            return path_fallback(as_written);
        };
        // Re-export fallback: `crate::Type::f` where `Type` really lives in
        // `crate::module::Type` — match by (crate, Type, name) then by
        // (crate, free fn name) when unique.
        let n = abs.len();
        if n >= 3 {
            if let Some(c) =
                self.typefn_by_crate
                    .get(&(dir.to_string(), abs[n - 2].clone(), abs[n - 1].clone()))
            {
                if c.len() == 1 {
                    return Resolution::Target(c[0]);
                }
            }
        }
        if n >= 2 {
            if let Some(c) = self
                .freefn_by_crate
                .get(&(dir.to_string(), abs[n - 1].clone()))
            {
                if c.len() == 1 {
                    return Resolution::Target(c[0]);
                }
            }
        }
        path_fallback(as_written)
    }
}

/// Last-resort classification of a path that matched no workspace `fn`.
/// A capitalized last segment is a tuple-struct or enum-variant
/// constructor (`CityId(7)`, `PingOutcome::Reply(ms)`), and a std trait
/// method (`T::default`, `T::from`) resolves to a derive or std impl —
/// neither can be a workspace `fn` item, so both are external rather than
/// blind spots worth reporting.
fn path_fallback(as_written: &[String]) -> Resolution {
    let last = as_written.last().map_or("", String::as_str);
    let constructor = last.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    let std_trait = matches!(last, "default" | "from" | "clone" | "from_str");
    if constructor || std_trait {
        return Resolution::External;
    }
    Resolution::Unresolved(as_written.join("::"), "unresolved path".into())
}

/// Reads `crates/*/Cargo.toml` package names (hand-parsed: the `name =`
/// line inside `[package]`). Missing manifests fall back to the directory
/// name with `-` → `_`, which is what fixture trees rely on.
pub(crate) fn crate_idents(root: &std::path::Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return out;
    };
    let mut dirs: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    dirs.sort();
    for dir in dirs {
        let ident = std::fs::read_to_string(crates_dir.join(&dir).join("Cargo.toml"))
            .ok()
            .and_then(|toml| package_name(&toml))
            .unwrap_or_else(|| dir.replace('-', "_"));
        out.insert(dir, ident.replace('-', "_"));
    }
    out
}

/// The `name = "…"` value inside the `[package]` section.
fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let v = rest.trim_start().strip_prefix('=')?.trim();
                return Some(v.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Convenience: the node key, shortened for chains by dropping nothing —
/// chains read better fully qualified.
pub(crate) fn key_of(g: &Graph, idx: usize) -> &str {
    &g.nodes[idx].key
}

/// All lock classes acquired anywhere in the closure of `start`
/// (memoized externally by the caller via `cache`).
pub(crate) fn lock_closure(
    g: &Graph,
    start: usize,
    cache: &mut HashMap<usize, BTreeSet<String>>,
) -> BTreeSet<String> {
    if let Some(c) = cache.get(&start) {
        return c.clone();
    }
    // Iterative DFS; seed the cache to cut cycles.
    cache.insert(start, BTreeSet::new());
    let mut acc: BTreeSet<String> = BTreeSet::new();
    let mut stack = vec![start];
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        for s in &g.nodes[n].sinks {
            if s.kind == crate::parser::SinkKind::LockAcquire {
                acc.insert(lock_class(&g.nodes[n]));
            }
        }
        for e in &g.edges[n] {
            stack.push(e.target);
        }
    }
    cache.insert(start, acc.clone());
    acc
}

/// The lock class a `.lock()` inside `node` acquires: the enclosing impl
/// type when there is one, else the function's own key (module-level
/// locking helper).
pub(crate) fn lock_class(node: &FnNode) -> String {
    node.impl_type.clone().unwrap_or_else(|| node.key.clone())
}
