//! # criterion (offline stand-in)
//!
//! The build environment has no crates.io access, so this in-repo crate
//! satisfies the `criterion` dev-dependency with a minimal wall-clock
//! harness exposing the API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology: each benchmark is warmed up for a fixed number of
//! iterations, then timed over `sample_size` samples; the median, minimum
//! and mean per-iteration times are printed in a stable, grep-friendly
//! format (`bench <name> ... median <t> min <t> mean <t>`). Respects
//! `--bench` (ignored filter compatibility) and an optional substring
//! filter passed on the command line, mirroring `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation behind
/// it (same contract as `criterion::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (only the variants used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is cheap to hold; one setup per iteration.
    SmallInput,
    /// Larger inputs; identical behaviour in this stand-in.
    LargeInput,
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, samples: usize, mut sample: impl FnMut(u64) -> Duration) {
    // Calibrate the per-sample iteration count so one sample takes a
    // measurable but bounded slice of time.
    let probe = sample(1);
    let iters = if probe < Duration::from_millis(1) {
        (Duration::from_millis(5).as_nanos() / probe.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };
    // Warm-up.
    sample(iters.min(3));

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| sample(iters).as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "bench {name:<48} median {:>12} min {:>12} mean {:>12} ({samples} samples x {iters} iters)",
        format_time(Duration::from_secs_f64(median)),
        format_time(Duration::from_secs_f64(min)),
        format_time(Duration::from_secs_f64(mean)),
    );
}

/// The bench context passed to every registered bench function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` forwards extra args; honor the first
        // non-flag one as a substring filter like upstream does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            filter,
            sample_size: 10,
        }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one named benchmark.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let name = name.to_string();
        let samples = self.sample_size;
        if self.enabled(&name) {
            bench_with(&name, samples, f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: std::fmt::Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

fn bench_with<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    run_one(name, samples, |iters| {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.elapsed
    });
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group (printed as `group/name`).
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        if self.parent.enabled(&full) {
            bench_with(&full, samples, f);
        }
        self
    }

    /// Ends the group (kept for API compatibility; no summary state).
    pub fn finish(self) {}
}

/// Declares a group of bench functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            sample_size: 2,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(!ran);
        c.bench_function("does-match-me", |b| {
            ran = true;
            b.iter(|| 1)
        });
        assert!(ran);
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(Duration::from_nanos(12)).contains("ns"));
        assert!(format_time(Duration::from_micros(12)).contains("µs"));
        assert!(format_time(Duration::from_millis(12)).contains("ms"));
        assert!(format_time(Duration::from_secs(2)).ends_with("s"));
    }
}
