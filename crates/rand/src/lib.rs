//! # rand (offline stand-in)
//!
//! The build environment for this workspace has no access to crates.io, so
//! the `rand` dependency is satisfied by this in-repo crate instead. It
//! implements exactly the API surface the workspace uses — [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] (`shuffle`, `choose`) — with
//! the same trait shapes as `rand 0.8`, so the simulation crates compile
//! unchanged.
//!
//! The generator behind [`rngs::StdRng`] is a SplitMix64 counter stream
//! rather than ChaCha12: it is deterministic, seeded, stateless to
//! construct, and statistically far stronger than the latency jitter and
//! placement sampling here require. Reproducibility within this workspace
//! is preserved (every stream is a pure function of its seed); bit-level
//! compatibility with upstream `rand` output is explicitly *not* a goal —
//! no experiment asserts on upstream streams.

/// Error type for fallible RNG operations (never produced by this crate's
/// generators; kept for `rand 0.8` signature compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The core source of randomness: 32/64-bit words and byte fills.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible for every generator in this crate.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types constructible from a stream of random bits (the `Standard`
/// distribution of upstream `rand`, collapsed into one trait).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(off) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A value drawn uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeded construction of generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{mix, RngCore, SeedableRng, GOLDEN};

    /// The workspace's standard deterministic generator: a SplitMix64
    /// counter stream (see the crate docs for why this replaces ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(state: u64) -> StdRng {
            // One mixing round decorrelates small seeds (0, 1, 2, …).
            StdRng {
                state: mix(state.wrapping_add(GOLDEN)),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GOLDEN);
            mix(self.state)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random selection and ordering over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// One uniformly chosen element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_uniform_in_01() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
