//! Property-based tests for the measurement platform's accounting
//! invariants.

use atlas_sim::clock::{VirtualClock, VirtualDuration};
use atlas_sim::credits::{CostSchedule, CreditAccount};
use atlas_sim::{CreditAccount as Credits, Platform};
use geo_model::rng::Seed;
use net_sim::Network;
use proptest::prelude::*;
use world_sim::{World, WorldConfig};

fn world() -> &'static (World, Network) {
    use std::sync::OnceLock;
    static W: OnceLock<(World, Network)> = OnceLock::new();
    W.get_or_init(|| {
        (
            World::generate(WorldConfig::small(Seed(4001))).expect("world"),
            Network::new(Seed(4001)),
        )
    })
}

proptest! {
    /// Credits: balance + spent is invariant, and failures never charge.
    #[test]
    fn credit_conservation(
        balance in 0u64..10_000,
        pings in 0u64..5_000,
        traces in 0u64..1_000,
    ) {
        let mut acc = CreditAccount::new(balance);
        let _ = acc.charge_pings(pings);
        let _ = acc.charge_traceroutes(traces);
        prop_assert_eq!(acc.balance() + acc.spent(), balance);
    }

    /// Custom schedules scale costs linearly.
    #[test]
    fn schedule_scales(ping_cost in 1u64..10, count in 1u64..100) {
        let mut acc = CreditAccount::with_schedule(
            1_000_000,
            CostSchedule { per_ping_packet: ping_cost, per_traceroute: 10 },
        );
        acc.charge_pings(count).expect("affordable");
        prop_assert_eq!(acc.spent(), ping_cost * count);
    }

    /// The virtual clock is monotone under any sequence of advances.
    #[test]
    fn clock_is_monotone(steps in prop::collection::vec(0.0f64..1e6, 1..50)) {
        let mut clock = VirtualClock::new();
        let mut last = 0.0;
        for s in steps {
            clock.advance(VirtualDuration::from_secs(s));
            prop_assert!(clock.now_secs() >= last);
            last = clock.now_secs();
        }
    }

    /// A ping batch always returns one result per requested VP, charges
    /// exactly VPs × packets credits, and advances the clock.
    #[test]
    fn batch_accounting(n_vps in 1usize..40, anchor_sel in 0usize..25) {
        let (w, net) = world();
        let mut platform = Platform::new(Credits::upgraded());
        let vps: Vec<_> = w.probes.iter().copied().take(n_vps).collect();
        let target = w.host(w.anchors[anchor_sel % w.anchors.len()]).ip;
        let before_spent = platform.credits().spent();
        let before_clock = platform.clock().now_secs();
        let batch = platform.ping_from(w, net, &vps, target).expect("batch");
        prop_assert_eq!(batch.results.len(), n_vps);
        prop_assert_eq!(
            platform.credits().spent() - before_spent,
            (n_vps * 3) as u64
        );
        prop_assert!(platform.clock().now_secs() > before_clock);
        prop_assert!(batch.duration().as_secs() > 0.0);
    }
}
