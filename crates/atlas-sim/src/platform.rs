//! The measurement platform API.
//!
//! [`Platform`] is what geolocation pipelines talk to: "ping this target
//! from these vantage points", "run traceroutes to this landmark". Each
//! call charges credits, advances the virtual clock by the scheduling time
//! (slowest vantage point) plus the API round trip — the paper's §5.2.5
//! observation that fetching results "generally takes a few minutes" — and
//! returns deterministic results from `net-sim`.

use crate::clock::{VirtualClock, VirtualDuration};
use crate::credits::{CreditAccount, InsufficientCredits};
use crate::traffic::ProbeRate;
use geo_model::distr::{LogNormal, Sample};
use geo_model::ip::Ipv4;
use geo_model::rng::KeyRng;
use net_sim::{Network, PingOutcome, Traceroute};
use std::fmt;
use world_sim::ids::HostId;
use world_sim::World;

/// Platform behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Packets per ping measurement (RIPE Atlas default: 3).
    pub packets_per_ping: usize,
    /// Median API round trip (create measurement + poll results), seconds.
    pub api_median_secs: f64,
    /// Log-scale sigma of the API round trip.
    pub api_sigma: f64,
}

impl Default for PlatformConfig {
    fn default() -> PlatformConfig {
        PlatformConfig {
            packets_per_ping: 3,
            // "it generally takes a few minutes to get the results of a
            // measurement" (§5.2.5).
            api_median_secs: 150.0,
            api_sigma: 0.4,
        }
    }
}

/// Platform call failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// Out of credits.
    Credits(InsufficientCredits),
    /// The request named no vantage points.
    NoVantagePoints,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Credits(e) => write!(f, "{e}"),
            PlatformError::NoVantagePoints => write!(f, "no vantage points given"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<InsufficientCredits> for PlatformError {
    fn from(e: InsufficientCredits) -> PlatformError {
        PlatformError::Credits(e)
    }
}

/// Results of one measurement batch, with its virtual-time span.
#[derive(Debug, Clone)]
pub struct MeasurementBatch<T> {
    /// Per-vantage-point results in request order.
    pub results: Vec<(HostId, T)>,
    /// Virtual time when the batch was requested.
    pub started_secs: f64,
    /// Virtual time when results were available.
    pub completed_secs: f64,
}

impl<T> MeasurementBatch<T> {
    /// How long the batch took in virtual time.
    pub fn duration(&self) -> VirtualDuration {
        VirtualDuration::from_secs(self.completed_secs - self.started_secs)
    }
}

/// The measurement platform.
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
    clock: VirtualClock,
    credits: CreditAccount,
    nonce: u64,
}

impl Platform {
    /// A platform with the given credit account.
    pub fn new(credits: CreditAccount) -> Platform {
        Platform::with_config(credits, PlatformConfig::default())
    }

    /// A platform with explicit configuration.
    pub fn with_config(credits: CreditAccount, config: PlatformConfig) -> Platform {
        Platform {
            config,
            clock: VirtualClock::new(),
            credits,
            nonce: 0,
        }
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The credit account.
    pub fn credits(&self) -> &CreditAccount {
        &self.credits
    }

    /// Advances virtual time for activity outside the platform (e.g. the
    /// street-level pipeline's mapping-service queries).
    pub fn spend_time(&mut self, d: VirtualDuration) {
        self.clock.advance(d);
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce += 1;
        self.nonce
    }

    /// The API round-trip latency for one batch (deterministic per nonce).
    fn api_latency(&self, net: &Network, nonce: u64) -> f64 {
        let mut rng = KeyRng::new(net.seed().derive_index("api-latency", nonce).0);
        LogNormal::with_median(self.config.api_median_secs, self.config.api_sigma).sample(&mut rng)
    }

    /// Pings `target` from every vantage point (each sends
    /// `packets_per_ping` packets; the minimum RTT is reported).
    ///
    /// Advances the clock by the scheduling time of the slowest VP plus one
    /// API round trip, and charges one credit per packet.
    pub fn ping_from(
        &mut self,
        world: &World,
        net: &Network,
        vps: &[HostId],
        target: Ipv4,
    ) -> Result<MeasurementBatch<PingOutcome>, PlatformError> {
        if vps.is_empty() {
            return Err(PlatformError::NoVantagePoints);
        }
        let packets = self.config.packets_per_ping;
        self.credits.charge_pings((vps.len() * packets) as u64)?;
        let nonce = self.next_nonce();
        let started = self.clock.now_secs();

        let results: Vec<(HostId, PingOutcome)> = vps
            .iter()
            .map(|&vp| (vp, net.ping_min(world, vp, target, packets, nonce)))
            .collect();

        let sched = vps
            .iter()
            .map(|&vp| ProbeRate::of(world, vp).time_for(packets as u64))
            .fold(0.0, f64::max);
        self.clock.advance(VirtualDuration::from_secs(
            sched + self.api_latency(net, nonce),
        ));

        Ok(MeasurementBatch {
            results,
            started_secs: started,
            completed_secs: self.clock.now_secs(),
        })
    }

    /// Runs one traceroute from each vantage point to `target`.
    pub fn traceroute_from(
        &mut self,
        world: &World,
        net: &Network,
        vps: &[HostId],
        target: Ipv4,
    ) -> Result<MeasurementBatch<Traceroute>, PlatformError> {
        if vps.is_empty() {
            return Err(PlatformError::NoVantagePoints);
        }
        self.credits.charge_traceroutes(vps.len() as u64)?;
        let nonce = self.next_nonce();
        let started = self.clock.now_secs();

        let results: Vec<(HostId, Traceroute)> = vps
            .iter()
            .map(|&vp| (vp, net.traceroute(world, vp, target, nonce)))
            .collect();

        // A traceroute sends ~16 packets (TTL sweep with retries).
        let sched = vps
            .iter()
            .map(|&vp| ProbeRate::of(world, vp).time_for(16))
            .fold(0.0, f64::max);
        self.clock.advance(VirtualDuration::from_secs(
            sched + self.api_latency(net, nonce),
        ));

        Ok(MeasurementBatch {
            results,
            started_secs: started,
            completed_secs: self.clock.now_secs(),
        })
    }

    /// The meshed anchor-to-anchor RTT measurements that RIPE Atlas
    /// publishes and §4.3's sanitizer consumes. Returns `rtts[i][j]` =
    /// min-RTT from `anchors[i]` to `anchors[j]` (None on the diagonal or
    /// timeout). Charged like any other ping campaign.
    pub fn anchor_mesh(
        &mut self,
        world: &World,
        net: &Network,
        anchors: &[HostId],
    ) -> Result<Vec<Vec<Option<geo_model::units::Ms>>>, PlatformError> {
        let n = anchors.len();
        let packets = self.config.packets_per_ping;
        self.credits
            .charge_pings((n * n.saturating_sub(1) * packets) as u64)?;
        let nonce = self.next_nonce();
        let mut mesh = vec![vec![None; n]; n];
        for (i, &src) in anchors.iter().enumerate() {
            for (j, &dst) in anchors.iter().enumerate() {
                if i == j {
                    continue;
                }
                let ip = world.host(dst).ip;
                mesh[i][j] = net
                    .ping_min(
                        world,
                        src,
                        ip,
                        packets,
                        nonce ^ ((i as u64) << 32 | j as u64),
                    )
                    .rtt();
            }
        }
        // The mesh runs continuously in the background on real Atlas; the
        // charge models downloading a day's dump, not waiting for it.
        self.clock
            .advance(VirtualDuration::from_secs(self.api_latency(net, nonce)));
        Ok(mesh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Platform) {
        let w = World::generate(WorldConfig::small(Seed(121))).unwrap();
        let net = Network::new(Seed(121));
        let platform = Platform::new(CreditAccount::upgraded());
        (w, net, platform)
    }

    #[test]
    fn ping_batch_returns_all_vps_and_advances_clock() {
        let (w, net, mut p) = setup();
        let vps: Vec<_> = w.probes.iter().copied().take(20).collect();
        let target = w.host(w.anchors[0]).ip;
        let batch = p.ping_from(&w, &net, &vps, target).unwrap();
        assert_eq!(batch.results.len(), 20);
        assert!(batch.duration().as_secs() > 60.0, "API latency missing");
        assert!(p.clock().now_secs() > 0.0);
        let replies = batch
            .results
            .iter()
            .filter(|(_, o)| matches!(o, PingOutcome::Reply(_)))
            .count();
        assert!(replies >= 18, "too many losses: {replies}/20");
    }

    #[test]
    fn charges_credits() {
        let (w, net, _) = setup();
        let mut p = Platform::new(CreditAccount::new(100));
        let vps: Vec<_> = w.probes.iter().copied().take(20).collect();
        let target = w.host(w.anchors[0]).ip;
        // 20 VPs * 3 packets = 60 credits.
        p.ping_from(&w, &net, &vps, target).unwrap();
        assert_eq!(p.credits().balance(), 40);
        // Second batch cannot be paid.
        let err = p.ping_from(&w, &net, &vps, target).unwrap_err();
        assert!(matches!(err, PlatformError::Credits(_)));
    }

    #[test]
    fn rejects_empty_vp_list() {
        let (w, net, mut p) = setup();
        let target = w.host(w.anchors[0]).ip;
        assert_eq!(
            p.ping_from(&w, &net, &[], target).unwrap_err(),
            PlatformError::NoVantagePoints
        );
    }

    #[test]
    fn traceroute_batch_works() {
        let (w, net, mut p) = setup();
        let vps: Vec<_> = w.anchors.iter().copied().take(5).collect();
        let target = w.host(w.anchors[9]).ip;
        let batch = p.traceroute_from(&w, &net, &vps, target).unwrap();
        assert_eq!(batch.results.len(), 5);
        for (_, tr) in &batch.results {
            assert!(!tr.hops.is_empty());
        }
    }

    #[test]
    fn mesh_has_expected_shape() {
        let (w, net, mut p) = setup();
        let anchors: Vec<_> = w.anchors.iter().copied().take(8).collect();
        let mesh = p.anchor_mesh(&w, &net, &anchors).unwrap();
        assert_eq!(mesh.len(), 8);
        for (i, row) in mesh.iter().enumerate() {
            assert_eq!(row.len(), 8);
            assert!(row[i].is_none(), "diagonal must be empty");
        }
        let measured = mesh.iter().flatten().filter(|o| o.is_some()).count();
        assert!(measured > 40, "mesh mostly failed: {measured}");
    }

    #[test]
    fn batches_are_deterministic_in_sequence() {
        let (w, net, _) = setup();
        let run = || {
            let mut p = Platform::new(CreditAccount::upgraded());
            let vps: Vec<_> = w.probes.iter().copied().take(10).collect();
            let t = w.host(w.anchors[0]).ip;
            let b1 = p.ping_from(&w, &net, &vps, t).unwrap();
            let b2 = p.ping_from(&w, &net, &vps, t).unwrap();
            (
                b1.results
                    .iter()
                    .filter_map(|(_, o)| o.rtt().map(|m| m.value()))
                    .sum::<f64>(),
                b2.results
                    .iter()
                    .filter_map(|(_, o)| o.rtt().map(|m| m.value()))
                    .sum::<f64>(),
                p.clock().now_secs(),
            )
        };
        assert_eq!(run(), run());
    }
}
