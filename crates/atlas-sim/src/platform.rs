//! The measurement platform API.
//!
//! [`Platform`] is what geolocation pipelines talk to: "ping this target
//! from these vantage points", "run traceroutes to this landmark". Each
//! call charges credits, advances the virtual clock by the scheduling time
//! (slowest vantage point) plus the API round trip — the paper's §5.2.5
//! observation that fetching results "generally takes a few minutes" — and
//! returns deterministic results from `net-sim`.

use crate::clock::{VirtualClock, VirtualDuration};
use crate::credits::{CreditAccount, InsufficientCredits};
use crate::faults::{ApiFault, FaultPlan};
use crate::traffic::ProbeRate;
use geo_model::distr::{LogNormal, Sample};
use geo_model::ip::Ipv4;
use geo_model::rng::KeyRng;
use net_sim::{Network, PingOutcome, Traceroute};
use std::fmt;
use world_sim::ids::HostId;
use world_sim::World;

/// Platform behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Packets per ping measurement (RIPE Atlas default: 3).
    pub packets_per_ping: usize,
    /// Median API round trip (create measurement + poll results), seconds.
    pub api_median_secs: f64,
    /// Log-scale sigma of the API round trip.
    pub api_sigma: f64,
}

impl Default for PlatformConfig {
    fn default() -> PlatformConfig {
        PlatformConfig {
            packets_per_ping: 3,
            // "it generally takes a few minutes to get the results of a
            // measurement" (§5.2.5).
            api_median_secs: 150.0,
            api_sigma: 0.4,
        }
    }
}

/// Platform call failures, split into fatal conditions (credits, bad
/// request) and transient API faults a caller may retry.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// Out of credits. Fatal: retrying cannot help.
    Credits(InsufficientCredits),
    /// The request named no vantage points. Fatal: a caller bug.
    NoVantagePoints,
    /// The API shed load (HTTP 429). Transient: retry after the hint.
    RateLimited {
        /// Suggested wait before retrying, virtual seconds.
        retry_after_secs: f64,
    },
    /// The measurement API answered 5xx; the measurement never ran.
    /// Transient.
    ServerError,
    /// The result fetch never completed. Transient; the wait is already
    /// charged to the virtual clock.
    ApiTimeout {
        /// Virtual seconds wasted waiting before giving up.
        waited_secs: f64,
    },
}

impl PlatformError {
    /// True for transient faults where a bounded retry is the right
    /// response; false for conditions retrying cannot fix.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PlatformError::RateLimited { .. }
                | PlatformError::ServerError
                | PlatformError::ApiTimeout { .. }
        )
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Credits(e) => write!(f, "{e}"),
            PlatformError::NoVantagePoints => write!(f, "no vantage points given"),
            PlatformError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited (retry after {retry_after_secs:.0}s)")
            }
            PlatformError::ServerError => write!(f, "measurement API server error"),
            PlatformError::ApiTimeout { waited_secs } => {
                write!(f, "result fetch timed out after {waited_secs:.0}s")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<InsufficientCredits> for PlatformError {
    fn from(e: InsufficientCredits) -> PlatformError {
        PlatformError::Credits(e)
    }
}

/// Results of one measurement batch, with its virtual-time span.
#[derive(Debug, Clone)]
pub struct MeasurementBatch<T> {
    /// Per-vantage-point results in request order.
    pub results: Vec<(HostId, T)>,
    /// Virtual time when the batch was requested.
    pub started_secs: f64,
    /// Virtual time when results were available.
    pub completed_secs: f64,
}

impl<T> MeasurementBatch<T> {
    /// How long the batch took in virtual time.
    pub fn duration(&self) -> VirtualDuration {
        VirtualDuration::from_secs(self.completed_secs - self.started_secs)
    }
}

/// The measurement platform.
#[derive(Debug, Clone)]
pub struct Platform {
    config: PlatformConfig,
    clock: VirtualClock,
    credits: CreditAccount,
    nonce: u64,
    faults: Option<FaultPlan>,
}

impl Platform {
    /// A platform with the given credit account.
    pub fn new(credits: CreditAccount) -> Platform {
        Platform::with_config(credits, PlatformConfig::default())
    }

    /// A platform with explicit configuration.
    pub fn with_config(credits: CreditAccount, config: PlatformConfig) -> Platform {
        Platform {
            config,
            clock: VirtualClock::new(),
            credits,
            nonce: 0,
            faults: None,
        }
    }

    /// A platform whose calls are subjected to a seeded fault plan. A plan
    /// with all rates at zero behaves exactly like a fault-free platform.
    pub fn with_faults(
        credits: CreditAccount,
        config: PlatformConfig,
        plan: FaultPlan,
    ) -> Platform {
        let mut p = Platform::with_config(credits, config);
        if !plan.is_zero() {
            p.faults = Some(plan);
        }
        p
    }

    /// The active fault plan, if any injects faults.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The credit account.
    pub fn credits(&self) -> &CreditAccount {
        &self.credits
    }

    /// Advances virtual time for activity outside the platform (e.g. the
    /// street-level pipeline's mapping-service queries).
    pub fn spend_time(&mut self, d: VirtualDuration) {
        self.clock.advance(d);
    }

    fn next_nonce(&mut self) -> u64 {
        self.nonce += 1;
        self.nonce
    }

    /// The API round-trip latency for one batch (deterministic per nonce).
    fn api_latency(&self, net: &Network, nonce: u64) -> f64 {
        let mut rng = KeyRng::new(net.seed().derive_index("api-latency", nonce).0);
        LogNormal::with_median(self.config.api_median_secs, self.config.api_sigma).sample(&mut rng)
    }

    /// Consults the fault plan for call `nonce`. On a scheduled API fault,
    /// burns the virtual time the failed call cost and returns the typed
    /// retryable error; the caller must refund the charge first.
    fn api_fault_for(&mut self, net: &Network, nonce: u64) -> Option<PlatformError> {
        let fault = self.faults.as_ref()?.api_fault(nonce)?;
        Some(match fault {
            ApiFault::RateLimited => {
                // Rejected at submission: near-instant, with a polite hint.
                self.clock.advance(VirtualDuration::from_secs(1.0));
                PlatformError::RateLimited {
                    retry_after_secs: 30.0,
                }
            }
            ApiFault::ServerError => {
                self.clock.advance(VirtualDuration::from_secs(5.0));
                PlatformError::ServerError
            }
            ApiFault::Timeout => {
                // The caller polled well past the normal fetch time.
                let waited = 4.0 * self.api_latency(net, nonce);
                self.clock.advance(VirtualDuration::from_secs(waited));
                PlatformError::ApiTimeout {
                    waited_secs: waited,
                }
            }
        })
    }

    /// The churn window the virtual clock currently sits in.
    fn churn_window(&self) -> u64 {
        let secs = match &self.faults {
            Some(plan) => plan.config().churn_window_secs.max(1.0),
            None => return 0,
        };
        (self.clock.now_secs() / secs) as u64
    }

    /// Pings `target` from every vantage point (each sends
    /// `packets_per_ping` packets; the minimum RTT is reported).
    ///
    /// Advances the clock by the scheduling time of the slowest VP plus one
    /// API round trip, and charges one credit per packet.
    pub fn ping_from(
        &mut self,
        world: &World,
        net: &Network,
        vps: &[HostId],
        target: Ipv4,
    ) -> Result<MeasurementBatch<PingOutcome>, PlatformError> {
        if vps.is_empty() {
            return Err(PlatformError::NoVantagePoints);
        }
        let packets = self.config.packets_per_ping;
        self.credits.charge_pings((vps.len() * packets) as u64)?;
        let nonce = self.next_nonce();
        let started = self.clock.now_secs();

        if let Some(err) = self.api_fault_for(net, nonce) {
            // The measurement never produced results; Atlas refunds.
            self.credits.refund_pings((vps.len() * packets) as u64);
            return Err(err);
        }

        let window = self.churn_window();
        let mut results: Vec<(HostId, PingOutcome)> = Vec::with_capacity(vps.len());
        let mut disconnected = 0u64;
        for &vp in vps {
            if let Some(plan) = &self.faults {
                if plan.vp_disconnected(vp, window) {
                    // Probe offline for this window: no packets sent.
                    disconnected += 1;
                    continue;
                }
                if plan.reply_lost(vp, nonce) {
                    results.push((vp, PingOutcome::Timeout));
                    continue;
                }
                if let Some(bad) = plan.garbled_rtt(vp, nonce) {
                    results.push((vp, PingOutcome::Reply(bad)));
                    continue;
                }
            }
            results.push((vp, net.ping_min(world, vp, target, packets, nonce)));
        }
        if disconnected > 0 {
            self.credits.refund_pings(disconnected * packets as u64);
        }
        if let Some(plan) = &self.faults {
            // Truncation loses delivered results after the charge: the
            // measurements ran, the fetch dropped the tail.
            results.truncate(plan.delivered_len(results.len(), nonce));
        }

        let sched = vps
            .iter()
            .map(|&vp| ProbeRate::of(world, vp).time_for(packets as u64))
            .fold(0.0, f64::max);
        self.clock.advance(VirtualDuration::from_secs(
            sched + self.api_latency(net, nonce),
        ));

        Ok(MeasurementBatch {
            results,
            started_secs: started,
            completed_secs: self.clock.now_secs(),
        })
    }

    /// Runs one traceroute from each vantage point to `target`.
    pub fn traceroute_from(
        &mut self,
        world: &World,
        net: &Network,
        vps: &[HostId],
        target: Ipv4,
    ) -> Result<MeasurementBatch<Traceroute>, PlatformError> {
        if vps.is_empty() {
            return Err(PlatformError::NoVantagePoints);
        }
        self.credits.charge_traceroutes(vps.len() as u64)?;
        let nonce = self.next_nonce();
        let started = self.clock.now_secs();

        if let Some(err) = self.api_fault_for(net, nonce) {
            self.credits.refund_traceroutes(vps.len() as u64);
            return Err(err);
        }

        let window = self.churn_window();
        let mut results: Vec<(HostId, Traceroute)> = Vec::with_capacity(vps.len());
        let mut disconnected = 0u64;
        for &vp in vps {
            if let Some(plan) = &self.faults {
                if plan.vp_disconnected(vp, window) {
                    disconnected += 1;
                    continue;
                }
            }
            results.push((vp, net.traceroute(world, vp, target, nonce)));
        }
        if disconnected > 0 {
            self.credits.refund_traceroutes(disconnected);
        }
        if let Some(plan) = &self.faults {
            results.truncate(plan.delivered_len(results.len(), nonce));
        }

        // A traceroute sends ~16 packets (TTL sweep with retries).
        let sched = vps
            .iter()
            .map(|&vp| ProbeRate::of(world, vp).time_for(16))
            .fold(0.0, f64::max);
        self.clock.advance(VirtualDuration::from_secs(
            sched + self.api_latency(net, nonce),
        ));

        Ok(MeasurementBatch {
            results,
            started_secs: started,
            completed_secs: self.clock.now_secs(),
        })
    }

    /// The meshed anchor-to-anchor RTT measurements that RIPE Atlas
    /// publishes and §4.3's sanitizer consumes. Cell `(i, j)` is the
    /// min-RTT from `anchors[i]` to `anchors[j]` (NaN on the diagonal or
    /// timeout), in the `f64` staging format the sanitizer reads directly.
    /// Charged like any other ping campaign.
    pub fn anchor_mesh(
        &mut self,
        world: &World,
        net: &Network,
        anchors: &[HostId],
    ) -> Result<geo_model::matrix::DelayMatrix, PlatformError> {
        use geo_model::matrix::DelayMatrix;
        let n = anchors.len();
        let packets = self.config.packets_per_ping;
        self.credits
            .charge_pings((n * n.saturating_sub(1) * packets) as u64)?;
        let nonce = self.next_nonce();
        if let Some(err) = self.api_fault_for(net, nonce) {
            // Modelled as a failed dump download: nothing was delivered.
            self.credits
                .refund_pings((n * n.saturating_sub(1) * packets) as u64);
            return Err(err);
        }
        let mut mesh = DelayMatrix::new(n, n);
        for (i, &src) in anchors.iter().enumerate() {
            for (j, &dst) in anchors.iter().enumerate() {
                if i == j {
                    continue;
                }
                let pair = nonce ^ ((i as u64) << 32 | j as u64);
                if let Some(plan) = &self.faults {
                    if plan.reply_lost(src, pair) {
                        continue;
                    }
                }
                let ip = world.host(dst).ip;
                mesh.set(i, j, net.ping_min(world, src, ip, packets, pair).rtt());
            }
        }
        // The mesh runs continuously in the background on real Atlas; the
        // charge models downloading a day's dump, not waiting for it.
        self.clock
            .advance(VirtualDuration::from_secs(self.api_latency(net, nonce)));
        Ok(mesh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Platform) {
        let w = World::generate(WorldConfig::small(Seed(121))).unwrap();
        let net = Network::new(Seed(121));
        let platform = Platform::new(CreditAccount::upgraded());
        (w, net, platform)
    }

    #[test]
    fn ping_batch_returns_all_vps_and_advances_clock() {
        let (w, net, mut p) = setup();
        let vps: Vec<_> = w.probes.iter().copied().take(20).collect();
        let target = w.host(w.anchors[0]).ip;
        let batch = p.ping_from(&w, &net, &vps, target).unwrap();
        assert_eq!(batch.results.len(), 20);
        assert!(batch.duration().as_secs() > 60.0, "API latency missing");
        assert!(p.clock().now_secs() > 0.0);
        let replies = batch
            .results
            .iter()
            .filter(|(_, o)| matches!(o, PingOutcome::Reply(_)))
            .count();
        // A VP goes unanswered only if all its packets are lost; bound the
        // expected count from the configured packets-per-ping and loss rate
        // (generous 10x margin plus one) so config changes keep the test
        // honest instead of silently invalidating a hard-coded 18/20.
        let n = vps.len();
        let p_unanswered = net
            .params()
            .loss_rate
            .powi(PlatformConfig::default().packets_per_ping as i32);
        let allowed = (10.0 * n as f64 * p_unanswered).ceil() as usize + 1;
        assert!(
            replies >= n - allowed,
            "too many losses: {replies}/{n} (allowed {allowed})"
        );
    }

    #[test]
    fn charges_credits() {
        let (w, net, _) = setup();
        let mut p = Platform::new(CreditAccount::new(100));
        let vps: Vec<_> = w.probes.iter().copied().take(20).collect();
        let target = w.host(w.anchors[0]).ip;
        // 20 VPs * 3 packets = 60 credits.
        p.ping_from(&w, &net, &vps, target).unwrap();
        assert_eq!(p.credits().balance(), 40);
        // Second batch cannot be paid.
        let err = p.ping_from(&w, &net, &vps, target).unwrap_err();
        assert!(matches!(err, PlatformError::Credits(_)));
    }

    #[test]
    fn rejects_empty_vp_list() {
        let (w, net, mut p) = setup();
        let target = w.host(w.anchors[0]).ip;
        assert_eq!(
            p.ping_from(&w, &net, &[], target).unwrap_err(),
            PlatformError::NoVantagePoints
        );
    }

    #[test]
    fn traceroute_batch_works() {
        let (w, net, mut p) = setup();
        let vps: Vec<_> = w.anchors.iter().copied().take(5).collect();
        let target = w.host(w.anchors[9]).ip;
        let batch = p.traceroute_from(&w, &net, &vps, target).unwrap();
        assert_eq!(batch.results.len(), 5);
        for (_, tr) in &batch.results {
            assert!(!tr.hops.is_empty());
        }
    }

    #[test]
    fn mesh_has_expected_shape() {
        let (w, net, mut p) = setup();
        let anchors: Vec<_> = w.anchors.iter().copied().take(8).collect();
        let mesh = p.anchor_mesh(&w, &net, &anchors).unwrap();
        assert_eq!(mesh.rows(), 8);
        assert_eq!(mesh.cols(), 8);
        let mut measured = 0;
        for i in 0..8 {
            assert!(mesh.get(i, i).is_none(), "diagonal must be empty");
            measured += (0..8).filter(|&j| mesh.get(i, j).is_some()).count();
        }
        assert!(measured > 40, "mesh mostly failed: {measured}");
    }

    #[test]
    fn zero_rate_plan_is_identical_to_no_plan() {
        let (w, net, _) = setup();
        let vps: Vec<_> = w.probes.iter().copied().take(15).collect();
        let t = w.host(w.anchors[0]).ip;
        let run = |mut p: Platform| {
            let b = p.ping_from(&w, &net, &vps, t).unwrap();
            let rtts: Vec<_> = b.results.iter().map(|(v, o)| (*v, o.rtt())).collect();
            (rtts, p.clock().now_secs(), p.credits().balance())
        };
        let plain = run(Platform::new(CreditAccount::new(10_000)));
        let planned = run(Platform::with_faults(
            CreditAccount::new(10_000),
            PlatformConfig::default(),
            FaultPlan::with_config(Seed(9), crate::faults::FaultConfig::none()),
        ));
        assert_eq!(plain, planned);
    }

    #[test]
    fn faulty_platform_injects_typed_retryable_errors() {
        use crate::faults::FaultProfile;
        let (w, net, _) = setup();
        let plan = FaultPlan::new(Seed(121), FaultProfile::Hostile);
        let mut p =
            Platform::with_faults(CreditAccount::upgraded(), PlatformConfig::default(), plan);
        let vps: Vec<_> = w.probes.iter().copied().take(10).collect();
        let t = w.host(w.anchors[0]).ip;
        let mut failures = 0;
        let mut short_batches = 0;
        for _ in 0..60 {
            match p.ping_from(&w, &net, &vps, t) {
                Ok(b) => {
                    if b.results.len() < vps.len() {
                        short_batches += 1;
                    }
                }
                Err(e) => {
                    assert!(e.is_retryable(), "unexpected fatal error: {e}");
                    failures += 1;
                }
            }
        }
        assert!(failures > 0, "hostile plan never failed an API call");
        assert!(short_batches > 0, "hostile plan never shed a result");
    }

    #[test]
    fn refunds_keep_the_accounting_identity_under_faults() {
        use crate::faults::FaultProfile;
        let (w, net, _) = setup();
        let initial = 1_000_000;
        let plan = FaultPlan::new(Seed(5), FaultProfile::Hostile);
        let mut p =
            Platform::with_faults(CreditAccount::new(initial), PlatformConfig::default(), plan);
        let vps: Vec<_> = w.probes.iter().copied().take(12).collect();
        let t = w.host(w.anchors[0]).ip;
        for _ in 0..40 {
            let _ = p.ping_from(&w, &net, &vps, t);
            let _ = p.traceroute_from(&w, &net, &vps, t);
        }
        assert!(p.credits().refunded() > 0, "hostile run refunded nothing");
        assert_eq!(p.credits().balance() + p.credits().spent(), initial);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        use crate::faults::FaultProfile;
        let (w, net, _) = setup();
        let run = || {
            let plan = FaultPlan::new(Seed(121), FaultProfile::Flaky);
            let mut p =
                Platform::with_faults(CreditAccount::upgraded(), PlatformConfig::default(), plan);
            let vps: Vec<_> = w.probes.iter().copied().take(10).collect();
            let t = w.host(w.anchors[0]).ip;
            let mut trace = String::new();
            for _ in 0..30 {
                match p.ping_from(&w, &net, &vps, t) {
                    Ok(b) => trace.push_str(&format!("ok:{};", b.results.len())),
                    Err(e) => trace.push_str(&format!("err:{e};")),
                }
            }
            (trace, p.clock().now_secs(), p.credits().spent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batches_are_deterministic_in_sequence() {
        let (w, net, _) = setup();
        let run = || {
            let mut p = Platform::new(CreditAccount::upgraded());
            let vps: Vec<_> = w.probes.iter().copied().take(10).collect();
            let t = w.host(w.anchors[0]).ip;
            let b1 = p.ping_from(&w, &net, &vps, t).unwrap();
            let b2 = p.ping_from(&w, &net, &vps, t).unwrap();
            (
                b1.results
                    .iter()
                    .filter_map(|(_, o)| o.rtt().map(|m| m.value()))
                    .sum::<f64>(),
                b2.results
                    .iter()
                    .filter_map(|(_, o)| o.rtt().map(|m| m.value()))
                    .sum::<f64>(),
                p.clock().now_secs(),
            )
        };
        assert_eq!(run(), run());
    }
}
