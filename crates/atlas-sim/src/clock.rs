//! Virtual time.
//!
//! The simulation never reads wall-clock time; every duration (measurement
//! scheduling, API latency, mapping-service rate limits) advances a
//! [`VirtualClock`]. This keeps runs reproducible and lets the Figure 6c
//! experiment measure "time to geolocate a target" without actually
//! waiting 20 minutes.

use std::fmt;

/// A duration in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct VirtualDuration(pub f64);

impl VirtualDuration {
    /// Zero duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0.0);

    /// Builds a duration from seconds.
    pub fn from_secs(secs: f64) -> VirtualDuration {
        VirtualDuration(secs)
    }

    /// The duration in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }
}

impl std::ops::Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_secs: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in seconds since start.
    pub fn now_secs(&self) -> f64 {
        self.now_secs
    }

    /// Advances the clock.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite durations — time never goes
    /// backwards.
    pub fn advance(&mut self, d: VirtualDuration) {
        assert!(
            d.0.is_finite() && d.0 >= 0.0,
            "clock can only advance forward, got {}",
            d.0
        );
        self.now_secs += d.0;
    }

    /// Time elapsed since a previous reading.
    pub fn elapsed_since(&self, earlier_secs: f64) -> VirtualDuration {
        VirtualDuration((self.now_secs - earlier_secs).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_secs(), 0.0);
        c.advance(VirtualDuration::from_secs(12.5));
        c.advance(VirtualDuration::from_secs(0.5));
        assert_eq!(c.now_secs(), 13.0);
    }

    #[test]
    fn elapsed_since() {
        let mut c = VirtualClock::new();
        c.advance(VirtualDuration::from_secs(10.0));
        let mark = c.now_secs();
        c.advance(VirtualDuration::from_secs(7.0));
        assert_eq!(c.elapsed_since(mark).as_secs(), 7.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn rejects_negative_advance() {
        VirtualClock::new().advance(VirtualDuration::from_secs(-1.0));
    }

    #[test]
    fn duration_arithmetic() {
        let a = VirtualDuration::from_secs(1.0) + VirtualDuration::from_secs(2.0);
        assert_eq!(a.as_secs(), 3.0);
        assert_eq!(format!("{a}"), "3.0s");
    }
}
