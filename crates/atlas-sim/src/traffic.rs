//! Probing-rate model (§5.1.3).
//!
//! The deployability analysis of the million-scale VP selection hinges on
//! one number per vantage point: how many probe packets per second it can
//! sustain. The paper cites 500 pps for the original work's PlanetLab
//! nodes, 200–400 pps for an Atlas anchor, and 4–12 pps for an Atlas probe.

use geo_model::rng::{fnv1a, splitmix64};
use world_sim::host::HostKind;
use world_sim::ids::HostId;
use world_sim::World;

/// The sustained probing rate of a vantage point, packets per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRate(pub f64);

impl ProbeRate {
    /// The probing rate of the original million-scale paper's vantage
    /// points (500 pps).
    pub const MILLION_SCALE_VP: ProbeRate = ProbeRate(500.0);

    /// Deterministic per-host rate following the paper's cited ranges.
    pub fn of(world: &World, host: HostId) -> ProbeRate {
        let h = world.host(host);
        let u = unit(host.0 as u64);
        match h.kind {
            HostKind::Anchor => ProbeRate(200.0 + 200.0 * u),
            HostKind::Probe => ProbeRate(4.0 + 8.0 * u),
            // Other hosts are not measurement VPs; give them a probe-like
            // budget if ever asked.
            _ => ProbeRate(4.0 + 8.0 * u),
        }
    }

    /// Seconds needed to send `packets` packets at this rate.
    pub fn time_for(&self, packets: u64) -> f64 {
        packets as f64 / self.0
    }
}

fn unit(key: u64) -> f64 {
    (splitmix64(key ^ fnv1a(b"probe-rate")) >> 11) as f64 / (1u64 << 53) as f64
}

/// How long a fleet of VPs needs to probe `targets_per_vp` addresses with
/// `packets_per_target` packets each, assuming all VPs probe in parallel:
/// the slowest VP sets the pace.
pub fn fleet_time_secs(
    world: &World,
    vps: &[HostId],
    targets_per_vp: u64,
    packets_per_target: u64,
) -> f64 {
    vps.iter()
        .map(|&vp| ProbeRate::of(world, vp).time_for(targets_per_vp * packets_per_target))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(111))).unwrap()
    }

    #[test]
    fn anchors_are_much_faster_than_probes() {
        let w = world();
        for &a in &w.anchors {
            let r = ProbeRate::of(&w, a).0;
            assert!((200.0..=400.0).contains(&r), "anchor rate {r}");
        }
        for &p in &w.probes {
            let r = ProbeRate::of(&w, p).0;
            assert!((4.0..=12.0).contains(&r), "probe rate {r}");
        }
    }

    #[test]
    fn rates_are_deterministic() {
        let w = world();
        assert_eq!(
            ProbeRate::of(&w, w.probes[0]),
            ProbeRate::of(&w, w.probes[0])
        );
    }

    #[test]
    fn probes_cannot_sustain_million_scale() {
        // §5.1.3: the original VPs probed at 500 pps; no probe gets close.
        let w = world();
        for &p in &w.probes {
            assert!(ProbeRate::of(&w, p).0 < ProbeRate::MILLION_SCALE_VP.0 / 10.0);
        }
    }

    #[test]
    fn fleet_time_is_slowest_member() {
        let w = world();
        let vps: Vec<_> = w.probes.iter().copied().take(10).collect();
        let t = fleet_time_secs(&w, &vps, 100, 3);
        let slowest = vps
            .iter()
            .map(|&v| ProbeRate::of(&w, v).time_for(300))
            .fold(0.0, f64::max);
        assert_eq!(t, slowest);
        assert!(t > 0.0);
    }

    #[test]
    fn time_for_scales_linearly() {
        let r = ProbeRate(10.0);
        assert_eq!(r.time_for(100), 10.0);
        assert_eq!(r.time_for(0), 0.0);
    }
}
