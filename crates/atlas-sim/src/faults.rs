//! Deterministic fault injection for the measurement platform.
//!
//! The real RIPE Atlas breaks constantly: probes disconnect mid-campaign,
//! the API rate-limits and times out, result fetches come back partial or
//! garbled. The perfect-world simulation hides all of that, which means
//! nothing upstream is ever forced to handle it. A [`FaultPlan`] makes the
//! platform *break on schedule*: every fault decision is a pure function
//! of `(seed, fault domain, call key)` through [`geo_model::rng`], so a
//! faulty run is exactly as reproducible as a clean one — bit-identical
//! per seed at any `IPGEO_THREADS` setting, with no shared mutable state.
//!
//! The taxonomy (see DESIGN.md §9):
//!
//! - **API faults** — a whole measurement call fails transiently
//!   (rate-limit, server error, result-fetch timeout). Retryable.
//! - **Probe churn** — a vantage point is disconnected for a *window* of
//!   the campaign and contributes no result. Keyed on `(vp, window)` so
//!   probes reconnect in later windows.
//! - **Reply loss** — a measurement that did run loses its reply on the
//!   way back, beyond `net-sim`'s last-mile loss model.
//! - **Garbling** — a reply carries a malformed RTT (negative, NaN,
//!   absurd); consumers must validate, not trust.
//! - **Truncation** — the result fetch drops the tail of a batch.

use geo_model::rng::{splitmix64, KeyRng, Seed};
use geo_model::units::Ms;
use rand::RngCore;
use std::fmt;
use world_sim::ids::HostId;

/// Named fault presets, selectable as `--fault-profile` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No injected faults: the pre-existing perfect-world behaviour.
    None,
    /// Realistic bad day: occasional API failures, mild churn and loss.
    Flaky,
    /// Stress level: every mechanism fires often enough that unprotected
    /// pipelines visibly fall over.
    Hostile,
}

impl FaultProfile {
    /// Parses a CLI value.
    pub fn parse(s: &str) -> Result<FaultProfile, String> {
        match s {
            "none" => Ok(FaultProfile::None),
            "flaky" => Ok(FaultProfile::Flaky),
            "hostile" => Ok(FaultProfile::Hostile),
            other => Err(format!(
                "unknown fault profile `{other}` (expected none|flaky|hostile)"
            )),
        }
    }

    /// The rates this preset stands for.
    pub fn config(self) -> FaultConfig {
        match self {
            FaultProfile::None => FaultConfig::none(),
            FaultProfile::Flaky => FaultConfig::flaky(),
            FaultProfile::Hostile => FaultConfig::hostile(),
        }
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultProfile::None => "none",
            FaultProfile::Flaky => "flaky",
            FaultProfile::Hostile => "hostile",
        })
    }
}

/// Per-mechanism fault rates. All probabilities are per decision (an API
/// call, a `(vp, window)` pair, a single reply) in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one API call fails transiently.
    pub api_fault_rate: f64,
    /// Probability that a vantage point is disconnected for one churn
    /// window.
    pub churn_rate: f64,
    /// Length of one churn window in virtual seconds (must be positive).
    pub churn_window_secs: f64,
    /// Probability that a reply is lost beyond the last-mile loss model.
    pub reply_loss_rate: f64,
    /// Probability that one reply carries a malformed RTT.
    pub garble_rate: f64,
    /// Probability that a batch result fetch is truncated.
    pub truncation_rate: f64,
    /// Largest fraction of a batch a truncation can drop.
    pub max_truncation_fraction: f64,
}

impl FaultConfig {
    /// All rates zero — behaviour identical to a platform with no plan.
    pub fn none() -> FaultConfig {
        FaultConfig {
            api_fault_rate: 0.0,
            churn_rate: 0.0,
            churn_window_secs: 1800.0,
            reply_loss_rate: 0.0,
            garble_rate: 0.0,
            truncation_rate: 0.0,
            max_truncation_fraction: 0.0,
        }
    }

    /// The `flaky` preset: the bad-but-survivable day the paper's
    /// campaigns actually ran through.
    pub fn flaky() -> FaultConfig {
        FaultConfig {
            api_fault_rate: 0.10,
            churn_rate: 0.05,
            churn_window_secs: 1800.0,
            reply_loss_rate: 0.02,
            garble_rate: 0.01,
            truncation_rate: 0.05,
            max_truncation_fraction: 0.25,
        }
    }

    /// The `hostile` preset: stress rates for resilience testing.
    pub fn hostile() -> FaultConfig {
        FaultConfig {
            api_fault_rate: 0.35,
            churn_rate: 0.20,
            churn_window_secs: 900.0,
            reply_loss_rate: 0.10,
            garble_rate: 0.05,
            truncation_rate: 0.20,
            max_truncation_fraction: 0.50,
        }
    }

    /// True when every rate is zero (no decision can ever fire).
    pub fn is_zero(&self) -> bool {
        self.api_fault_rate <= 0.0
            && self.churn_rate <= 0.0
            && self.reply_loss_rate <= 0.0
            && self.garble_rate <= 0.0
            && self.truncation_rate <= 0.0
    }
}

/// The three transient ways an API call fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiFault {
    /// 429: the platform sheds load; retry after a backoff.
    RateLimited,
    /// 5xx: the measurement was never created.
    ServerError,
    /// The result fetch never completed.
    Timeout,
}

/// A seeded schedule of faults. Every decision method is a pure function
/// of the plan's seed and the caller-provided key, so the same plan gives
/// the same answers in any call order and from any thread.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: Seed,
    config: FaultConfig,
}

impl FaultPlan {
    /// A plan for one of the named profiles.
    pub fn new(seed: Seed, profile: FaultProfile) -> FaultPlan {
        FaultPlan::with_config(seed, profile.config())
    }

    /// A plan with explicit rates.
    pub fn with_config(seed: Seed, config: FaultConfig) -> FaultPlan {
        FaultPlan {
            seed: seed.derive("faults"),
            config,
        }
    }

    /// The rates in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when no fault can ever fire (all rates zero).
    pub fn is_zero(&self) -> bool {
        self.config.is_zero()
    }

    /// One uniform draw in `[0, 1)` for `(domain, key)`.
    fn unit(&self, domain: &str, key: u64) -> f64 {
        let mut rng = KeyRng::new(self.seed.derive(domain).0 ^ splitmix64(key));
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does the API call identified by `call` fail, and how?
    pub fn api_fault(&self, call: u64) -> Option<ApiFault> {
        if self.config.api_fault_rate <= 0.0 || self.unit("api", call) >= self.config.api_fault_rate
        {
            return None;
        }
        // An independent draw picks the failure kind.
        Some(match (self.unit("api-kind", call) * 3.0) as u32 {
            0 => ApiFault::RateLimited,
            1 => ApiFault::ServerError,
            _ => ApiFault::Timeout,
        })
    }

    /// Is `vp` disconnected for churn window `window`? Windows are
    /// caller-defined epochs (the platform uses virtual-clock intervals of
    /// [`FaultConfig::churn_window_secs`]); a probe down in one window
    /// reconnects in the next.
    pub fn vp_disconnected(&self, vp: HostId, window: u64) -> bool {
        self.config.churn_rate > 0.0
            && self.unit("churn", splitmix64(window) ^ vp.0 as u64) < self.config.churn_rate
    }

    /// Is the reply from `vp` for call `call` lost on the way back?
    pub fn reply_lost(&self, vp: HostId, call: u64) -> bool {
        self.config.reply_loss_rate > 0.0
            && self.unit("reply-loss", splitmix64(call) ^ vp.0 as u64) < self.config.reply_loss_rate
    }

    /// A malformed RTT to substitute for `vp`'s reply in call `call`, if
    /// this reply is garbled. The values are the classics of real
    /// measurement APIs: negative, NaN, and absurdly large.
    pub fn garbled_rtt(&self, vp: HostId, call: u64) -> Option<Ms> {
        if self.config.garble_rate <= 0.0 {
            return None;
        }
        let key = splitmix64(call) ^ vp.0 as u64;
        if self.unit("garble", key) >= self.config.garble_rate {
            return None;
        }
        Some(match (self.unit("garble-kind", key) * 3.0) as u32 {
            0 => Ms(-1.0),
            1 => Ms(f64::NAN),
            _ => Ms(86_400_000.0),
        })
    }

    /// How many leading results of an `n`-result batch survive the fetch.
    /// Truncation keeps at least one result; total loss is modelled by
    /// [`ApiFault::Timeout`] instead.
    pub fn delivered_len(&self, n: usize, call: u64) -> usize {
        if self.config.truncation_rate <= 0.0
            || n == 0
            || self.unit("truncate", call) >= self.config.truncation_rate
        {
            return n;
        }
        let frac = self.unit("truncate-len", call) * self.config.max_truncation_fraction;
        let dropped = (1 + (n as f64 * frac) as usize).min(n - 1);
        n - dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(profile: FaultProfile) -> FaultPlan {
        FaultPlan::new(Seed(77), profile)
    }

    #[test]
    fn zero_plan_never_fires() {
        let p = plan(FaultProfile::None);
        assert!(p.is_zero());
        for k in 0..2000 {
            assert!(p.api_fault(k).is_none());
            assert!(!p.vp_disconnected(HostId(k as u32), k));
            assert!(!p.reply_lost(HostId(k as u32), k));
            assert!(p.garbled_rtt(HostId(k as u32), k).is_none());
            assert_eq!(p.delivered_len(10, k), 10);
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_key() {
        let a = plan(FaultProfile::Hostile);
        let b = plan(FaultProfile::Hostile);
        // Query b in a scrambled order: answers must match a's.
        let keys: Vec<u64> = (0..500).rev().collect();
        for &k in &keys {
            assert_eq!(a.api_fault(k), b.api_fault(k));
            assert_eq!(
                a.vp_disconnected(HostId(3), k),
                b.vp_disconnected(HostId(3), k)
            );
            assert_eq!(a.delivered_len(20, k), b.delivered_len(20, k));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(Seed(1), FaultProfile::Hostile);
        let b = FaultPlan::new(Seed(2), FaultProfile::Hostile);
        let differs = (0..200).any(|k| a.api_fault(k) != b.api_fault(k));
        assert!(differs, "schedules identical across seeds");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let p = plan(FaultProfile::Hostile);
        let n = 20_000;
        let api = (0..n).filter(|&k| p.api_fault(k).is_some()).count();
        let frac = api as f64 / n as f64;
        assert!(
            (frac - 0.35).abs() < 0.02,
            "api fault rate {frac} far from 0.35"
        );
        let churn = (0..n)
            .filter(|&k| p.vp_disconnected(HostId((k % 97) as u32), k / 97))
            .count();
        let frac = churn as f64 / n as f64;
        assert!(
            (frac - 0.20).abs() < 0.02,
            "churn rate {frac} far from 0.20"
        );
    }

    #[test]
    fn all_api_fault_kinds_occur() {
        let p = plan(FaultProfile::Hostile);
        let mut seen = [false; 3];
        for k in 0..2000 {
            match p.api_fault(k) {
                Some(ApiFault::RateLimited) => seen[0] = true,
                Some(ApiFault::ServerError) => seen[1] = true,
                Some(ApiFault::Timeout) => seen[2] = true,
                None => {}
            }
        }
        assert_eq!(seen, [true; 3], "some fault kind never drawn");
    }

    #[test]
    fn churn_windows_reconnect_probes() {
        let p = plan(FaultProfile::Hostile);
        let vp = HostId(11);
        let down: Vec<u64> = (0..200).filter(|&w| p.vp_disconnected(vp, w)).collect();
        assert!(!down.is_empty(), "probe never disconnects under hostile");
        assert!(
            down.len() < 200,
            "probe never reconnects: down in every window"
        );
    }

    #[test]
    fn truncation_keeps_at_least_one_result() {
        let p = plan(FaultProfile::Hostile);
        for k in 0..2000 {
            for n in [1usize, 2, 3, 20] {
                let kept = p.delivered_len(n, k);
                assert!((1..=n).contains(&kept), "kept {kept} of {n}");
            }
        }
        // And truncation does fire at hostile rates.
        assert!(
            (0..2000).any(|k| p.delivered_len(20, k) < 20),
            "truncation never fired"
        );
    }

    #[test]
    fn garbled_rtts_are_malformed() {
        let p = plan(FaultProfile::Hostile);
        let mut seen = 0;
        for k in 0..5000 {
            if let Some(ms) = p.garbled_rtt(HostId((k % 13) as u32), k) {
                seen += 1;
                let v = ms.value();
                assert!(
                    !v.is_finite() || !(0.0..=1.0e6).contains(&v),
                    "garbled RTT {v} looks valid"
                );
            }
        }
        assert!(seen > 0, "garbling never fired");
    }

    #[test]
    fn profile_parsing_round_trips() {
        for p in [
            FaultProfile::None,
            FaultProfile::Flaky,
            FaultProfile::Hostile,
        ] {
            assert_eq!(FaultProfile::parse(&p.to_string()), Ok(p));
        }
        assert!(FaultProfile::parse("chaotic").is_err());
    }
}
