//! The credit economy.
//!
//! RIPE Atlas charges credits per measurement result. The replication
//! needed "hundreds of millions" of credits and a specially upgraded
//! account (§4.1.1); the credit ledger makes that cost a first-class,
//! reportable output of every experiment.

use std::fmt;

/// Credit cost schedule, following RIPE Atlas's published rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSchedule {
    /// Credits per ping packet.
    pub per_ping_packet: u64,
    /// Credits per traceroute.
    pub per_traceroute: u64,
}

impl Default for CostSchedule {
    fn default() -> CostSchedule {
        CostSchedule {
            // RIPE Atlas: a ping result costs packets * 1 credit...
            // effectively ~3 per 3-packet ping; a traceroute ~10.
            per_ping_packet: 1,
            per_traceroute: 10,
        }
    }
}

/// Error: the account ran out of credits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsufficientCredits {
    /// Credits the operation needed.
    pub needed: u64,
    /// Credits remaining in the account.
    pub available: u64,
}

impl fmt::Display for InsufficientCredits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient credits: need {}, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientCredits {}

/// A credit account with a balance and a spending ledger.
///
/// Accounting identity: `initial_balance == balance() + spent()` at all
/// times, where `spent()` is *net* of refunds; `refunded()` counts the
/// credits returned for measurements the platform failed to deliver.
#[derive(Debug, Clone)]
pub struct CreditAccount {
    balance: u64,
    spent: u64,
    refunded: u64,
    schedule: CostSchedule,
}

impl CreditAccount {
    /// An account with the given starting balance.
    pub fn new(balance: u64) -> CreditAccount {
        CreditAccount {
            balance,
            spent: 0,
            refunded: 0,
            schedule: CostSchedule::default(),
        }
    }

    /// The upgraded account RIPE granted the authors: effectively
    /// unconstrained for one replication run.
    pub fn upgraded() -> CreditAccount {
        CreditAccount::new(u64::MAX / 2)
    }

    /// Account with a custom cost schedule.
    pub fn with_schedule(balance: u64, schedule: CostSchedule) -> CreditAccount {
        CreditAccount {
            balance,
            spent: 0,
            refunded: 0,
            schedule,
        }
    }

    /// Remaining balance.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Total credits spent so far, net of refunds.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Total credits refunded for failed or undelivered measurements.
    pub fn refunded(&self) -> u64 {
        self.refunded
    }

    /// The cost schedule.
    pub fn schedule(&self) -> CostSchedule {
        self.schedule
    }

    /// Charges for `packets` ping packets.
    pub fn charge_pings(&mut self, packets: u64) -> Result<(), InsufficientCredits> {
        self.charge(packets.saturating_mul(self.schedule.per_ping_packet))
    }

    /// Charges for `count` traceroutes.
    pub fn charge_traceroutes(&mut self, count: u64) -> Result<(), InsufficientCredits> {
        self.charge(count.saturating_mul(self.schedule.per_traceroute))
    }

    /// Refunds `packets` ping packets that were charged but never
    /// delivered (API failure, disconnected probe).
    pub fn refund_pings(&mut self, packets: u64) {
        self.refund(packets.saturating_mul(self.schedule.per_ping_packet));
    }

    /// Refunds `count` traceroutes that were charged but never delivered.
    pub fn refund_traceroutes(&mut self, count: u64) {
        self.refund(count.saturating_mul(self.schedule.per_traceroute));
    }

    fn charge(&mut self, cost: u64) -> Result<(), InsufficientCredits> {
        if cost > self.balance {
            return Err(InsufficientCredits {
                needed: cost,
                available: self.balance,
            });
        }
        self.balance -= cost;
        self.spent += cost;
        Ok(())
    }

    /// Returns previously charged credits. A refund can never exceed what
    /// was actually spent, so the `initial == balance + spent` identity
    /// survives any interleaving of charges and refunds.
    fn refund(&mut self, amount: u64) {
        let amount = amount.min(self.spent);
        self.balance = self.balance.saturating_add(amount);
        self.spent -= amount;
        self.refunded += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_tracks() {
        let mut acc = CreditAccount::new(100);
        acc.charge_pings(30).unwrap();
        acc.charge_traceroutes(5).unwrap();
        assert_eq!(acc.balance(), 100 - 30 - 50);
        assert_eq!(acc.spent(), 80);
    }

    #[test]
    fn rejects_overdraft() {
        let mut acc = CreditAccount::new(5);
        let err = acc.charge_traceroutes(1).unwrap_err();
        assert_eq!(err.needed, 10);
        assert_eq!(err.available, 5);
        // Balance untouched on failure.
        assert_eq!(acc.balance(), 5);
        assert_eq!(acc.spent(), 0);
    }

    #[test]
    fn upgraded_account_is_practically_unlimited() {
        let mut acc = CreditAccount::upgraded();
        acc.charge_pings(500_000_000).unwrap();
        assert!(acc.balance() > 0);
    }

    #[test]
    fn refund_restores_balance_and_tracks() {
        let mut acc = CreditAccount::new(100);
        acc.charge_pings(30).unwrap();
        acc.refund_pings(10);
        assert_eq!(acc.balance(), 80);
        assert_eq!(acc.spent(), 20);
        assert_eq!(acc.refunded(), 10);
        acc.charge_traceroutes(2).unwrap();
        acc.refund_traceroutes(1);
        assert_eq!(acc.balance(), 70);
        assert_eq!(acc.spent(), 30);
        assert_eq!(acc.refunded(), 20);
        // Identity: initial == balance + spent.
        assert_eq!(acc.balance() + acc.spent(), 100);
    }

    #[test]
    fn refund_is_clamped_to_spent() {
        let mut acc = CreditAccount::new(50);
        acc.charge_pings(10).unwrap();
        acc.refund_pings(1_000_000);
        assert_eq!(acc.balance(), 50);
        assert_eq!(acc.spent(), 0);
        assert_eq!(acc.refunded(), 10);
    }

    #[test]
    fn custom_schedule() {
        let mut acc = CreditAccount::with_schedule(
            100,
            CostSchedule {
                per_ping_packet: 2,
                per_traceroute: 20,
            },
        );
        acc.charge_pings(10).unwrap();
        assert_eq!(acc.balance(), 80);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The ledger identity `initial == balance + spent` holds after
            /// every operation, for any interleaving of charges (which may
            /// overdraft and be rejected) and refunds (which clamp to what
            /// was actually spent).
            #[test]
            fn accounting_identity_survives_any_interleaving(
                initial in 0u64..100_000,
                ops in prop::collection::vec((0u8..4, 0u64..2_000), 0..64),
            ) {
                let mut acc = CreditAccount::new(initial);
                let mut refunded_before = 0;
                for (kind, amount) in ops {
                    match kind {
                        0 => { let _ = acc.charge_pings(amount); }
                        1 => { let _ = acc.charge_traceroutes(amount); }
                        2 => acc.refund_pings(amount),
                        _ => acc.refund_traceroutes(amount),
                    }
                    prop_assert_eq!(acc.balance() + acc.spent(), initial);
                    prop_assert!(acc.spent() <= initial);
                    prop_assert!(acc.refunded() >= refunded_before);
                    refunded_before = acc.refunded();
                }
            }
        }
    }
}
