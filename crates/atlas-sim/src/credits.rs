//! The credit economy.
//!
//! RIPE Atlas charges credits per measurement result. The replication
//! needed "hundreds of millions" of credits and a specially upgraded
//! account (§4.1.1); the credit ledger makes that cost a first-class,
//! reportable output of every experiment.

use std::fmt;

/// Credit cost schedule, following RIPE Atlas's published rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSchedule {
    /// Credits per ping packet.
    pub per_ping_packet: u64,
    /// Credits per traceroute.
    pub per_traceroute: u64,
}

impl Default for CostSchedule {
    fn default() -> CostSchedule {
        CostSchedule {
            // RIPE Atlas: a ping result costs packets * 1 credit...
            // effectively ~3 per 3-packet ping; a traceroute ~10.
            per_ping_packet: 1,
            per_traceroute: 10,
        }
    }
}

/// Error: the account ran out of credits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsufficientCredits {
    /// Credits the operation needed.
    pub needed: u64,
    /// Credits remaining in the account.
    pub available: u64,
}

impl fmt::Display for InsufficientCredits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient credits: need {}, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for InsufficientCredits {}

/// A credit account with a balance and a spending ledger.
#[derive(Debug, Clone)]
pub struct CreditAccount {
    balance: u64,
    spent: u64,
    schedule: CostSchedule,
}

impl CreditAccount {
    /// An account with the given starting balance.
    pub fn new(balance: u64) -> CreditAccount {
        CreditAccount {
            balance,
            spent: 0,
            schedule: CostSchedule::default(),
        }
    }

    /// The upgraded account RIPE granted the authors: effectively
    /// unconstrained for one replication run.
    pub fn upgraded() -> CreditAccount {
        CreditAccount::new(u64::MAX / 2)
    }

    /// Account with a custom cost schedule.
    pub fn with_schedule(balance: u64, schedule: CostSchedule) -> CreditAccount {
        CreditAccount {
            balance,
            spent: 0,
            schedule,
        }
    }

    /// Remaining balance.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Total credits spent so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// The cost schedule.
    pub fn schedule(&self) -> CostSchedule {
        self.schedule
    }

    /// Charges for `packets` ping packets.
    pub fn charge_pings(&mut self, packets: u64) -> Result<(), InsufficientCredits> {
        self.charge(packets.saturating_mul(self.schedule.per_ping_packet))
    }

    /// Charges for `count` traceroutes.
    pub fn charge_traceroutes(&mut self, count: u64) -> Result<(), InsufficientCredits> {
        self.charge(count.saturating_mul(self.schedule.per_traceroute))
    }

    fn charge(&mut self, cost: u64) -> Result<(), InsufficientCredits> {
        if cost > self.balance {
            return Err(InsufficientCredits {
                needed: cost,
                available: self.balance,
            });
        }
        self.balance -= cost;
        self.spent += cost;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_tracks() {
        let mut acc = CreditAccount::new(100);
        acc.charge_pings(30).unwrap();
        acc.charge_traceroutes(5).unwrap();
        assert_eq!(acc.balance(), 100 - 30 - 50);
        assert_eq!(acc.spent(), 80);
    }

    #[test]
    fn rejects_overdraft() {
        let mut acc = CreditAccount::new(5);
        let err = acc.charge_traceroutes(1).unwrap_err();
        assert_eq!(err.needed, 10);
        assert_eq!(err.available, 5);
        // Balance untouched on failure.
        assert_eq!(acc.balance(), 5);
        assert_eq!(acc.spent(), 0);
    }

    #[test]
    fn upgraded_account_is_practically_unlimited() {
        let mut acc = CreditAccount::upgraded();
        acc.charge_pings(500_000_000).unwrap();
        assert!(acc.balance() > 0);
    }

    #[test]
    fn custom_schedule() {
        let mut acc = CreditAccount::with_schedule(
            100,
            CostSchedule {
                per_ping_packet: 2,
                per_traceroute: 20,
            },
        );
        acc.charge_pings(10).unwrap();
        assert_eq!(acc.balance(), 80);
    }
}
