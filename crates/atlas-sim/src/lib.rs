//! # atlas-sim
//!
//! A RIPE-Atlas-like measurement platform over `net-sim`: the substitute
//! for the infrastructure dependency that shapes both scalability results
//! of the replication (§5.1.3 and §5.2.5).
//!
//! The platform models exactly the constraints the paper identifies:
//!
//! - **credits**: every packet costs credits; the replication burned
//!   "hundreds of millions" and needed a specially upgraded account;
//! - **probing rate**: an anchor sustains 200–400 pps, a probe only
//!   4–12 pps — which is why the million-scale paper's 500 pps
//!   vantage points cannot be replicated on Atlas (§5.1.3);
//! - **API latency**: creating a measurement and fetching its results
//!   takes minutes of wall-clock time, which is why the street-level
//!   technique's "1–2 seconds per target" becomes 20 minutes (§5.2.5).
//!
//! All time is virtual ([`clock::VirtualClock`]); nothing in the simulation
//! reads wall-clock time.

pub mod clock;
pub mod credits;
pub mod faults;
pub mod platform;
pub mod traffic;

pub use clock::VirtualClock;
pub use credits::CreditAccount;
pub use faults::{ApiFault, FaultConfig, FaultPlan, FaultProfile};
pub use platform::{MeasurementBatch, Platform, PlatformConfig, PlatformError};
pub use traffic::ProbeRate;
