//! The locality tests of the street-level paper (§3.2 there, §5.2.2 in the
//! replication).
//!
//! A candidate website only becomes a landmark if it appears to be served
//! from its owner's postal address. Three checks approximate that:
//!
//! 1. **zip consistency** — the entity's registered postal code must match
//!    the zip code of the sampled circle point; stale addresses fail;
//! 2. **hosting fingerprint** — one DNS query plus two HTTP fetches look
//!    for CDN/cloud serving fingerprints (headers, certificate chains,
//!    resolved-AS ownership). Detection is good but not perfect, which is
//!    why some far-hosted sites survive into the landmark set — and why
//!    Fig. 5b's latency check removes a further slice;
//! 3. **multi-zip appearance** — a website listed by entities in more than
//!    one zip code is a chain, not a locally hosted site.
//!
//! The tester counts DNS queries and fetches: the replication ran
//! 2,755,315 tests, a real scalability cost (§5.2.5).

use crate::ecosystem::{Entity, Hosting, WebEcosystem};
use geo_model::rng::{fnv1a, splitmix64, Seed};
use geo_model::units::Ms;
use net_sim::{Network, PingOutcome};
use world_sim::ids::ZipCode;
use world_sim::World;

/// Detection characteristics of the hosting-fingerprint test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestRates {
    /// Probability a CDN-served site is detected (and rejected).
    pub cdn_detection: f64,
    /// Probability a cloud-served site is detected (and rejected).
    pub cloud_detection: f64,
    /// Probability a genuinely local site is wrongly rejected.
    pub local_false_reject: f64,
    /// Fraction of entities whose registered postal address is stale
    /// (fails the zip-consistency test).
    pub stale_address: f64,
}

impl Default for TestRates {
    fn default() -> TestRates {
        TestRates {
            cdn_detection: 0.985,
            cloud_detection: 0.95,
            local_false_reject: 0.03,
            stale_address: 0.04,
        }
    }
}

/// Runs locality tests and accounts their cost.
#[derive(Debug, Clone)]
pub struct LocalityTester {
    seed: Seed,
    rates: TestRates,
    tests_run: u64,
    dns_queries: u64,
    http_fetches: u64,
}

/// The verdict of the three tests for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Passed all three tests: usable as a landmark.
    Landmark,
    /// Rejected by the zip-consistency test.
    ZipMismatch,
    /// Rejected by the hosting-fingerprint test.
    HostingFingerprint,
    /// Rejected by the multi-zip test.
    MultiZip,
}

impl LocalityTester {
    /// A tester with default rates.
    pub fn new(seed: Seed) -> LocalityTester {
        LocalityTester::with_rates(seed, TestRates::default())
    }

    /// A tester with explicit rates.
    pub fn with_rates(seed: Seed, rates: TestRates) -> LocalityTester {
        LocalityTester {
            seed: seed.derive("locality-tests"),
            rates,
            tests_run: 0,
            dns_queries: 0,
            http_fetches: 0,
        }
    }

    /// Number of candidates tested.
    pub fn tests_run(&self) -> u64 {
        self.tests_run
    }

    /// DNS queries issued (one per test).
    pub fn dns_queries(&self) -> u64 {
        self.dns_queries
    }

    /// HTTP fetches issued (two per test).
    pub fn http_fetches(&self) -> u64 {
        self.http_fetches
    }

    fn unit(&self, domain: &str, key: u64) -> f64 {
        let h = splitmix64(self.seed.0 ^ splitmix64(key ^ fnv1a(domain.as_bytes())));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Tests one candidate entity found via `queried_zip`.
    pub fn test(&mut self, eco: &WebEcosystem, entity: &Entity, queried_zip: ZipCode) -> Verdict {
        self.tests_run += 1;
        self.dns_queries += 1;
        self.http_fetches += 2;

        // Test 1: zip consistency. The entity's registered zip must match
        // the queried one; stale registrations fail regardless.
        let stale = self.unit("stale-address", entity.id.0 as u64) < self.rates.stale_address;
        if stale || entity.zip != queried_zip {
            return Verdict::ZipMismatch;
        }

        // Test 3 runs before the fetch result is interpreted in practice
        // (the paper checks its query cache): multi-zip appearance.
        let site = eco.website(entity.website);
        if site.zip_appearances > 1 {
            return Verdict::MultiZip;
        }

        // Test 2: hosting fingerprint.
        let detected = match site.hosting {
            Hosting::Local => {
                self.unit("fingerprint-local", site.id.0 as u64) < self.rates.local_false_reject
            }
            Hosting::Cdn => {
                self.unit("fingerprint-cdn", site.id.0 as u64) < self.rates.cdn_detection
            }
            Hosting::Cloud => {
                self.unit("fingerprint-cloud", site.id.0 as u64) < self.rates.cloud_detection
            }
        };
        if detected {
            return Verdict::HostingFingerprint;
        }
        Verdict::Landmark
    }

    /// The replication's additional latency check (Fig. 5b): ping the
    /// landmark's website from the target anchor and keep it only if the
    /// RTT is below 1 ms.
    pub fn latency_check(
        &self,
        world: &World,
        net: &Network,
        eco: &WebEcosystem,
        target: world_sim::ids::HostId,
        entity: &Entity,
    ) -> bool {
        let site = eco.website(entity.website);
        let ip = world.host(site.server).ip;
        match net.ping_min(world, target, ip, 3, splitmix64(entity.id.0 as u64)) {
            PingOutcome::Reply(rtt) => rtt < Ms(1.0),
            PingOutcome::Timeout => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::{WebConfig, WebEcosystem};
    use world_sim::{World, WorldConfig};

    fn build() -> (World, WebEcosystem) {
        let mut w = World::generate(WorldConfig::small(Seed(161))).unwrap();
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
        (w, eco)
    }

    #[test]
    fn pass_rate_is_a_small_fraction() {
        let (w, eco) = build();
        let mut tester = LocalityTester::new(Seed(161));
        let mut passed = 0;
        let mut total = 0;
        for e in &eco.entities {
            total += 1;
            if tester.test(&eco, e, e.zip) == Verdict::Landmark {
                passed += 1;
            }
        }
        let rate = passed as f64 / total as f64;
        assert!(
            (0.005..0.12).contains(&rate),
            "pass rate {rate} out of expected band"
        );
        assert_eq!(tester.tests_run(), total as u64);
        assert_eq!(tester.dns_queries(), total as u64);
        assert_eq!(tester.http_fetches(), 2 * total as u64);
        let _ = w;
    }

    #[test]
    fn most_passed_are_local_most_local_pass() {
        let (_, eco) = build();
        let mut tester = LocalityTester::new(Seed(161));
        let mut local_pass = 0;
        let mut local_total = 0;
        let mut passed_local = 0;
        let mut passed_total = 0;
        for e in &eco.entities {
            let site = eco.website(e.website);
            let v = tester.test(&eco, e, e.zip);
            if site.hosting == Hosting::Local && site.zip_appearances == 1 {
                local_total += 1;
                if v == Verdict::Landmark {
                    local_pass += 1;
                }
            }
            if v == Verdict::Landmark {
                passed_total += 1;
                if site.hosting == Hosting::Local {
                    passed_local += 1;
                }
            }
        }
        assert!(local_total > 0 && passed_total > 0);
        assert!(
            local_pass as f64 / local_total as f64 > 0.85,
            "too many local sites rejected"
        );
        assert!(
            passed_local as f64 / passed_total as f64 > 0.25,
            "passed set dominated by false landmarks"
        );
    }

    #[test]
    fn wrong_zip_always_fails() {
        let (_, eco) = build();
        let mut tester = LocalityTester::new(Seed(161));
        let e = &eco.entities[0];
        let other = eco
            .entities
            .iter()
            .find(|x| x.zip != e.zip)
            .expect("several zips exist");
        assert_eq!(tester.test(&eco, e, other.zip), Verdict::ZipMismatch);
    }

    #[test]
    fn chains_fail_multizip() {
        let (_, eco) = build();
        let mut tester = LocalityTester::new(Seed(161));
        let chain_entity = eco
            .entities
            .iter()
            .find(|e| eco.website(e.website).zip_appearances > 1)
            .expect("chains exist");
        let v = tester.test(&eco, chain_entity, chain_entity.zip);
        assert!(matches!(v, Verdict::MultiZip | Verdict::ZipMismatch));
    }

    #[test]
    fn verdicts_are_deterministic() {
        let (_, eco) = build();
        let mut t1 = LocalityTester::new(Seed(7));
        let mut t2 = LocalityTester::new(Seed(7));
        for e in eco.entities.iter().take(300) {
            assert_eq!(t1.test(&eco, e, e.zip), t2.test(&eco, e, e.zip));
        }
    }

    #[test]
    fn latency_check_accepts_same_city_local_sites() {
        let (w, eco) = build();
        let tester = LocalityTester::new(Seed(161));
        let net = Network::new(Seed(161));
        // Find an anchor and a local website in its city.
        let mut any_checked = false;
        for &aid in &w.anchors {
            let anchor = w.host(aid);
            for e in eco.entities_in_city(anchor.city) {
                let e = eco.entity(*e);
                let site = eco.website(e.website);
                if site.hosting == Hosting::Local {
                    let _ = tester.latency_check(&w, &net, &eco, aid, e);
                    any_checked = true;
                    break;
                }
            }
            if any_checked {
                break;
            }
        }
        // The check itself must at least be runnable on this world.
        assert!(any_checked, "no local site co-located with an anchor");
    }
}
