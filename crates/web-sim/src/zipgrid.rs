//! Zip codes: the mapping service's spatial granularity.
//!
//! A zip code is the nearest city plus a ~2 km grid cell in the local
//! tangent plane around that city's center. Both the street-level paper's
//! tier 2/3 (map circle points to zip codes, look around them for
//! websites) and its first locality test (does the entity's postal zip
//! match the point's zip?) operate at this granularity.

use geo_model::point::GeoPoint;
use world_sim::ids::ZipCode;
use world_sim::World;

/// Edge length of a zip cell, km.
pub const ZIP_CELL_KM: f64 = 2.0;
/// Zip cells extend ±this many cells from the city center (±64 km).
const HALF_SPAN: i32 = 32;

/// The zip code containing a point: nearest city + local grid cell.
/// Returns `None` only if the world has no cities.
pub fn zip_of(world: &World, p: &GeoPoint) -> Option<ZipCode> {
    let (city, _) = world.city_index.nearest(p)?;
    let center = world.city(city).center;
    // Local equirectangular offsets, km.
    let dy = (p.lat() - center.lat()) * 110.574;
    let dx = (p.lon() - center.lon()) * 111.320 * center.lat().to_radians().cos();
    let cx = (dx / ZIP_CELL_KM).floor() as i32;
    let cy = (dy / ZIP_CELL_KM).floor() as i32;
    let cx = cx.clamp(-HALF_SPAN, HALF_SPAN - 1) + HALF_SPAN;
    let cy = cy.clamp(-HALF_SPAN, HALF_SPAN - 1) + HALF_SPAN;
    Some(ZipCode {
        city,
        cell: (cx as u16) << 8 | cy as u16,
    })
}

/// Approximate center of a zip cell (inverse of [`zip_of`] up to cell
/// quantization) — used by tests and by POI placement.
pub fn zip_center(world: &World, zip: ZipCode) -> GeoPoint {
    let center = world.city(zip.city).center;
    let cx = (zip.cell >> 8) as i32 - HALF_SPAN;
    let cy = (zip.cell & 0xFF) as i32 - HALF_SPAN;
    let dx_km = (cx as f64 + 0.5) * ZIP_CELL_KM;
    let dy_km = (cy as f64 + 0.5) * ZIP_CELL_KM;
    let lat = center.lat() + dy_km / 110.574;
    let lon = center.lon() + dx_km / (111.320 * center.lat().to_radians().cos());
    GeoPoint::new(lat, lon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use geo_model::units::Km;
    use world_sim::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(131))).unwrap()
    }

    #[test]
    fn same_point_same_zip() {
        let w = world();
        let p = w.cities[0].center;
        assert_eq!(zip_of(&w, &p), zip_of(&w, &p));
    }

    #[test]
    fn nearby_points_share_zip_distant_points_do_not() {
        let w = world();
        let base = w.cities[0].center;
        let near = base.destination(45.0, Km(0.3));
        let far = base.destination(45.0, Km(12.0));
        // Not guaranteed for points straddling a cell edge, but from the
        // center 0.3 km stays in-cell while 12 km certainly leaves it.
        let zb = zip_of(&w, &base).unwrap();
        let zf = zip_of(&w, &far).unwrap();
        assert_ne!(zb, zf);
        let zn = zip_of(&w, &near).unwrap();
        assert_eq!(zb.city, zn.city);
    }

    #[test]
    fn zip_center_roundtrip() {
        let w = world();
        let p = w.cities[1].center.destination(120.0, Km(5.0));
        let zip = zip_of(&w, &p).unwrap();
        let c = zip_center(&w, zip);
        // Cell diagonal is ~2.8 km; the center must be within that.
        assert!(
            p.distance(&c).value() <= 2.9,
            "zip center {} too far from {}",
            c,
            p
        );
        // And the center maps back to the same zip.
        assert_eq!(zip_of(&w, &c), Some(zip));
    }

    #[test]
    fn far_rural_point_clamps_to_edge_cell() {
        let w = world();
        let p = w.cities[0].center.destination(90.0, Km(500.0));
        // Still resolves (nearest city may differ); no panic, valid cell.
        let zip = zip_of(&w, &p).unwrap();
        let _ = zip_center(&w, zip);
    }
}
