//! # web-sim
//!
//! The web ecosystem and mapping services that the street-level technique
//! (Wang et al., NSDI 2011) depends on, rebuilt over the synthetic world:
//!
//! - **entities**: businesses, universities and government offices with
//!   postal addresses, generated per city in proportion to population;
//! - **websites**: each entity lists one. Hosting decides everything:
//!   a *local* site is served from the entity's premises (a usable
//!   landmark), a *cloud* site from a remote datacenter, a *CDN* site from
//!   an anycast front end, and *chain* sites are shared by many entities
//!   across cities — the main reason the paper's locality tests reject
//!   97.5% of candidates;
//! - **services**: a Nominatim-like reverse geocoder (point → zip code)
//!   and an Overpass-like POI query (zip code → entities with websites),
//!   both metering the ~8 requests/second the paper observed;
//! - **locality tests** (§3.2 of the street-level paper): zip-code
//!   consistency, CDN content detection, and multi-zip appearance, plus
//!   the replication's additional ≤1 ms latency check (Fig. 5b).

pub mod ecosystem;
pub mod locality;
pub mod services;
pub mod zipgrid;

pub use ecosystem::{Entity, EntityId, EntityKind, Hosting, WebEcosystem, WebsiteId};
pub use services::{MappingServices, QueryMeter};
pub use zipgrid::zip_of;
