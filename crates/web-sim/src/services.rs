//! The mapping services: reverse geocoding and POI search.
//!
//! Stand-ins for the replication's local Nominatim instance and the public
//! Overpass API. Both meter their queries: the paper observed rate
//! limiting at ~8 requests/second (§4.2.4), ran 753,428 reverse-geocoding
//! queries, and that metering is what makes the street-level technique
//! take 20 minutes per target (Fig. 6c).

use crate::ecosystem::{EntityId, WebEcosystem};
use crate::zipgrid::zip_of;
use geo_model::point::GeoPoint;
use world_sim::ids::ZipCode;
use world_sim::World;

/// A query counter with a sustained rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryMeter {
    queries: u64,
    rate_per_sec: f64,
}

impl QueryMeter {
    /// A meter with the given sustained rate.
    pub fn new(rate_per_sec: f64) -> QueryMeter {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        QueryMeter {
            queries: 0,
            rate_per_sec,
        }
    }

    /// Records one query.
    pub fn record(&mut self) {
        self.queries += 1;
    }

    /// Total queries so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Virtual seconds consumed by the recorded queries at the rate limit.
    pub fn time_spent_secs(&self) -> f64 {
        self.queries as f64 / self.rate_per_sec
    }

    /// Seconds a given number of queries would take.
    pub fn time_for(&self, queries: u64) -> f64 {
        queries as f64 / self.rate_per_sec
    }
}

/// The two mapping services with their meters.
#[derive(Debug, Clone)]
pub struct MappingServices {
    /// Reverse geocoding meter (Nominatim).
    pub geocoder: QueryMeter,
    /// POI search meter (Overpass).
    pub poi: QueryMeter,
}

/// The rate limit the paper observed on the public Overpass instance.
pub const OBSERVED_RATE_PER_SEC: f64 = 8.0;

impl Default for MappingServices {
    fn default() -> MappingServices {
        MappingServices::new()
    }
}

impl MappingServices {
    /// Services at the observed ~8 req/s.
    pub fn new() -> MappingServices {
        MappingServices {
            geocoder: QueryMeter::new(OBSERVED_RATE_PER_SEC),
            poi: QueryMeter::new(OBSERVED_RATE_PER_SEC),
        }
    }

    /// Reverse geocoding: point → zip code. One metered query.
    pub fn reverse_geocode(&mut self, world: &World, p: &GeoPoint) -> Option<ZipCode> {
        self.geocoder.record();
        zip_of(world, p)
    }

    /// POI search: all entities with a website in the zip code. One
    /// metered query.
    pub fn pois_with_website(&mut self, eco: &WebEcosystem, zip: ZipCode) -> Vec<EntityId> {
        self.poi.record();
        eco.entities_in_zip(zip).to_vec()
    }

    /// Total virtual time the mapping-service rate limits cost so far.
    pub fn total_time_secs(&self) -> f64 {
        self.geocoder.time_spent_secs() + self.poi.time_spent_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::WebConfig;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn build() -> (World, WebEcosystem) {
        let mut w = World::generate(WorldConfig::small(Seed(151))).unwrap();
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
        (w, eco)
    }

    #[test]
    fn geocode_meters_and_resolves() {
        let (w, _) = build();
        let mut svc = MappingServices::new();
        let p = w.cities[0].center;
        let zip = svc.reverse_geocode(&w, &p).unwrap();
        assert_eq!(zip.city, w.cities[0].id);
        assert_eq!(svc.geocoder.queries(), 1);
        assert!(svc.total_time_secs() > 0.0);
    }

    #[test]
    fn poi_search_returns_zip_entities() {
        let (w, eco) = build();
        let mut svc = MappingServices::new();
        let e = &eco.entities[0];
        let got = svc.pois_with_website(&eco, e.zip);
        assert!(got.contains(&e.id));
        assert_eq!(svc.poi.queries(), 1);
        let _ = w;
    }

    #[test]
    fn meter_time_matches_rate() {
        let mut m = QueryMeter::new(8.0);
        for _ in 0..80 {
            m.record();
        }
        assert_eq!(m.queries(), 80);
        assert!((m.time_spent_secs() - 10.0).abs() < 1e-9);
        assert_eq!(m.time_for(16), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn meter_rejects_zero_rate() {
        let _ = QueryMeter::new(0.0);
    }
}
