//! Entities, websites, and hosting.
//!
//! Tier 2 of the street-level technique mines a mapping service for
//! "points of interest with a website" and keeps those that appear locally
//! hosted. The generator creates that universe: per-city entity
//! populations, each entity pointing at a website whose hosting model
//! determines whether it can ever be a useful landmark:
//!
//! - `Local`: served from the entity's premises — a *true* landmark;
//! - `Cloud`: served from a cloud datacenter, often another city;
//! - `Cdn`: served from an anycast front end in the nearest big metro;
//! - chain websites are shared by entities in many cities (franchises),
//!   the main prey of the multi-zip locality test.
//!
//! Websites share server hosts per (AS, city) — virtual hosting — except
//! local sites, which each get a host at their entity's location.

use crate::zipgrid::zip_of;
use geo_model::point::GeoPoint;
use geo_model::units::Km;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use world_sim::asn::AsCategory;
use world_sim::ids::{AsId, CityId, HostId, ZipCode};
use world_sim::World;

/// Identifier of an entity (index into the ecosystem's entity vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Identifier of a website (index into the ecosystem's website vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WebsiteId(pub u32);

/// The categories the street-level paper mined from Geonames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A business.
    Business,
    /// A university (reliably locally hosted in 2011; less so now).
    University,
    /// A government office.
    GovernmentOffice,
}

/// How a website is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hosting {
    /// Served from the owning entity's premises.
    Local,
    /// Served from a cloud datacenter.
    Cloud,
    /// Served from a CDN's anycast edge.
    Cdn,
}

/// A website.
#[derive(Debug, Clone)]
pub struct Website {
    /// Identifier.
    pub id: WebsiteId,
    /// Domain name.
    pub domain: String,
    /// Hosting model.
    pub hosting: Hosting,
    /// The host serving the site (shared for cloud/CDN).
    pub server: HostId,
    /// Number of distinct zip codes in which entities list this website
    /// (chains appear in many — the third locality test).
    pub zip_appearances: u32,
}

/// A point of interest with a postal address and a website.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Identifier.
    pub id: EntityId,
    /// Kind.
    pub kind: EntityKind,
    /// Physical location (street address).
    pub location: GeoPoint,
    /// City of the address.
    pub city: CityId,
    /// Postal code of the address.
    pub zip: ZipCode,
    /// The entity's website.
    pub website: WebsiteId,
}

/// Generation knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct WebConfig {
    /// Entities per inhabitant (e.g. 1/2500).
    pub entities_per_capita: f64,
    /// Per-city entity floor and cap.
    pub min_entities_per_city: usize,
    /// Per-city entity cap.
    pub max_entities_per_city: usize,
    /// Probability that a non-chain website is locally hosted.
    pub p_local: f64,
    /// Probability that a non-chain website is cloud hosted.
    pub p_cloud: f64,
    /// Fraction of entities belonging to a chain (shared website).
    pub chain_fraction: f64,
    /// Mean number of entities per chain.
    pub mean_chain_size: usize,
}

impl Default for WebConfig {
    fn default() -> WebConfig {
        WebConfig {
            entities_per_capita: 1.0 / 300.0,
            min_entities_per_city: 30,
            max_entities_per_city: 30_000,
            p_local: 0.022,
            p_cloud: 0.28,
            chain_fraction: 0.30,
            mean_chain_size: 40,
        }
    }
}

impl WebConfig {
    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.p_local + self.p_cloud > 1.0 || self.p_local < 0.0 || self.p_cloud < 0.0 {
            return Err("hosting probabilities must be non-negative and sum <= 1".into());
        }
        if !(0.0..=1.0).contains(&self.chain_fraction) {
            return Err("chain_fraction must be a probability".into());
        }
        if self.mean_chain_size == 0 {
            return Err("chains must have at least one member".into());
        }
        Ok(())
    }
}

/// The generated web ecosystem.
#[derive(Debug, Clone)]
pub struct WebEcosystem {
    /// All entities.
    pub entities: Vec<Entity>,
    /// All websites.
    pub websites: Vec<Website>,
    by_zip: HashMap<ZipCode, Vec<EntityId>>,
    by_city: HashMap<CityId, Vec<EntityId>>,
}

impl WebEcosystem {
    /// Generates the ecosystem, adding server hosts to the world.
    pub fn generate(world: &mut World, cfg: &WebConfig) -> Result<WebEcosystem, String> {
        cfg.validate()?;
        let mut rng = world.config.seed.derive("web-ecosystem").rng();

        // Infrastructure lookup tables.
        let mut local_as_in_city: HashMap<CityId, Vec<AsId>> = HashMap::new();
        let mut cloud_sites: Vec<(AsId, CityId)> = Vec::new();
        let mut cdn_pops: Vec<(AsId, Vec<CityId>)> = Vec::new();
        for a in &world.ases {
            match a.category {
                AsCategory::Access | AsCategory::Enterprise => {
                    for &c in &a.pops {
                        local_as_in_city.entry(c).or_default().push(a.id);
                    }
                }
                AsCategory::Content if a.is_cloud => {
                    for &c in &a.pops {
                        cloud_sites.push((a.id, c));
                    }
                }
                AsCategory::Content if a.is_cdn => {
                    cdn_pops.push((a.id, a.pops.clone()));
                }
                _ => {}
            }
        }
        if cloud_sites.is_empty() {
            // Tiny worlds may lack cloud ASes; fall back to any content AS.
            for a in &world.ases {
                if a.category == AsCategory::Content {
                    cloud_sites.push((a.id, a.pops[0]));
                }
            }
        }
        if cloud_sites.is_empty() {
            return Err("world has no content ASes to host cloud websites".into());
        }
        if cdn_pops.is_empty() {
            // Fall back: treat the widest content AS as a CDN.
            let widest = world
                .ases
                .iter()
                .filter(|a| a.category == AsCategory::Content)
                .max_by_key(|a| a.pops.len())
                .ok_or("world has no content ASes for CDN fallback")?;
            cdn_pops.push((widest.id, widest.pops.clone()));
        }

        // Shared server hosts per (AS, city).
        let mut shared_servers: HashMap<(AsId, CityId), HostId> = HashMap::new();

        // `nearest_of` is a linear scan over a CDN's PoP list and city
        // centers never move, so the nearest edge per (CDN, entity city) is
        // a constant; memoize it in a flat table (u32::MAX = unfilled).
        let mut nearest_edge: Vec<u32> = vec![u32::MAX; cdn_pops.len() * world.cities.len()];

        let mut entities: Vec<Entity> = Vec::new();
        let mut websites: Vec<Website> = Vec::new();
        let mut by_zip: HashMap<ZipCode, Vec<EntityId>> = HashMap::new();
        let mut by_city: HashMap<CityId, Vec<EntityId>> = HashMap::new();
        let mut website_zips: Vec<HashSet<ZipCode>> = Vec::new();

        // Chain websites are created lazily as a pool and reused.
        let mut chain_pool: Vec<WebsiteId> = Vec::new();

        let city_count = world.cities.len();
        for ci in 0..city_count {
            let city = world.cities[ci].clone();
            let n = ((city.population * cfg.entities_per_capita) as usize)
                .clamp(cfg.min_entities_per_city, cfg.max_entities_per_city);
            for _ in 0..n {
                let eid = EntityId(entities.len() as u32);
                let kind = match rng.gen_range(0..100) {
                    0..=84 => EntityKind::Business,
                    85..=89 => EntityKind::University,
                    _ => EntityKind::GovernmentOffice,
                };
                // Addresses cluster toward the center.
                let r = world.config.city_radius_km * rng.gen_range(0.0f64..1.0).powf(0.75);
                let location = city.center.destination(rng.gen_range(0.0..360.0), Km(r));
                let zip = zip_of(world, &location).expect("world has cities");

                let is_chain_member = rng.gen::<f64>() < cfg.chain_fraction;
                let website = if is_chain_member && !chain_pool.is_empty() && {
                    // Reuse an existing chain unless it is time to found a
                    // new one (expected chain size controls the rate).
                    rng.gen_range(0..cfg.mean_chain_size) != 0
                } {
                    chain_pool[rng.gen_range(0..chain_pool.len())]
                } else {
                    // Found a new website (chain seed or independent).
                    let hosting = if is_chain_member {
                        // Chains are essentially never locally hosted.
                        if rng.gen::<f64>() < 0.5 {
                            Hosting::Cdn
                        } else {
                            Hosting::Cloud
                        }
                    } else {
                        let u: f64 = rng.gen();
                        if u < cfg.p_local {
                            Hosting::Local
                        } else if u < cfg.p_local + cfg.p_cloud {
                            Hosting::Cloud
                        } else {
                            Hosting::Cdn
                        }
                    };
                    let wid = WebsiteId(websites.len() as u32);
                    let server = match hosting {
                        Hosting::Local => {
                            let asn = local_as_in_city
                                .get(&city.id)
                                .and_then(|v| {
                                    if v.is_empty() {
                                        None
                                    } else {
                                        Some(v[rng.gen_range(0..v.len())])
                                    }
                                })
                                .unwrap_or_else(|| world.ases[0].id);
                            world.add_web_server(asn, city.id, location)
                        }
                        Hosting::Cloud => {
                            let (asn, dc_city) = cloud_sites[rng.gen_range(0..cloud_sites.len())];
                            *shared_servers.entry((asn, dc_city)).or_insert_with(|| {
                                let loc = world.city(dc_city).center;
                                world.add_web_server(asn, dc_city, loc)
                            })
                        }
                        Hosting::Cdn => {
                            // Anycast approximation: the edge nearest the
                            // entity's city.
                            let cdn = rng.gen_range(0..cdn_pops.len());
                            let (asn, pops) = &cdn_pops[cdn];
                            let slot = &mut nearest_edge[cdn * city_count + ci];
                            if *slot == u32::MAX {
                                *slot = nearest_of(world, pops, city.id).0;
                            }
                            let edge = CityId(*slot);
                            *shared_servers.entry((*asn, edge)).or_insert_with(|| {
                                let loc = world.city(edge).center;
                                world.add_web_server(*asn, edge, loc)
                            })
                        }
                    };
                    let domain = match hosting {
                        Hosting::Local => format!("www.local-{}.example", wid.0),
                        Hosting::Cloud => format!("www.cloud-{}.example", wid.0),
                        Hosting::Cdn => format!("www.cdn-{}.example", wid.0),
                    };
                    websites.push(Website {
                        id: wid,
                        domain,
                        hosting,
                        server,
                        zip_appearances: 0,
                    });
                    website_zips.push(HashSet::new());
                    if is_chain_member {
                        chain_pool.push(wid);
                    }
                    wid
                };

                website_zips[website.0 as usize].insert(zip);
                by_zip.entry(zip).or_default().push(eid);
                by_city.entry(city.id).or_default().push(eid);
                entities.push(Entity {
                    id: eid,
                    kind,
                    location,
                    city: city.id,
                    zip,
                    website,
                });
            }
        }

        for (w, zips) in websites.iter_mut().zip(&website_zips) {
            w.zip_appearances = zips.len() as u32;
        }

        Ok(WebEcosystem {
            entities,
            websites,
            by_zip,
            by_city,
        })
    }

    /// Entities registered in a zip code.
    pub fn entities_in_zip(&self, zip: ZipCode) -> &[EntityId] {
        self.by_zip.get(&zip).map_or(&[], Vec::as_slice)
    }

    /// Entities registered in a city.
    pub fn entities_in_city(&self, city: CityId) -> &[EntityId] {
        self.by_city.get(&city).map_or(&[], Vec::as_slice)
    }

    /// Entity lookup.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.0 as usize]
    }

    /// Website lookup.
    pub fn website(&self, id: WebsiteId) -> &Website {
        &self.websites[id.0 as usize]
    }

    /// All entities within `radius` of a point (scans cities in range).
    pub fn entities_within(&self, world: &World, p: &GeoPoint, radius: Km) -> Vec<(EntityId, Km)> {
        let mut out = Vec::new();
        // Entities lie within city_radius of their city center.
        let slack = Km(world.config.city_radius_km);
        for (city, _) in world.city_index.within(p, radius + slack) {
            for &eid in self.entities_in_city(city) {
                let d = self.entity(eid).location.distance(p);
                if d <= radius {
                    out.push((eid, d));
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

fn nearest_of(world: &World, cities: &[CityId], to: CityId) -> CityId {
    let target = world.city(to).center;
    *cities
        .iter()
        .min_by(|&&a, &&b| {
            world
                .city(a)
                .center
                .distance(&target)
                .total_cmp(&world.city(b).center.distance(&target))
        })
        .expect("non-empty city list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::host::HostKind;
    use world_sim::WorldConfig;

    fn build() -> (World, WebEcosystem) {
        let mut w = World::generate(WorldConfig::small(Seed(141))).unwrap();
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
        (w, eco)
    }

    #[test]
    fn generates_entities_for_every_city() {
        let (w, eco) = build();
        assert!(!eco.entities.is_empty());
        for city in &w.cities {
            assert!(
                eco.entities_in_city(city.id).len() >= 12,
                "{} has too few entities",
                city.name
            );
        }
    }

    #[test]
    fn local_sites_are_served_from_entity_location() {
        let (w, eco) = build();
        let mut checked = 0;
        for e in &eco.entities {
            let site = eco.website(e.website);
            if site.hosting == Hosting::Local {
                let server = w.host(site.server);
                assert_eq!(server.kind, HostKind::WebServer);
                let d = server.location.distance(&e.location).value();
                assert!(d < 0.001, "local server {d} km from entity");
                checked += 1;
            }
        }
        assert!(checked > 0, "no local sites generated");
    }

    #[test]
    fn hosting_mix_is_plausible() {
        let (_, eco) = build();
        let total = eco.websites.len() as f64;
        let local = eco
            .websites
            .iter()
            .filter(|s| s.hosting == Hosting::Local)
            .count() as f64;
        // p_local applies to website records (chains excluded), so the
        // realized fraction is near but not exactly p_local.
        assert!(
            local / total < 0.10,
            "too many local sites: {}",
            local / total
        );
        assert!(local > 0.0);
    }

    #[test]
    fn chains_span_multiple_zips() {
        let (_, eco) = build();
        let max_appearances = eco
            .websites
            .iter()
            .map(|s| s.zip_appearances)
            .max()
            .unwrap();
        assert!(
            max_appearances >= 3,
            "no chain spans several zips (max {max_appearances})"
        );
        // Local sites appear in exactly one zip.
        for s in &eco.websites {
            if s.hosting == Hosting::Local {
                assert_eq!(s.zip_appearances, 1);
            }
        }
    }

    #[test]
    fn zip_index_is_consistent() {
        let (_, eco) = build();
        for e in eco.entities.iter().take(500) {
            assert!(eco.entities_in_zip(e.zip).contains(&e.id));
        }
    }

    #[test]
    fn entities_within_matches_brute_force() {
        let (w, eco) = build();
        let p = w.cities[0].center;
        let hits = eco.entities_within(&w, &p, Km(30.0));
        let brute = eco
            .entities
            .iter()
            .filter(|e| e.location.distance(&p).value() <= 30.0)
            .count();
        assert_eq!(hits.len(), brute);
        for win in hits.windows(2) {
            assert!(win[0].1 <= win[1].1);
        }
    }

    #[test]
    fn servers_resolve_by_ip() {
        let (w, eco) = build();
        for s in eco.websites.iter().take(200) {
            let host = w.host(s.server);
            assert_eq!(w.host_by_ip(host.ip).unwrap().id, host.id);
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut w = World::generate(WorldConfig::small(Seed(142))).unwrap();
        let cfg = WebConfig {
            p_local: 0.8,
            p_cloud: 0.5,
            ..WebConfig::default()
        };
        assert!(WebEcosystem::generate(&mut w, &cfg).is_err());
    }
}
