//! Property-based tests for the web ecosystem and locality tests.

use geo_model::rng::Seed;
use geo_model::units::Km;
use proptest::prelude::*;
use web_sim::ecosystem::{Hosting, WebConfig, WebEcosystem};
use web_sim::locality::{LocalityTester, Verdict};
use web_sim::zipgrid::{zip_center, zip_of};
use world_sim::{World, WorldConfig};

fn ecosystem() -> &'static (World, WebEcosystem) {
    use std::sync::OnceLock;
    static E: OnceLock<(World, WebEcosystem)> = OnceLock::new();
    E.get_or_init(|| {
        let mut w = World::generate(WorldConfig::small(Seed(5001))).expect("world");
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).expect("eco");
        (w, eco)
    })
}

proptest! {
    /// Reverse geocoding is idempotent: the center of a zip cell maps back
    /// to the same zip.
    #[test]
    fn zip_roundtrip(
        city_sel in 0usize..50,
        bearing in 0.0f64..360.0,
        dist in 0.0f64..20.0,
    ) {
        let (w, _) = ecosystem();
        let base = w.cities[city_sel % w.cities.len()].center;
        let p = base.destination(bearing, Km(dist));
        let zip = zip_of(w, &p).expect("cities exist");
        let center = zip_center(w, zip);
        prop_assert_eq!(zip_of(w, &center), Some(zip));
        // The cell center is within one cell diagonal of the point when
        // the point is inside the (unclamped) grid span.
        if dist < 60.0 {
            prop_assert!(p.distance(&center).value() <= 3.0);
        }
    }

    /// Locality verdicts are pure functions of (seed, entity, zip).
    #[test]
    fn verdicts_are_pure(entity_sel in 0usize..5_000, seed in 0u64..50) {
        let (_, eco) = ecosystem();
        let e = &eco.entities[entity_sel % eco.entities.len()];
        let mut t1 = LocalityTester::new(Seed(seed));
        let mut t2 = LocalityTester::new(Seed(seed));
        prop_assert_eq!(t1.test(eco, e, e.zip), t2.test(eco, e, e.zip));
    }

    /// A candidate queried under the wrong zip is always rejected, and
    /// chain websites never pass.
    #[test]
    fn hard_rejections(entity_sel in 0usize..5_000) {
        let (_, eco) = ecosystem();
        let e = &eco.entities[entity_sel % eco.entities.len()];
        let other = eco
            .entities
            .iter()
            .find(|x| x.zip != e.zip)
            .expect("multiple zips");
        let mut tester = LocalityTester::new(Seed(9));
        prop_assert_eq!(tester.test(eco, e, other.zip), Verdict::ZipMismatch);
        if eco.website(e.website).zip_appearances > 1 {
            let v = tester.test(eco, e, e.zip);
            prop_assert_ne!(v, Verdict::Landmark, "chain passed the tests");
        }
    }

    /// Entities found within a radius really are within it, sorted by
    /// distance, and include every in-range entity of a sampled city.
    #[test]
    fn entities_within_is_sound(city_sel in 0usize..50, radius in 1.0f64..60.0) {
        let (w, eco) = ecosystem();
        let p = w.cities[city_sel % w.cities.len()].center;
        let hits = eco.entities_within(w, &p, Km(radius));
        for win in hits.windows(2) {
            prop_assert!(win[0].1 <= win[1].1);
        }
        for (id, d) in &hits {
            let true_d = eco.entity(*id).location.distance(&p);
            prop_assert!((true_d.value() - d.value()).abs() < 1e-9);
            prop_assert!(d.value() <= radius);
        }
    }

    /// Local websites are always served from inside their entity's city
    /// region; CDN/cloud sites share servers.
    #[test]
    fn hosting_invariants(entity_sel in 0usize..5_000) {
        let (w, eco) = ecosystem();
        let e = &eco.entities[entity_sel % eco.entities.len()];
        let site = eco.website(e.website);
        let server = w.host(site.server);
        match site.hosting {
            Hosting::Local => {
                prop_assert!(server.location.distance(&e.location).value() < 0.01);
            }
            Hosting::Cloud | Hosting::Cdn => {
                // Shared server: located at some city center, not at the
                // entity's doorstep (unless coincidentally co-located).
                prop_assert!(w.cities.iter().any(|c| c.id == server.city));
            }
        }
    }
}
