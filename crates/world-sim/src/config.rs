//! World-generation configuration.
//!
//! All knobs in one place, with two presets: [`WorldConfig::paper`]
//! reproduces the replication's scale (723 anchors, ~10k probes, ~3.5k
//! ASes), and [`WorldConfig::small`] is a miniature world for unit and
//! integration tests.

use crate::continent::Continent;
use geo_model::rng::Seed;

/// How many entities of each kind to place on each continent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinentMix {
    /// The continent.
    pub continent: Continent,
    /// Number of cities.
    pub cities: usize,
    /// Number of anchors (the replication's targets and street-level VPs).
    pub anchors: usize,
    /// Number of probes (the million-scale paper's VPs).
    pub probes: usize,
}

/// Fractions of hosts per AS category, following the paper's Table 2.
///
/// Order: content, access, transit/access, enterprise, tier-1, unknown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryMix(pub [f64; 6]);

impl CategoryMix {
    /// The anchors row of Table 2.
    pub const ANCHORS: CategoryMix = CategoryMix([0.317, 0.292, 0.272, 0.076, 0.008, 0.035]);
    /// The probes row of Table 2. (The paper's rounded percentages sum to
    /// 100.1%; the content fraction is nudged down so the mix normalizes.)
    pub const PROBES: CategoryMix = CategoryMix([0.091, 0.752, 0.083, 0.034, 0.014, 0.026]);

    /// Validates that fractions are non-negative and sum to ~1.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|&f| f >= 0.0) && (self.0.iter().sum::<f64>() - 1.0).abs() < 1e-6
    }
}

/// Full configuration of a synthetic world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Master seed; the world is a pure function of config including seed.
    pub seed: Seed,
    /// Per-continent entity counts.
    pub mix: Vec<ContinentMix>,
    /// Total number of autonomous systems.
    pub num_ases: usize,
    /// Zipf exponent for city populations.
    pub city_zipf_exponent: f64,
    /// Population of the rank-1 city.
    pub max_city_population: f64,
    /// Radius (km) within which a city's hosts scatter around its center.
    pub city_radius_km: f64,
    /// AS category mix for anchor hosting (Table 2, anchors row).
    pub anchor_categories: CategoryMix,
    /// AS category mix for probe hosting (Table 2, probes row).
    pub probe_categories: CategoryMix,
    /// Number of anchors whose registered geolocation is wrong (to be
    /// caught by §4.3 sanitization; the paper removed 9).
    pub mis_geolocated_anchors: usize,
    /// Number of probes whose registered geolocation is wrong (the paper
    /// removed 96).
    pub mis_geolocated_probes: usize,
    /// Distance (km) by which a mis-geolocated host's registered location
    /// is displaced from its true location.
    pub mis_geolocation_offset_km: f64,
    /// Fraction of probes placed by population weight; the rest are spread
    /// uniformly across cities (captures RIPE Atlas volunteers in small
    /// towns).
    pub probe_population_affinity: f64,
    /// Exponent on city population when placing anchors; below 1 spreads
    /// anchors into smaller cities than the probe distribution reaches.
    pub anchor_city_exponent: f64,
    /// Number of responsive hitlist addresses generated per target /24.
    pub hitlist_per_prefix: usize,
    /// Probability that a representative in the target's /24 is actually in
    /// a *different* city (prefix split across sites) — the failure mode of
    /// the million-scale VP selection.
    pub prefix_split_probability: f64,
    /// Fraction of probes suffering a heavy last-mile tail (§5.1.5's 26 bad
    /// European targets trace back to such probes).
    pub heavy_last_mile_fraction: f64,
    /// Fraction of cities whose access infrastructure adds a penalty to
    /// every probe's last mile (correlated badness; see §5.1.5).
    pub heavy_city_fraction: f64,
    /// Fraction of ASes publishing an RFC 9092 geofeed (used by the
    /// IPinfo-like database simulator).
    pub geofeed_fraction: f64,
    /// Fraction of hosts with a geo-hinting DNS hostname.
    pub dns_hint_fraction: f64,
}

impl WorldConfig {
    /// The replication's scale: 723 anchors distributed per §4.1.2
    /// (EU 399 + the 5 unstated, AS 133, NA 125, SA 27, OC 18, AF 16) and
    /// ~10k probes with RIPE Atlas's European skew.
    pub fn paper(seed: Seed) -> WorldConfig {
        WorldConfig {
            seed,
            mix: vec![
                ContinentMix {
                    continent: Continent::Europe,
                    cities: 800,
                    anchors: 404,
                    probes: 6200,
                },
                ContinentMix {
                    continent: Continent::Asia,
                    cities: 450,
                    anchors: 133,
                    probes: 1100,
                },
                ContinentMix {
                    continent: Continent::NorthAmerica,
                    cities: 450,
                    anchors: 125,
                    probes: 1800,
                },
                ContinentMix {
                    continent: Continent::SouthAmerica,
                    cities: 120,
                    anchors: 27,
                    probes: 350,
                },
                ContinentMix {
                    continent: Continent::Oceania,
                    cities: 80,
                    anchors: 18,
                    probes: 330,
                },
                ContinentMix {
                    continent: Continent::Africa,
                    cities: 100,
                    anchors: 16,
                    probes: 220,
                },
            ],
            num_ases: 3494,
            city_zipf_exponent: 1.05,
            max_city_population: 12_000_000.0,
            city_radius_km: 15.0,
            anchor_categories: CategoryMix::ANCHORS,
            probe_categories: CategoryMix::PROBES,
            mis_geolocated_anchors: 9,
            mis_geolocated_probes: 96,
            mis_geolocation_offset_km: 7000.0,
            probe_population_affinity: 0.88,
            anchor_city_exponent: 0.55,
            hitlist_per_prefix: 6,
            prefix_split_probability: 0.08,
            heavy_last_mile_fraction: 0.10,
            heavy_city_fraction: 0.14,
            geofeed_fraction: 0.22,
            dns_hint_fraction: 0.45,
        }
    }

    /// A miniature world for tests: 2 continents, tens of hosts.
    pub fn small(seed: Seed) -> WorldConfig {
        WorldConfig {
            seed,
            mix: vec![
                ContinentMix {
                    continent: Continent::Europe,
                    cities: 30,
                    anchors: 20,
                    probes: 150,
                },
                ContinentMix {
                    continent: Continent::NorthAmerica,
                    cities: 20,
                    anchors: 10,
                    probes: 80,
                },
            ],
            num_ases: 60,
            city_zipf_exponent: 1.0,
            max_city_population: 5_000_000.0,
            city_radius_km: 15.0,
            anchor_categories: CategoryMix::ANCHORS,
            probe_categories: CategoryMix::PROBES,
            mis_geolocated_anchors: 1,
            mis_geolocated_probes: 4,
            mis_geolocation_offset_km: 7000.0,
            probe_population_affinity: 0.75,
            anchor_city_exponent: 0.55,
            hitlist_per_prefix: 5,
            prefix_split_probability: 0.08,
            heavy_last_mile_fraction: 0.04,
            heavy_city_fraction: 0.10,
            geofeed_fraction: 0.22,
            dns_hint_fraction: 0.45,
        }
    }

    /// Total number of cities.
    pub fn total_cities(&self) -> usize {
        self.mix.iter().map(|m| m.cities).sum()
    }

    /// Total number of anchors.
    pub fn total_anchors(&self) -> usize {
        self.mix.iter().map(|m| m.anchors).sum()
    }

    /// Total number of probes.
    pub fn total_probes(&self) -> usize {
        self.mix.iter().map(|m| m.probes).sum()
    }

    /// Checks internal consistency; called by the generator before use.
    pub fn validate(&self) -> Result<(), String> {
        if self.mix.is_empty() {
            return Err("continent mix must not be empty".into());
        }
        if !self.anchor_categories.is_valid() || !self.probe_categories.is_valid() {
            return Err("category mixes must be non-negative and sum to 1".into());
        }
        if self.num_ases < 6 {
            return Err("need at least one AS per category".into());
        }
        if self.total_cities() == 0 {
            return Err("need at least one city".into());
        }
        if self.mis_geolocated_anchors > self.total_anchors() {
            return Err("cannot mis-geolocate more anchors than exist".into());
        }
        if self.mis_geolocated_probes > self.total_probes() {
            return Err("cannot mis-geolocate more probes than exist".into());
        }
        for f in [
            self.probe_population_affinity,
            self.prefix_split_probability,
            self.heavy_last_mile_fraction,
            self.heavy_city_fraction,
            self.geofeed_fraction,
            self.dns_hint_fraction,
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fraction out of [0,1]: {f}"));
            }
        }
        if self.hitlist_per_prefix < 3 {
            return Err("the VP selection needs >= 3 representatives per /24".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_totals() {
        let cfg = WorldConfig::paper(Seed(1));
        assert_eq!(cfg.total_anchors(), 723);
        assert_eq!(cfg.total_probes(), 10_000);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn small_config_is_valid() {
        assert!(WorldConfig::small(Seed(1)).validate().is_ok());
    }

    #[test]
    fn table2_mixes_sum_to_one() {
        assert!(CategoryMix::ANCHORS.is_valid());
        assert!(CategoryMix::PROBES.is_valid());
    }

    #[test]
    fn validation_catches_bad_fraction() {
        let mut cfg = WorldConfig::small(Seed(1));
        cfg.prefix_split_probability = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_excess_misgeolocation() {
        let mut cfg = WorldConfig::small(Seed(1));
        cfg.mis_geolocated_anchors = 10_000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_small_hitlist() {
        let mut cfg = WorldConfig::small(Seed(1));
        cfg.hitlist_per_prefix = 2;
        assert!(cfg.validate().is_err());
    }
}
