//! # world-sim
//!
//! Seeded generation of a synthetic-but-statistically-faithful world for the
//! `ipgeo` replication framework: continents, cities with Zipf populations
//! and a population-density field, an AS ecosystem following the CAIDA
//! category mix of the paper's Table 2, and the host populations the
//! replication needs — RIPE-Atlas-style anchors and probes, hitlist
//! representatives in each target's `/24`, and address blocks for the web
//! ecosystem built on top by `web-sim`.
//!
//! Everything is a pure function of a [`geo_model::rng::Seed`]: generating
//! the same [`config::WorldConfig`] twice yields byte-identical worlds.
//!
//! The crate stops at *who exists where*; latency and routing live in
//! `net-sim`, the measurement platform in `atlas-sim`, and websites/mapping
//! services in `web-sim`.

pub mod asn;
pub mod census;
pub mod city;
pub mod config;
pub mod continent;
pub mod density;
pub mod hitlist;
pub mod host;
pub mod ids;
pub mod metadata;
pub mod rdns;
pub mod world;

pub use config::WorldConfig;
pub use continent::Continent;
pub use ids::{AsId, CityId, CountryId, HostId};
pub use world::World;
