//! The responsiveness hitlist (the ISI hitlist of §4.1.3).
//!
//! For each target `/24` the hitlist knows which addresses have answered
//! probes historically, with a responsiveness score. The million-scale VP
//! selection picks the three highest-scoring representatives per prefix;
//! for a few prefixes fewer than three addresses are responsive and the
//! pipeline falls back to random addresses in the /24 (which time out),
//! exactly as the paper reports for 8 of its targets.

use crate::host::{Host, HostKind, HostPopulation};
use crate::ids::HostId;
use geo_model::ip::{Ipv4, Prefix24};
use rand::Rng;
use std::collections::BTreeMap;

/// One hitlist entry: an address with a responsiveness score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitlistEntry {
    /// The address.
    pub ip: Ipv4,
    /// The host behind the address, if any is simulated.
    pub host: Option<HostId>,
    /// Responsiveness score in `[0, 99]`; 0 means the address never
    /// answered.
    pub score: u8,
}

/// The full hitlist: entries per /24.
///
/// Keyed by a `BTreeMap`: `build` consumes randomness while walking the
/// prefixes, so the walk order must be deterministic — with a hash map the
/// set of sparse prefixes would differ from run to run (geo-lint: D2).
#[derive(Debug, Clone, Default)]
pub struct Hitlist {
    per_prefix: BTreeMap<Prefix24, Vec<HitlistEntry>>,
}

/// Fraction of prefixes with fewer than three responsive addresses.
const SPARSE_PREFIX_FRACTION: f64 = 0.012;

impl Hitlist {
    /// Builds the hitlist from the host population: every representative
    /// host gets a score; a small fraction of prefixes is made sparse.
    pub fn build<R: Rng + ?Sized>(pop: &HostPopulation, rng: &mut R) -> Hitlist {
        let mut per_prefix: BTreeMap<Prefix24, Vec<HitlistEntry>> = BTreeMap::new();
        for h in &pop.hosts {
            if h.kind != HostKind::Representative {
                continue;
            }
            per_prefix
                .entry(h.ip.prefix24())
                .or_default()
                .push(HitlistEntry {
                    ip: h.ip,
                    host: Some(h.id),
                    score: rng.gen_range(1..=99),
                });
        }
        // Make some prefixes sparse: zero out all but one or two scores.
        for entries in per_prefix.values_mut() {
            entries.sort_by(|a, b| b.score.cmp(&a.score).then(a.ip.cmp(&b.ip)));
            if rng.gen::<f64>() < SPARSE_PREFIX_FRACTION {
                let keep = rng.gen_range(1..=2usize);
                for e in entries.iter_mut().skip(keep) {
                    e.score = 0;
                }
            }
        }
        Hitlist { per_prefix }
    }

    /// The top-`n` responsive representatives of a prefix, best score
    /// first. May return fewer than `n`.
    pub fn representatives(&self, prefix: Prefix24, n: usize) -> Vec<HitlistEntry> {
        self.per_prefix
            .get(&prefix)
            .map(|entries| {
                entries
                    .iter()
                    .filter(|e| e.score > 0)
                    .take(n)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Fills a representative list up to `n` with random (unscored,
    /// almost certainly unresponsive) addresses from the prefix — the
    /// paper's fallback for its 8 sparse targets.
    pub fn fill_with_random<R: Rng + ?Sized>(
        &self,
        prefix: Prefix24,
        mut reps: Vec<HitlistEntry>,
        n: usize,
        rng: &mut R,
    ) -> Vec<HitlistEntry> {
        while reps.len() < n {
            let byte: u8 = rng.gen_range(2..250);
            let ip = prefix.host(byte);
            if reps.iter().any(|e| e.ip == ip) {
                continue;
            }
            reps.push(HitlistEntry {
                ip,
                host: None,
                score: 0,
            });
        }
        reps
    }

    /// Number of prefixes known to the hitlist.
    pub fn len(&self) -> usize {
        self.per_prefix.len()
    }

    /// True if the hitlist is empty.
    pub fn is_empty(&self) -> bool {
        self.per_prefix.is_empty()
    }

    /// Iterates over all prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix24> + '_ {
        self.per_prefix.keys().copied()
    }

    /// Resolves the simulated host behind an address, if any.
    pub fn host_of(&self, ip: Ipv4) -> Option<HostId> {
        self.per_prefix
            .get(&ip.prefix24())?
            .iter()
            .find(|e| e.ip == ip)?
            .host
    }

    /// Looks up hosts for test assertions: all entries of a prefix.
    pub fn entries(&self, prefix: Prefix24) -> &[HitlistEntry] {
        self.per_prefix.get(&prefix).map_or(&[], Vec::as_slice)
    }
}

/// Convenience: resolves entries to hosts.
pub fn hosts_of<'a>(entries: &[HitlistEntry], hosts: &'a [Host]) -> Vec<&'a Host> {
    entries
        .iter()
        .filter_map(|e| e.host.map(|id| &hosts[id.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::generate_ases;
    use crate::city::generate_cities;
    use crate::config::WorldConfig;
    use crate::host::generate_hosts;
    use geo_model::rng::Seed;

    fn build() -> (HostPopulation, Hitlist) {
        let cfg = WorldConfig::small(Seed(41));
        let mut rng = cfg.seed.derive("world").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let mut ases = generate_ases(&cfg, &cities, &mut rng);
        let pop = generate_hosts(&cfg, &cities, &mut ases, &mut rng);
        let hitlist = Hitlist::build(&pop, &mut rng);
        (pop, hitlist)
    }

    #[test]
    fn covers_every_anchor_prefix() {
        let (pop, hitlist) = build();
        assert_eq!(hitlist.len(), pop.anchors.len());
        for &aid in &pop.anchors {
            let prefix = pop.hosts[aid.index()].ip.prefix24();
            let reps = hitlist.representatives(prefix, 3);
            assert!(!reps.is_empty(), "no representatives for {prefix}");
        }
    }

    #[test]
    fn representatives_sorted_by_score() {
        let (pop, hitlist) = build();
        let prefix = pop.hosts[pop.anchors[0].index()].ip.prefix24();
        let reps = hitlist.representatives(prefix, 5);
        for w in reps.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for r in &reps {
            assert!(r.score > 0);
            assert!(prefix.contains(r.ip));
        }
    }

    #[test]
    fn fill_with_random_completes_to_n() {
        let (pop, hitlist) = build();
        let prefix = pop.hosts[pop.anchors[0].index()].ip.prefix24();
        let mut rng = Seed(42).derive("fill").rng();
        let reps = hitlist.representatives(prefix, 3);
        let filled = hitlist.fill_with_random(prefix, reps, 7, &mut rng);
        assert_eq!(filled.len(), 7);
        let mut ips: Vec<Ipv4> = filled.iter().map(|e| e.ip).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), 7, "random fill produced duplicates");
    }

    #[test]
    fn host_resolution() {
        let (pop, hitlist) = build();
        let prefix = pop.hosts[pop.anchors[0].index()].ip.prefix24();
        let reps = hitlist.representatives(prefix, 3);
        for r in &reps {
            let hid = hitlist.host_of(r.ip).unwrap();
            assert_eq!(pop.hosts[hid.index()].ip, r.ip);
        }
        // Unknown address resolves to none.
        assert!(hitlist.host_of(prefix.host(251)).is_none());
    }

    #[test]
    fn unknown_prefix_is_empty() {
        let (_, hitlist) = build();
        let bogus = Ipv4::from_octets(240, 0, 0, 0).prefix24();
        assert!(hitlist.representatives(bogus, 3).is_empty());
        assert!(hitlist.entries(bogus).is_empty());
    }
}
