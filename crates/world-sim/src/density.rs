//! The population-density field.
//!
//! Substitutes for the "Gridded Population of the World" dataset the paper
//! uses for Figures 6b and 8: a query-anywhere density surface composed of
//! Gaussian city kernels (radius derived from population and core density)
//! over a deterministic, spatially varying rural background.

use crate::city::{City, CityIndex};
use geo_model::point::GeoPoint;
use geo_model::rng::{fnv1a, splitmix64, Seed};
use geo_model::units::Km;

/// Resolution of the rural-background texture, degrees (~1 km at 0.01°).
const RURAL_CELL_DEG: f64 = 0.01;
/// Median rural density, people/km².
const RURAL_MEDIAN: f64 = 8.0;
/// Log-scale spread of the rural texture.
const RURAL_SIGMA: f64 = 1.4;
/// How far (in city-kernel sigmas) a city contributes density.
const KERNEL_CUTOFF_SIGMAS: f64 = 3.0;

/// A queryable population-density surface.
#[derive(Debug, Clone)]
pub struct DensityField {
    cities: Vec<CityKernel>,
    index: CityIndex,
    seed: Seed,
}

#[derive(Debug, Clone, Copy)]
struct CityKernel {
    core_density: f64,
    sigma_km: f64,
}

impl DensityField {
    /// Builds the field from the world's cities.
    pub fn build(cities: &[City], seed: Seed) -> DensityField {
        let kernels = cities
            .iter()
            .map(|c| CityKernel {
                core_density: c.core_density,
                sigma_km: urban_sigma_km(c.population, c.core_density),
            })
            .collect();
        DensityField {
            cities: kernels,
            index: CityIndex::build(cities),
            seed: seed.derive("density-field"),
        }
    }

    /// Population density at `p`, people/km².
    pub fn density_at(&self, p: &GeoPoint) -> f64 {
        let mut best = self.rural_background(p);
        // Cities within the cutoff of the largest plausible kernel.
        let max_reach = Km(KERNEL_CUTOFF_SIGMAS * 60.0);
        for (city, dist) in self.index.within(p, max_reach) {
            let k = &self.cities[city.index()];
            let d = dist.value();
            if d <= KERNEL_CUTOFF_SIGMAS * k.sigma_km {
                let contribution = k.core_density * (-0.5 * (d / k.sigma_km).powi(2)).exp();
                best = best.max(contribution);
            }
        }
        best
    }

    /// The deterministic rural texture: a log-normal value per ~1 km cell,
    /// derived purely from the cell coordinates and the seed.
    fn rural_background(&self, p: &GeoPoint) -> f64 {
        let cell_lat = (p.lat() / RURAL_CELL_DEG).floor() as i64;
        let cell_lon = (p.lon() / RURAL_CELL_DEG).floor() as i64;
        let mut h = self.seed.0;
        h = splitmix64(h ^ cell_lat as u64);
        h = splitmix64(h ^ cell_lon as u64 ^ fnv1a(b"rural"));
        // Two uniforms from the hash -> one normal via Box-Muller.
        let u1 = ((h >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
        let h2 = splitmix64(h);
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        RURAL_MEDIAN * (RURAL_SIGMA * z).exp()
    }
}

/// Kernel width from population: the radius at which the Gaussian integral
/// roughly accounts for the city's population at its core density.
fn urban_sigma_km(population: f64, core_density: f64) -> f64 {
    // population ≈ 2π σ² core_density for a Gaussian disc.
    (population / (2.0 * std::f64::consts::PI * core_density))
        .sqrt()
        .clamp(1.5, 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::generate_cities;
    use crate::config::WorldConfig;

    fn field() -> (Vec<City>, DensityField) {
        let cfg = WorldConfig::small(Seed(3));
        let mut rng = Seed(3).derive("cities").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let f = DensityField::build(&cities, Seed(3));
        (cities, f)
    }

    #[test]
    fn city_core_is_denser_than_countryside() {
        let (cities, f) = field();
        let big = cities
            .iter()
            .max_by(|a, b| a.population.total_cmp(&b.population))
            .unwrap();
        let at_core = f.density_at(&big.center);
        // 200 km east of the big city should be much sparser (unless
        // another city happens to sit there; pick the max of a few samples).
        let far = big.center.destination(90.0, Km(200.0));
        let at_far = f.density_at(&far);
        assert!(
            at_core > 10.0 * at_far.min(at_core / 20.0 + 1.0) || at_core > 500.0,
            "core {at_core} vs far {at_far}"
        );
        assert!(at_core >= big.core_density * 0.9);
    }

    #[test]
    fn density_is_deterministic() {
        let (_, f1) = field();
        let (_, f2) = field();
        let p = GeoPoint::new(47.3, 8.5);
        assert_eq!(f1.density_at(&p), f2.density_at(&p));
    }

    #[test]
    fn rural_texture_varies_by_cell() {
        let (_, f) = field();
        // Two points in the middle of an ocean-ish area: rural background
        // differs across cells but both are positive and small-ish.
        let a = f.density_at(&GeoPoint::new(-50.0, -140.0));
        let b = f.density_at(&GeoPoint::new(-50.1, -140.1));
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn density_always_positive() {
        let (_, f) = field();
        let mut rng = Seed(9).derive("d").rng();
        use rand::Rng;
        for _ in 0..200 {
            let p = GeoPoint::new(rng.gen_range(-80.0..80.0), rng.gen_range(-180.0..180.0));
            assert!(f.density_at(&p) > 0.0);
        }
    }

    #[test]
    fn sigma_clamps() {
        assert_eq!(urban_sigma_km(1e12, 1.0), 60.0);
        assert_eq!(urban_sigma_km(1.0, 1e9), 1.5);
    }
}
