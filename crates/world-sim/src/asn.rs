//! The autonomous-system ecosystem.
//!
//! ASes carry three roles in the replication: they host probes/anchors with
//! the category mix of the paper's Table 2, they shape routing (`net-sim`
//! joins paths at shared PoPs and through transit providers), and they carry
//! the metadata hints (WHOIS registration city, geofeeds) that the
//! IPinfo-like database simulator consumes.

use crate::city::City;
use crate::config::WorldConfig;
use crate::continent::Continent;
use crate::ids::{AsId, CityId, CountryId};
use geo_model::distr::{Pareto, Sample};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// CAIDA-style AS category (the columns of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsCategory {
    /// Content provider (includes CDNs and cloud platforms).
    Content,
    /// Eyeball/access network.
    Access,
    /// Mixed transit and access network.
    TransitAccess,
    /// Enterprise network.
    Enterprise,
    /// Global tier-1 transit network.
    Tier1,
    /// Unclassified.
    Unknown,
}

impl AsCategory {
    /// All categories in Table 2 column order.
    pub const ALL: [AsCategory; 6] = [
        AsCategory::Content,
        AsCategory::Access,
        AsCategory::TransitAccess,
        AsCategory::Enterprise,
        AsCategory::Tier1,
        AsCategory::Unknown,
    ];

    /// Column label used in Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            AsCategory::Content => "Content",
            AsCategory::Access => "Access",
            AsCategory::TransitAccess => "Transit/Access",
            AsCategory::Enterprise => "Enterprise",
            AsCategory::Tier1 => "Tier-1",
            AsCategory::Unknown => "Unknown",
        }
    }
}

/// Fractions of *ASes* per category (distinct from the per-host mixes in
/// the config, which describe where probes and anchors live).
const AS_POPULATION_MIX: [(AsCategory, f64); 6] = [
    (AsCategory::Content, 0.15),
    (AsCategory::Access, 0.45),
    (AsCategory::TransitAccess, 0.20),
    (AsCategory::Enterprise, 0.145),
    (AsCategory::Tier1, 0.005),
    (AsCategory::Unknown, 0.05),
];

/// Fraction of content ASes that are CDNs (anycast front ends for the
/// street-level paper's "not locally hosted" websites).
const CDN_FRACTION_OF_CONTENT: f64 = 0.10;
/// Fraction of content ASes that are cloud platforms (remote hosting).
const CLOUD_FRACTION_OF_CONTENT: f64 = 0.15;

/// An autonomous system.
#[derive(Debug, Clone)]
pub struct AutonomousSystem {
    /// Identifier.
    pub id: AsId,
    /// CAIDA-style category.
    pub category: AsCategory,
    /// Cities where this AS has points of presence. Never empty.
    pub pops: Vec<CityId>,
    /// Registration country (WHOIS).
    pub country: CountryId,
    /// City listed in WHOIS records — often the headquarters, not where a
    /// given prefix is deployed, which is exactly why WHOIS-based
    /// geolocation is imprecise.
    pub whois_city: CityId,
    /// True for CDN content networks (anycast, fails the street-level
    /// paper's locality checks).
    pub is_cdn: bool,
    /// True for cloud platforms (websites hosted far from their owner).
    pub is_cloud: bool,
    /// Whether this AS publishes an RFC 9092 geofeed.
    pub publishes_geofeed: bool,
}

impl AutonomousSystem {
    /// True if the AS has a PoP in the given city.
    pub fn has_pop(&self, city: CityId) -> bool {
        self.pops.contains(&city)
    }
}

/// Generates the AS ecosystem over the given cities.
pub fn generate_ases<R: Rng + ?Sized>(
    cfg: &WorldConfig,
    cities: &[City],
    rng: &mut R,
) -> Vec<AutonomousSystem> {
    assert!(!cities.is_empty(), "cannot build ASes without cities");

    // Pre-bucket cities for footprint sampling.
    let mut by_continent: HashMap<Continent, Vec<&City>> = HashMap::new();
    let mut by_country: HashMap<CountryId, Vec<&City>> = HashMap::new();
    for c in cities {
        by_continent.entry(c.continent).or_default().push(c);
        by_country.entry(c.country).or_default().push(c);
    }
    // Sort for determinism: HashMap iteration order is unspecified.
    let mut continents: Vec<Continent> = by_continent.keys().copied().collect();
    continents.sort();

    // Big cities worldwide, for tier-1 and CDN footprints.
    let mut big_cities: Vec<&City> = cities.iter().collect();
    big_cities.sort_by(|a, b| b.population.total_cmp(&a.population));

    let mut out = Vec::with_capacity(cfg.num_ases);
    for i in 0..cfg.num_ases {
        let category = pick_category(i, cfg.num_ases);
        let (is_cdn, is_cloud) = if category == AsCategory::Content {
            let r: f64 = rng.gen();
            (
                r < CDN_FRACTION_OF_CONTENT,
                (CDN_FRACTION_OF_CONTENT..CDN_FRACTION_OF_CONTENT + CLOUD_FRACTION_OF_CONTENT)
                    .contains(&r),
            )
        } else {
            (false, false)
        };

        let pops = footprint(
            category,
            is_cdn,
            cities,
            &by_continent,
            &by_country,
            &continents,
            &big_cities,
            rng,
        );
        debug_assert!(!pops.is_empty());
        let whois_city = pops[0];
        let country = cities[whois_city.index()].country;
        out.push(AutonomousSystem {
            id: AsId(i as u32),
            category,
            pops,
            country,
            whois_city,
            is_cdn,
            is_cloud,
            publishes_geofeed: rng.gen::<f64>() < cfg.geofeed_fraction,
        });
    }
    out
}

/// Deterministically apportions AS indices to categories so the realized
/// counts match `AS_POPULATION_MIX` exactly (largest-remainder style by
/// cumulative rounding).
fn pick_category(index: usize, total: usize) -> AsCategory {
    let mut acc = 0usize;
    for (cat, frac) in AS_POPULATION_MIX {
        let count = (frac * total as f64).round() as usize;
        acc += count;
        if index < acc {
            return cat;
        }
    }
    AsCategory::Unknown
}

#[allow(clippy::too_many_arguments)]
fn footprint<R: Rng + ?Sized>(
    category: AsCategory,
    is_cdn: bool,
    cities: &[City],
    by_continent: &HashMap<Continent, Vec<&City>>,
    by_country: &HashMap<CountryId, Vec<&City>>,
    continents: &[Continent],
    big_cities: &[&City],
    rng: &mut R,
) -> Vec<CityId> {
    let pareto = Pareto::new(1.0, 1.2);
    match category {
        AsCategory::Tier1 => {
            // Global backbone: PoPs in the biggest cities of every continent.
            let n = (30.0 + pareto.sample(rng) * 20.0).min(120.0) as usize;
            sample_cities(&big_cities[..big_cities.len().min(200)], n.max(20), rng)
        }
        AsCategory::Content if is_cdn => {
            // CDN: wide anycast footprint in big cities.
            let n = (20.0 + pareto.sample(rng) * 15.0).min(100.0) as usize;
            sample_cities(&big_cities[..big_cities.len().min(300)], n.max(15), rng)
        }
        AsCategory::Content => {
            // Hosting/cloud: a few datacenter metros.
            let n = (pareto.sample(rng) as usize).clamp(1, 6);
            sample_cities(big_cities, n, rng)
        }
        AsCategory::TransitAccess => {
            // Regional: one continent, several cities.
            let continent = continents[rng.gen_range(0..continents.len())];
            let pool = &by_continent[&continent];
            let n = (2.0 + pareto.sample(rng) * 4.0).min(30.0) as usize;
            sample_cities(pool, n.max(2), rng)
        }
        AsCategory::Access => {
            // National eyeball network: cities of one country.
            let country = cities[rng.gen_range(0..cities.len())].country;
            let pool = &by_country[&country];
            let n = (1.0 + pareto.sample(rng) * 2.0).min(12.0) as usize;
            sample_cities(pool, n.max(1), rng)
        }
        AsCategory::Enterprise | AsCategory::Unknown => {
            let country = cities[rng.gen_range(0..cities.len())].country;
            let pool = &by_country[&country];
            sample_cities(pool, rng.gen_range(1..=2), rng)
        }
    }
}

fn sample_cities<R: Rng + ?Sized>(pool: &[&City], n: usize, rng: &mut R) -> Vec<CityId> {
    let n = n.min(pool.len()).max(1);
    let mut ids: Vec<CityId> = pool.iter().map(|c| c.id).collect();
    ids.shuffle(rng);
    ids.truncate(n);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::generate_cities;
    use geo_model::rng::Seed;

    fn build() -> (Vec<City>, Vec<AutonomousSystem>) {
        let cfg = WorldConfig::small(Seed(21));
        let mut rng = Seed(21).derive("test-as").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let ases = generate_ases(&cfg, &cities, &mut rng);
        (cities, ases)
    }

    #[test]
    fn generates_requested_count() {
        let (_, ases) = build();
        assert_eq!(ases.len(), 60);
    }

    #[test]
    fn every_as_has_pops() {
        let (cities, ases) = build();
        for a in &ases {
            assert!(!a.pops.is_empty(), "{} has no PoPs", a.id);
            for p in &a.pops {
                assert!(p.index() < cities.len());
            }
            assert!(a.has_pop(a.whois_city));
        }
    }

    #[test]
    fn category_mix_matches_population() {
        let (_, ases) = build();
        let access = ases
            .iter()
            .filter(|a| a.category == AsCategory::Access)
            .count();
        // 45% of 60 = 27.
        assert_eq!(access, 27);
        let tier1 = ases
            .iter()
            .filter(|a| a.category == AsCategory::Tier1)
            .count();
        assert!(tier1 <= 2); // 0.5% rounds to 0 at this scale
    }

    #[test]
    fn tier1_spans_widely() {
        // Use a larger world so a tier-1 exists.
        let cfg = WorldConfig::paper(Seed(22));
        let mut rng = Seed(22).derive("test-as").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let ases = generate_ases(&cfg, &cities, &mut rng);
        let t1 = ases
            .iter()
            .find(|a| a.category == AsCategory::Tier1)
            .unwrap();
        assert!(
            t1.pops.len() >= 20,
            "tier-1 has only {} PoPs",
            t1.pops.len()
        );
        // Access networks stay within one country.
        let access = ases
            .iter()
            .find(|a| a.category == AsCategory::Access)
            .unwrap();
        let country = cities[access.pops[0].index()].country;
        for p in &access.pops {
            assert_eq!(cities[p.index()].country, country);
        }
    }

    #[test]
    fn cdn_flags_only_on_content() {
        let (_, ases) = build();
        for a in &ases {
            if a.is_cdn || a.is_cloud {
                assert_eq!(a.category, AsCategory::Content);
            }
            assert!(!(a.is_cdn && a.is_cloud));
        }
    }

    #[test]
    fn some_ases_publish_geofeeds() {
        let cfg = WorldConfig::paper(Seed(23));
        let mut rng = Seed(23).derive("test-as").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let ases = generate_ases(&cfg, &cities, &mut rng);
        let geofeeds = ases.iter().filter(|a| a.publishes_geofeed).count();
        let frac = geofeeds as f64 / ases.len() as f64;
        assert!((0.15..0.30).contains(&frac), "geofeed fraction {frac}");
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = AsCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
