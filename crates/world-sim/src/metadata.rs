//! Public metadata hints: DNS hostnames, RFC 9092 geofeeds, WHOIS.
//!
//! §6 of the replication demystifies the IPinfo database: beyond its own
//! latency measurements it leans on "hints extracted from DNS, WHOIS,
//! geofeeds". This module generates those hints for the synthetic world so
//! that `ipgeo::dbsim` can build the IPinfo-like database the paper
//! compares against in Figure 7. Hints are *mostly* right: a configurable
//! fraction is stale or points at the network's headquarters instead of the
//! prefix's deployment — the realistic failure modes.

use crate::asn::AutonomousSystem;
use crate::city::City;
use crate::host::{AddressPlan, Host};
use crate::ids::{CityId, HostId};
use geo_model::ip::Prefix24;
use rand::Rng;
use std::collections::HashMap;

/// Fraction of DNS hints that are accurate (the rest point at the AS's
/// WHOIS city — a decommissioned or re-assigned hostname).
const DNS_HINT_ACCURACY: f64 = 0.90;
/// Fraction of geofeed entries that are accurate.
const GEOFEED_ACCURACY: f64 = 0.95;

/// A reverse-DNS name with an optional embedded location hint.
#[derive(Debug, Clone, PartialEq)]
pub struct DnsName {
    /// The hostname.
    pub name: String,
    /// City the hostname encodes, if any (e.g. an airport code); may be
    /// stale.
    pub hint: Option<CityId>,
}

/// All metadata hints of a world.
#[derive(Debug, Clone, Default)]
pub struct Metadata {
    /// Reverse DNS per host.
    pub dns: HashMap<HostId, DnsName>,
    /// Geofeed entries: prefix -> declared city.
    pub geofeed: HashMap<Prefix24, CityId>,
}

impl Metadata {
    /// Generates DNS names and geofeeds for the given hosts/prefixes.
    pub fn generate<R: Rng + ?Sized>(
        hosts: &[Host],
        ases: &[AutonomousSystem],
        cities: &[City],
        plan: &AddressPlan,
        dns_hint_fraction: f64,
        rng: &mut R,
    ) -> Metadata {
        let mut dns = HashMap::new();
        for h in hosts {
            let asn = &ases[h.asn.index()];
            let hinted = rng.gen::<f64>() < dns_hint_fraction;
            let hint = if hinted {
                let accurate = rng.gen::<f64>() < DNS_HINT_ACCURACY;
                Some(if accurate { h.city } else { asn.whois_city })
            } else {
                None
            };
            let name = match hint {
                Some(city) => format!(
                    "{}.{}.{}.example.net",
                    h.id,
                    cities[city.index()].name.to_lowercase(),
                    asn.id
                ),
                None => format!("{}.{}.example.net", h.id, asn.id),
            };
            dns.insert(h.id, DnsName { name, hint });
        }

        let mut geofeed = HashMap::new();
        // `plan.prefixes()` walks its BTree in prefix order, so the
        // randomness consumed per entry is deterministic.
        for (prefix, (asn_id, city)) in plan.prefixes() {
            let asn = &ases[asn_id.index()];
            if !asn.publishes_geofeed {
                continue;
            }
            let accurate = rng.gen::<f64>() < GEOFEED_ACCURACY;
            geofeed.insert(prefix, if accurate { city } else { asn.whois_city });
        }

        Metadata { dns, geofeed }
    }

    /// The DNS hint for a host, if any.
    pub fn dns_hint(&self, host: HostId) -> Option<CityId> {
        self.dns.get(&host).and_then(|d| d.hint)
    }

    /// The geofeed city for a prefix, if published.
    pub fn geofeed_city(&self, prefix: Prefix24) -> Option<CityId> {
        self.geofeed.get(&prefix).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::generate_ases;
    use crate::city::generate_cities;
    use crate::config::WorldConfig;
    use crate::host::generate_hosts;
    use geo_model::rng::Seed;

    fn build() -> (
        Vec<City>,
        Vec<AutonomousSystem>,
        crate::host::HostPopulation,
        Metadata,
    ) {
        let cfg = WorldConfig::small(Seed(51));
        let mut rng = cfg.seed.derive("world").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let mut ases = generate_ases(&cfg, &cities, &mut rng);
        let pop = generate_hosts(&cfg, &cities, &mut ases, &mut rng);
        let meta = Metadata::generate(
            &pop.hosts,
            &ases,
            &cities,
            &pop.plan,
            cfg.dns_hint_fraction,
            &mut rng,
        );
        (cities, ases, pop, meta)
    }

    #[test]
    fn every_host_has_a_name() {
        let (_, _, pop, meta) = build();
        assert_eq!(meta.dns.len(), pop.hosts.len());
        for h in &pop.hosts {
            assert!(meta.dns[&h.id].name.contains("example.net"));
        }
    }

    #[test]
    fn hint_fraction_roughly_configured() {
        let (_, _, pop, meta) = build();
        let hinted = pop
            .hosts
            .iter()
            .filter(|h| meta.dns_hint(h.id).is_some())
            .count();
        let frac = hinted as f64 / pop.hosts.len() as f64;
        assert!((0.3..0.6).contains(&frac), "hint fraction {frac}");
    }

    #[test]
    fn most_hints_accurate() {
        let (_, _, pop, meta) = build();
        let mut accurate = 0;
        let mut total = 0;
        for h in &pop.hosts {
            if let Some(city) = meta.dns_hint(h.id) {
                total += 1;
                if city == h.city {
                    accurate += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = accurate as f64 / total as f64;
        assert!(frac > 0.8, "accuracy {frac}");
    }

    #[test]
    fn geofeeds_only_for_publishing_ases() {
        let (_, ases, pop, meta) = build();
        for (prefix, city) in &meta.geofeed {
            let (asn, _) = pop.plan.owner(*prefix).unwrap();
            assert!(ases[asn.index()].publishes_geofeed);
            let _ = city;
        }
        // If any AS publishes and owns prefixes, the geofeed is non-empty.
        let publishing_prefixes = pop
            .plan
            .prefixes()
            .filter(|(_, (asn, _))| ases[asn.index()].publishes_geofeed)
            .count();
        if publishing_prefixes > 0 {
            assert!(!meta.geofeed.is_empty());
        }
    }

    #[test]
    fn geofeed_mostly_matches_owner_city() {
        let (_, _, pop, meta) = build();
        let mut ok = 0;
        let mut total = 0;
        for (prefix, city) in &meta.geofeed {
            let (_, owner_city) = pop.plan.owner(*prefix).unwrap();
            total += 1;
            if owner_city == *city {
                ok += 1;
            }
        }
        if total >= 20 {
            assert!(ok as f64 / total as f64 > 0.8);
        }
    }
}
