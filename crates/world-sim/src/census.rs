//! World census: the numbers behind the paper's Tables 1 and 2.
//!
//! Table 1 recaps the datasets (723 anchors as targets, 10k probes as VPs);
//! Table 2 breaks the probes/anchors down by CAIDA AS category. The census
//! computes both from a generated world so the `tab1`/`tab2` binaries can
//! print the replication's rows next to the paper's.

use crate::asn::AsCategory;
use crate::ids::HostId;
use crate::world::World;
use std::collections::HashSet;

/// Host counts per AS category (one Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CategoryCounts {
    /// Counts in `AsCategory::ALL` order.
    pub counts: [usize; 6],
}

impl CategoryCounts {
    /// Total hosts across categories.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Fraction of the row in the given category.
    pub fn fraction(&self, cat: AsCategory) -> f64 {
        let idx = AsCategory::ALL
            .iter()
            .position(|c| *c == cat)
            .expect("known");
        if self.total() == 0 {
            0.0
        } else {
            self.counts[idx] as f64 / self.total() as f64
        }
    }

    /// Adds two rows elementwise (the probes + anchors row of Table 2).
    pub fn plus(&self, other: &CategoryCounts) -> CategoryCounts {
        let counts = std::array::from_fn(|i| self.counts[i] + other.counts[i]);
        CategoryCounts { counts }
    }
}

/// The full census.
#[derive(Debug, Clone, PartialEq)]
pub struct Census {
    /// Number of anchors (the replication's targets).
    pub anchors: usize,
    /// Number of probes.
    pub probes: usize,
    /// Number of cities, countries and ASes hosting at least one anchor.
    pub anchor_cities: usize,
    /// Countries with at least one anchor.
    pub anchor_countries: usize,
    /// ASes hosting at least one anchor.
    pub anchor_ases: usize,
    /// Anchors per continent in `Continent::ALL` order.
    pub anchors_per_continent: [usize; 6],
    /// Table 2, anchors row.
    pub anchor_categories: CategoryCounts,
    /// Table 2, probes row.
    pub probe_categories: CategoryCounts,
    /// Total ASes in the world.
    pub total_ases: usize,
    /// Total cities in the world.
    pub total_cities: usize,
    /// Total countries in the world.
    pub total_countries: usize,
}

impl Census {
    /// Computes the census of a world.
    pub fn of(world: &World) -> Census {
        let categorize = |ids: &[HostId]| {
            let mut row = CategoryCounts::default();
            for &id in ids {
                let cat = world.asn(world.host(id).asn).category;
                let idx = AsCategory::ALL
                    .iter()
                    .position(|c| *c == cat)
                    .expect("known");
                row.counts[idx] += 1;
            }
            row
        };

        let mut anchor_cities = HashSet::new();
        let mut anchor_countries = HashSet::new();
        let mut anchor_ases = HashSet::new();
        let mut per_continent = [0usize; 6];
        for h in world.anchor_hosts() {
            anchor_cities.insert(h.city);
            anchor_countries.insert(world.city(h.city).country);
            anchor_ases.insert(h.asn);
            let cont = world.city(h.city).continent;
            let idx = crate::continent::Continent::ALL
                .iter()
                .position(|c| *c == cont)
                .expect("known continent");
            per_continent[idx] += 1;
        }

        Census {
            anchors: world.anchors.len(),
            probes: world.probes.len(),
            anchor_cities: anchor_cities.len(),
            anchor_countries: anchor_countries.len(),
            anchor_ases: anchor_ases.len(),
            anchors_per_continent: per_continent,
            anchor_categories: categorize(&world.anchors),
            probe_categories: categorize(&world.probes),
            total_ases: world.ases.len(),
            total_cities: world.cities.len(),
            total_countries: world.num_countries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use geo_model::rng::Seed;

    #[test]
    fn census_counts_small_world() {
        let w = World::generate(WorldConfig::small(Seed(71))).unwrap();
        let c = Census::of(&w);
        assert_eq!(c.anchors, 30);
        assert_eq!(c.probes, 230);
        assert_eq!(c.anchor_categories.total(), 30);
        assert_eq!(c.probe_categories.total(), 230);
        assert!(c.anchor_cities <= 30);
        assert!(c.anchor_cities >= 2);
        assert!(c.anchor_ases >= 2);
        // Small world: Europe + North America only.
        assert_eq!(c.anchors_per_continent[0], 20);
        assert_eq!(c.anchors_per_continent[2], 10);
    }

    #[test]
    fn category_fractions_sum_to_one() {
        let w = World::generate(WorldConfig::small(Seed(71))).unwrap();
        let c = Census::of(&w);
        let total: f64 = AsCategory::ALL
            .iter()
            .map(|cat| c.probe_categories.fraction(*cat))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plus_adds_rows() {
        let a = CategoryCounts {
            counts: [1, 2, 3, 4, 5, 6],
        };
        let b = CategoryCounts {
            counts: [6, 5, 4, 3, 2, 1],
        };
        assert_eq!(a.plus(&b).counts, [7; 6]);
        assert_eq!(a.plus(&b).total(), 42);
    }
}
