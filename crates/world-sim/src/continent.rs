//! Continents and their (coarse) landmass geometry.
//!
//! Cities are sampled inside per-continent collections of bounding boxes
//! that roughly follow the populated parts of each landmass. The exact
//! shapes do not matter for the replication — what matters is that
//! continents are *far apart* (inter-continental RTTs are dominated by
//! geography) and that the paper's continental target distribution
//! (EU 399, AS 133, NA 125, SA 27, OC 18, AF 16) can be reproduced.

use geo_model::point::GeoPoint;
use rand::Rng;

/// The six continents the paper's Figure 4 splits targets by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Continent {
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

/// A latitude/longitude box with a sampling weight proportional to how much
/// of the continent's population it holds.
#[derive(Debug, Clone, Copy)]
pub struct LandBox {
    /// Minimum latitude (degrees).
    pub lat_min: f64,
    /// Maximum latitude (degrees).
    pub lat_max: f64,
    /// Minimum longitude (degrees).
    pub lon_min: f64,
    /// Maximum longitude (degrees).
    pub lon_max: f64,
    /// Relative sampling weight.
    pub weight: f64,
}

impl LandBox {
    /// True if the point lies inside this box.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat() >= self.lat_min
            && p.lat() <= self.lat_max
            && p.lon() >= self.lon_min
            && p.lon() <= self.lon_max
    }

    /// Samples a uniform point inside the box.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        GeoPoint::new(
            rng.gen_range(self.lat_min..self.lat_max),
            rng.gen_range(self.lon_min..self.lon_max),
        )
    }
}

impl Continent {
    /// All continents, in the order used by reports.
    pub const ALL: [Continent; 6] = [
        Continent::Europe,
        Continent::Asia,
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Africa,
        Continent::Oceania,
    ];

    /// Two-letter code used in the paper's Figure 4 legend.
    pub fn code(&self) -> &'static str {
        match self {
            Continent::Europe => "EU",
            Continent::Asia => "AS",
            Continent::NorthAmerica => "NA",
            Continent::SouthAmerica => "SA",
            Continent::Africa => "AF",
            Continent::Oceania => "OC",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Continent::Europe => "Europe",
            Continent::Asia => "Asia",
            Continent::NorthAmerica => "North America",
            Continent::SouthAmerica => "South America",
            Continent::Africa => "Africa",
            Continent::Oceania => "Oceania",
        }
    }

    /// The populated-landmass boxes of this continent.
    pub fn land_boxes(&self) -> &'static [LandBox] {
        match self {
            Continent::Europe => &[
                // Western/central Europe: dense.
                LandBox {
                    lat_min: 36.0,
                    lat_max: 60.0,
                    lon_min: -10.0,
                    lon_max: 25.0,
                    weight: 3.0,
                },
                // Eastern Europe.
                LandBox {
                    lat_min: 44.0,
                    lat_max: 60.0,
                    lon_min: 25.0,
                    lon_max: 40.0,
                    weight: 1.0,
                },
                // Scandinavia.
                LandBox {
                    lat_min: 55.0,
                    lat_max: 68.0,
                    lon_min: 5.0,
                    lon_max: 30.0,
                    weight: 0.5,
                },
            ],
            Continent::Asia => &[
                // East Asia.
                LandBox {
                    lat_min: 22.0,
                    lat_max: 45.0,
                    lon_min: 100.0,
                    lon_max: 145.0,
                    weight: 3.0,
                },
                // South Asia.
                LandBox {
                    lat_min: 8.0,
                    lat_max: 32.0,
                    lon_min: 68.0,
                    lon_max: 92.0,
                    weight: 2.0,
                },
                // Southeast Asia.
                LandBox {
                    lat_min: -8.0,
                    lat_max: 20.0,
                    lon_min: 95.0,
                    lon_max: 125.0,
                    weight: 1.5,
                },
                // Middle East / central Asia.
                LandBox {
                    lat_min: 12.0,
                    lat_max: 42.0,
                    lon_min: 35.0,
                    lon_max: 68.0,
                    weight: 1.0,
                },
            ],
            Continent::NorthAmerica => &[
                // Contiguous US + southern Canada.
                LandBox {
                    lat_min: 28.0,
                    lat_max: 50.0,
                    lon_min: -125.0,
                    lon_max: -68.0,
                    weight: 3.0,
                },
                // Mexico / Central America.
                LandBox {
                    lat_min: 10.0,
                    lat_max: 28.0,
                    lon_min: -110.0,
                    lon_max: -85.0,
                    weight: 1.0,
                },
            ],
            Continent::SouthAmerica => &[
                // Brazil coast / southeastern cone.
                LandBox {
                    lat_min: -35.0,
                    lat_max: -5.0,
                    lon_min: -65.0,
                    lon_max: -38.0,
                    weight: 2.0,
                },
                // Andean west.
                LandBox {
                    lat_min: -35.0,
                    lat_max: 10.0,
                    lon_min: -80.0,
                    lon_max: -65.0,
                    weight: 1.0,
                },
            ],
            Continent::Africa => &[
                // North Africa.
                LandBox {
                    lat_min: 25.0,
                    lat_max: 37.0,
                    lon_min: -10.0,
                    lon_max: 32.0,
                    weight: 1.0,
                },
                // West Africa.
                LandBox {
                    lat_min: 4.0,
                    lat_max: 15.0,
                    lon_min: -17.0,
                    lon_max: 10.0,
                    weight: 1.0,
                },
                // East Africa.
                LandBox {
                    lat_min: -5.0,
                    lat_max: 15.0,
                    lon_min: 30.0,
                    lon_max: 45.0,
                    weight: 1.0,
                },
                // Southern Africa.
                LandBox {
                    lat_min: -35.0,
                    lat_max: -15.0,
                    lon_min: 15.0,
                    lon_max: 32.0,
                    weight: 1.0,
                },
            ],
            Continent::Oceania => &[
                // Australian east/south coast.
                LandBox {
                    lat_min: -38.0,
                    lat_max: -25.0,
                    lon_min: 138.0,
                    lon_max: 154.0,
                    weight: 2.0,
                },
                // New Zealand.
                LandBox {
                    lat_min: -47.0,
                    lat_max: -34.0,
                    lon_min: 166.0,
                    lon_max: 179.0,
                    weight: 1.0,
                },
            ],
        }
    }

    /// Samples a point on this continent, box-weighted.
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        let boxes = self.land_boxes();
        let total: f64 = boxes.iter().map(|b| b.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        for b in boxes {
            if pick < b.weight {
                return b.sample(rng);
            }
            pick -= b.weight;
        }
        boxes[boxes.len() - 1].sample(rng)
    }

    /// True if the point lies in any of this continent's boxes.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.land_boxes().iter().any(|b| b.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;

    #[test]
    fn sampled_points_stay_on_continent() {
        let mut rng = Seed(11).derive("continent-test").rng();
        for continent in Continent::ALL {
            for _ in 0..200 {
                let p = continent.sample_point(&mut rng);
                assert!(
                    continent.contains(&p),
                    "{} escaped: {}",
                    continent.name(),
                    p
                );
            }
        }
    }

    #[test]
    fn continents_are_disjoint_enough() {
        // Sampled European and Oceanian points must be far apart.
        let mut rng = Seed(12).derive("disjoint").rng();
        let eu = Continent::Europe.sample_point(&mut rng);
        let oc = Continent::Oceania.sample_point(&mut rng);
        assert!(eu.distance(&oc).value() > 10_000.0);
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = Continent::ALL.iter().map(|c| c.code()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 6);
    }

    #[test]
    fn box_weights_positive() {
        for c in Continent::ALL {
            assert!(!c.land_boxes().is_empty());
            for b in c.land_boxes() {
                assert!(b.weight > 0.0);
                assert!(b.lat_min < b.lat_max);
                assert!(b.lon_min < b.lon_max);
            }
        }
    }
}
