//! Typed identifiers for world entities.
//!
//! Indices into the world's dense entity vectors, wrapped so that a city
//! index can never be used where an AS index is expected.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense-vector index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_type!(
    /// A city in the synthetic world.
    CityId,
    "city"
);
id_type!(
    /// An autonomous system.
    AsId,
    "AS"
);
id_type!(
    /// A country (coarse geographic partition within a continent).
    CountryId,
    "country"
);
id_type!(
    /// A host: anchor, probe, representative, router or web server.
    HostId,
    "host"
);

/// A postal code: city plus a local ~2 km grid cell, the granularity at
/// which the mapping service reverse-geocodes and at which the street-level
/// paper matches websites to sampled circle points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZipCode {
    /// The city this postal code belongs to.
    pub city: CityId,
    /// The local grid cell within the city.
    pub cell: u16,
}

impl fmt::Display for ZipCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:05}-{:04}", self.city.0 % 100_000, self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(CityId(3).to_string(), "city3");
        assert_eq!(AsId(65000).to_string(), "AS65000");
        assert_eq!(HostId(1).to_string(), "host1");
        assert_eq!(CountryId(9).to_string(), "country9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(CityId(1));
        set.insert(CityId(1));
        set.insert(CityId(2));
        assert_eq!(set.len(), 2);
        assert!(CityId(1) < CityId(2));
    }

    #[test]
    fn zipcode_identity() {
        let a = ZipCode {
            city: CityId(5),
            cell: 17,
        };
        let b = ZipCode {
            city: CityId(5),
            cell: 17,
        };
        let c = ZipCode {
            city: CityId(5),
            cell: 18,
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "00005-0017");
    }
}
