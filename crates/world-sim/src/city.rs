//! Cities: placement, population, and a spatial index.
//!
//! Cities are the world's geographic anchors: hosts, websites and postal
//! codes all hang off a city. Placement samples continent land boxes with a
//! minimum-separation rule (so "city-level accuracy = 40 km" remains a
//! meaningful granularity), populations follow a per-continent Zipf law,
//! and countries are coarse geographic partitions of each continent.

use crate::config::WorldConfig;
use crate::continent::Continent;
use crate::ids::{CityId, CountryId};
use geo_model::distr::Zipf;
use geo_model::point::GeoPoint;
use geo_model::units::Km;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Minimum distance between two city centers, km.
const MIN_CITY_SEPARATION_KM: f64 = 30.0;
/// Attempts to find a separated location before giving up on separation.
const PLACEMENT_ATTEMPTS: usize = 40;
/// Size of the country grid cells, degrees (lat, lon).
const COUNTRY_CELL_DEG: (f64, f64) = (6.0, 8.0);

/// A city in the synthetic world.
#[derive(Debug, Clone)]
pub struct City {
    /// Identifier (index into the world's city vector).
    pub id: CityId,
    /// Synthetic name, e.g. `EU-0042`.
    pub name: String,
    /// City center.
    pub center: GeoPoint,
    /// Population (people).
    pub population: f64,
    /// Core population density (people/km²) used by the density field.
    pub core_density: f64,
    /// Continent the city is on.
    pub continent: Continent,
    /// Country (coarse partition of the continent).
    pub country: CountryId,
    /// Extra last-mile delay (ms) that access infrastructure in this city
    /// adds to every probe; zero for well-served cities. Correlating
    /// last-mile quality by city reproduces §5.1.5's targets whose *every*
    /// nearby probe measures a large RTT.
    pub infrastructure_penalty_ms: f64,
}

/// Generates all cities plus the number of distinct countries.
pub fn generate_cities<R: Rng + ?Sized>(cfg: &WorldConfig, rng: &mut R) -> (Vec<City>, usize) {
    let mut cities: Vec<City> = Vec::with_capacity(cfg.total_cities());
    let mut country_ids: HashMap<(Continent, i32, i32), CountryId> = HashMap::new();

    for mix in &cfg.mix {
        let n = mix.cities;
        if n == 0 {
            continue;
        }
        // Sample separated centers.
        let mut centers: Vec<GeoPoint> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut placed = None;
            for _ in 0..PLACEMENT_ATTEMPTS {
                let p = mix.continent.sample_point(rng);
                let ok = centers
                    .iter()
                    .all(|c| c.distance(&p).value() >= MIN_CITY_SEPARATION_KM);
                if ok {
                    placed = Some(p);
                    break;
                }
            }
            centers.push(placed.unwrap_or_else(|| mix.continent.sample_point(rng)));
        }

        // Zipf populations over a random rank permutation, so geography and
        // rank are independent.
        let zipf = Zipf::new(n, cfg.city_zipf_exponent);
        let mut ranks: Vec<usize> = (1..=n).collect();
        ranks.shuffle(rng);

        for (i, center) in centers.into_iter().enumerate() {
            let rank = ranks[i];
            // Use the Zipf weight relative to rank 1 to scale populations.
            let population = cfg.max_city_population * zipf.weight(rank) / zipf.weight(1);
            let population = population.max(20_000.0);
            let id = CityId(cities.len() as u32);
            let country = country_of(&mut country_ids, mix.continent, &center);
            let infrastructure_penalty_ms = if rng.gen::<f64>() < cfg.heavy_city_fraction {
                rng.gen_range(4.0..14.0)
            } else {
                0.0
            };
            cities.push(City {
                id,
                name: format!("{}-{:04}", mix.continent.code(), i),
                center,
                population,
                core_density: core_density(population),
                continent: mix.continent,
                country,
                infrastructure_penalty_ms,
            });
        }
    }

    let num_countries = country_ids.len();
    (cities, num_countries)
}

/// Core population density from total population: sublinear, so megacities
/// reach a few thousand people/km² and small towns a few hundred.
fn core_density(population: f64) -> f64 {
    (8.0 * population.powf(0.42)).min(25_000.0)
}

fn country_of(
    ids: &mut HashMap<(Continent, i32, i32), CountryId>,
    continent: Continent,
    p: &GeoPoint,
) -> CountryId {
    let cell = (
        (p.lat() / COUNTRY_CELL_DEG.0).floor() as i32,
        (p.lon() / COUNTRY_CELL_DEG.1).floor() as i32,
    );
    let next = CountryId(ids.len() as u32);
    *ids.entry((continent, cell.0, cell.1)).or_insert(next)
}

/// A grid-bucketed spatial index over city centers for nearest-city and
/// radius queries (used by the density field, zip codes, and landmark
/// discovery).
#[derive(Debug, Clone)]
pub struct CityIndex {
    /// City centers, indexed by `CityId`.
    centers: Vec<GeoPoint>,
    /// 1°-cell buckets: (lat_cell, lon_cell) -> city indices.
    grid: HashMap<(i32, i32), Vec<u32>>,
}

impl CityIndex {
    /// Builds the index.
    pub fn build(cities: &[City]) -> CityIndex {
        let mut grid: HashMap<(i32, i32), Vec<u32>> = HashMap::new();
        let centers: Vec<GeoPoint> = cities.iter().map(|c| c.center).collect();
        for (i, p) in centers.iter().enumerate() {
            grid.entry(Self::cell(p)).or_default().push(i as u32);
        }
        CityIndex { centers, grid }
    }

    fn cell(p: &GeoPoint) -> (i32, i32) {
        (p.lat().floor() as i32, p.lon().floor() as i32)
    }

    /// The nearest city to `p`, or `None` if the index is empty.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(CityId, Km)> {
        if self.centers.is_empty() {
            return None;
        }
        let (clat, clon) = Self::cell(p);
        // Expand search rings until a hit is found, then one extra ring to
        // guard against grid-boundary effects.
        let mut best: Option<(u32, f64)> = None;
        let mut ring = 0i32;
        loop {
            let mut found_any = false;
            for dlat in -ring..=ring {
                for dlon in -ring..=ring {
                    if dlat.abs() != ring && dlon.abs() != ring {
                        continue; // only the ring boundary
                    }
                    // Wrap longitude cells.
                    let lon_cell = wrap_lon_cell(clon + dlon);
                    if let Some(bucket) = self.grid.get(&(clat + dlat, lon_cell)) {
                        found_any = true;
                        for &i in bucket {
                            let d = self.centers[i as usize].distance(p).value();
                            if best.is_none_or(|(_, bd)| d < bd) {
                                best = Some((i, d));
                            }
                        }
                    }
                }
            }
            if let Some((_, bd)) = best {
                // Terminate once the scanned rings are guaranteed to cover
                // the best distance. Longitude cells shrink by cos(lat), so
                // use the most pessimistic latitude touched by the scan.
                let worst_lat = (p.lat().abs() + ring as f64 + 1.0).min(89.0);
                let lon_km_per_cell = 111.32 * worst_lat.to_radians().cos();
                let scanned_km = ring as f64 * lon_km_per_cell.min(110.57);
                if bd <= scanned_km || ring > 360 {
                    break;
                }
            }
            if ring > 400 {
                break;
            }
            let _ = found_any;
            ring += 1;
        }
        best.map(|(i, d)| (CityId(i), Km(d)))
    }

    /// All cities within `radius` of `p`.
    pub fn within(&self, p: &GeoPoint, radius: Km) -> Vec<(CityId, Km)> {
        // Longitude cells shrink by cos(lat); size the scan for the most
        // pessimistic latitude the radius can reach.
        let lat_cells = (radius.value() / 110.57).ceil();
        let worst_lat = (p.lat().abs() + lat_cells + 1.0).min(89.0);
        let lon_km = 111.32 * worst_lat.to_radians().cos();
        let cells = (radius.value() / lon_km.min(110.57)).ceil() as i32 + 1;
        let (clat, clon) = Self::cell(p);
        let mut out = Vec::new();
        for dlat in -cells..=cells {
            for dlon in -cells..=cells {
                let lon_cell = wrap_lon_cell(clon + dlon);
                if let Some(bucket) = self.grid.get(&(clat + dlat, lon_cell)) {
                    for &i in bucket {
                        let d = self.centers[i as usize].distance(p);
                        if d <= radius {
                            out.push((CityId(i), d));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| a.1.total_cmp(&b.1));
        out
    }
}

fn wrap_lon_cell(cell: i32) -> i32 {
    let mut c = cell;
    while c < -180 {
        c += 360;
    }
    while c >= 180 {
        c -= 360;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;

    fn make_world() -> (Vec<City>, usize) {
        let cfg = WorldConfig::small(Seed(5));
        let mut rng = Seed(5).derive("cities").rng();
        generate_cities(&cfg, &mut rng)
    }

    #[test]
    fn generates_requested_counts() {
        let (cities, countries) = make_world();
        assert_eq!(cities.len(), 50);
        assert!(
            countries >= 2,
            "expected multiple countries, got {countries}"
        );
    }

    #[test]
    fn cities_are_on_their_continent() {
        let (cities, _) = make_world();
        for c in &cities {
            assert!(c.continent.contains(&c.center), "{} off-continent", c.name);
        }
    }

    #[test]
    fn populations_follow_zipf_shape() {
        let (cities, _) = make_world();
        let max = cities.iter().map(|c| c.population).fold(0.0, f64::max);
        let min = cities
            .iter()
            .map(|c| c.population)
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 5.0, "Zipf spread too small: {max}/{min}");
        assert!(cities.iter().all(|c| c.population >= 20_000.0));
    }

    #[test]
    fn most_cities_respect_separation() {
        let (cities, _) = make_world();
        let mut violations = 0;
        for (i, a) in cities.iter().enumerate() {
            for b in &cities[i + 1..] {
                if a.continent == b.continent
                    && a.center.distance(&b.center).value() < MIN_CITY_SEPARATION_KM
                {
                    violations += 1;
                }
            }
        }
        // Rejection sampling is best-effort; tolerate a few collisions.
        assert!(
            violations <= cities.len() / 10,
            "{violations} separation violations"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorldConfig::small(Seed(5));
        let mut r1 = Seed(5).derive("cities").rng();
        let mut r2 = Seed(5).derive("cities").rng();
        let (a, _) = generate_cities(&cfg, &mut r1);
        let (b, _) = generate_cities(&cfg, &mut r2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.population, y.population);
            assert_eq!(x.country, y.country);
        }
    }

    #[test]
    fn index_nearest_matches_linear_scan() {
        let (cities, _) = make_world();
        let index = CityIndex::build(&cities);
        let mut rng = Seed(6).derive("probe-points").rng();
        for _ in 0..50 {
            let p = Continent::Europe.sample_point(&mut rng);
            let (got, gd) = index.nearest(&p).unwrap();
            let want = cities
                .iter()
                .min_by(|a, b| a.center.distance(&p).total_cmp(&b.center.distance(&p)))
                .unwrap();
            let wd = want.center.distance(&p);
            assert!(
                (gd.value() - wd.value()).abs() < 1e-6,
                "nearest mismatch: got {} at {}, want {} at {}",
                got,
                gd,
                want.id,
                wd
            );
        }
    }

    #[test]
    fn index_within_radius() {
        let (cities, _) = make_world();
        let index = CityIndex::build(&cities);
        let p = cities[0].center;
        let hits = index.within(&p, Km(500.0));
        assert!(hits.iter().any(|(id, _)| *id == cities[0].id));
        // Sorted by distance.
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // All within radius and no false negatives.
        let brute: usize = cities
            .iter()
            .filter(|c| c.center.distance(&p).value() <= 500.0)
            .count();
        assert_eq!(hits.len(), brute);
    }

    #[test]
    fn empty_index_returns_none() {
        let index = CityIndex::build(&[]);
        assert!(index.nearest(&GeoPoint::new(0.0, 0.0)).is_none());
    }
}
