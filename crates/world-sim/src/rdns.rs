//! On-demand reverse-DNS hostname synthesis for the hints tier.
//!
//! HLOC-style geolocation mines rDNS names for airport and city codes and
//! verifies them with latency. This module gives the synthetic world the
//! raw material: ISP-templated hostnames that embed either an IATA-like
//! airport code or a compact city code, with a seeded `truthfulness` knob
//! that makes a configurable fraction of names stale (they encode the
//! AS's WHOIS headquarters city, or an arbitrary wrong city, instead of
//! the host's deployment — the classic decommissioned-router failure).
//!
//! Unlike [`crate::metadata::Metadata`], which is generated once inside
//! [`crate::world::World::generate`] and therefore pinned into the world's
//! RNG stage order, everything here is computed *on demand* as a pure
//! function of `(world seed, knob values, host id)` — hashed, never
//! streamed — so sweeping coverage or truthfulness never perturbs the
//! world, and the output is bit-identical at any `IPGEO_THREADS` setting.

use crate::ids::{CityId, HostId};
use crate::world::World;
use geo_model::rng::{fnv1a, splitmix64};

/// Router-role tokens used by the ISP templates. These (plus the template
/// scaffolding `as<digits>` / `example` / `net`) are the reserved words a
/// hint extractor must never read as a location code.
pub const ROLE_TOKENS: [&str; 6] = ["ge", "xe", "ae", "core", "edge", "cpe"];

/// Every non-location token the templates can emit.
pub fn reserved_tokens() -> impl Iterator<Item = &'static str> {
    ROLE_TOKENS.into_iter().chain(["as", "example", "net"])
}

/// Knobs of the rDNS synthesizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdnsConfig {
    /// Fraction of hosts that publish a location-bearing rDNS name.
    pub coverage: f64,
    /// Fraction of published names that encode the host's *actual* city;
    /// the rest are stale/misleading.
    pub truthfulness: f64,
}

impl RdnsConfig {
    /// A config with both knobs clamped into `[0, 1]`.
    pub fn new(coverage: f64, truthfulness: f64) -> RdnsConfig {
        RdnsConfig {
            coverage: coverage.clamp(0.0, 1.0),
            truthfulness: truthfulness.clamp(0.0, 1.0),
        }
    }
}

/// Which naming scheme a hostname uses for its location token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingScheme {
    /// Three-letter IATA-like code hashed from the city name (codes can
    /// collide across cities — the ambiguity a real extractor faces).
    Airport,
    /// The full city name compacted (`EU-0042` → `eu0042`); unique.
    CityCode,
}

/// One synthesized reverse-DNS name.
#[derive(Debug, Clone, PartialEq)]
pub struct RdnsName {
    /// The hostname.
    pub name: String,
    /// The city the embedded code stands for (ground truth of the
    /// *encoding*, not necessarily of the host).
    pub city: CityId,
    /// True if `city` is the host's actual city.
    pub truthful: bool,
    /// The scheme the location token uses.
    pub scheme: NamingScheme,
}

/// The airport-style code of a city name: three lowercase letters hashed
/// from the name, re-rolled past any reserved token. Distinct cities can
/// share a code.
pub fn airport_code(city_name: &str) -> String {
    let mut h = splitmix64(fnv1a(city_name.as_bytes()) ^ fnv1a(b"rdns-airport"));
    loop {
        let code: String = (0..3)
            .map(|i| char::from(b'a' + ((h >> (i * 5)) % 26) as u8))
            .collect();
        if !reserved_tokens().any(|r| r == code) {
            return code;
        }
        h = splitmix64(h);
    }
}

/// The compact city code: the city name lowercased with separators
/// dropped (`EU-0042` → `eu0042`). Injective over the generated names.
pub fn city_code(city_name: &str) -> String {
    city_name
        .chars()
        .filter(|c| *c != '-')
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// The rDNS name of `host` under `cfg`, or `None` if the host is outside
/// the configured coverage. Pure function of `(world seed, cfg, host)`.
pub fn hostname(world: &World, cfg: &RdnsConfig, host: HostId) -> Option<RdnsName> {
    let seed = world.config.seed.derive("rdns").0;
    if unit(seed, b"cover", host.0) >= cfg.coverage {
        return None;
    }
    let h = world.host(host);
    let truthful_draw = unit(seed, b"truth", host.0) < cfg.truthfulness;
    let (city, truthful) = if truthful_draw {
        (h.city, true)
    } else {
        match misleading_city(world, seed, host, h.city) {
            Some(c) => (c, false),
            // A one-city world cannot mislead; fall back to the truth.
            None => (h.city, true),
        }
    };
    let scheme_bits = splitmix64(seed ^ splitmix64(u64::from(host.0) ^ fnv1a(b"scheme")));
    let scheme = if scheme_bits & 1 == 0 {
        NamingScheme::Airport
    } else {
        NamingScheme::CityCode
    };
    let city_name = &world.city(city).name;
    let code = match scheme {
        NamingScheme::Airport => airport_code(city_name),
        NamingScheme::CityCode => city_code(city_name),
    };
    let role = ROLE_TOKENS[((scheme_bits >> 8) % ROLE_TOKENS.len() as u64) as usize];
    let unit_no = (scheme_bits >> 16) % 24;
    let asn = h.asn.0;
    let name = match (scheme_bits >> 32) % 3 {
        0 => format!("{role}-{code}-{unit_no}.as{asn}.example.net"),
        1 => format!("{code}.{role}{unit_no}.as{asn}.example.net"),
        _ => format!("{role}{unit_no}.{code}.as{asn}.example.net"),
    };
    Some(RdnsName {
        name,
        city,
        truthful,
        scheme,
    })
}

/// A deterministic wrong city for a stale name: the AS's WHOIS city when
/// that differs from the truth, otherwise a hash-picked other city.
/// `None` only when the world has a single city.
fn misleading_city(world: &World, seed: u64, host: HostId, actual: CityId) -> Option<CityId> {
    let whois = world.asn(world.host(host).asn).whois_city;
    if whois != actual {
        return Some(whois);
    }
    let n = world.cities.len() as u32;
    if n <= 1 {
        return None;
    }
    let step = 1
        + (splitmix64(seed ^ splitmix64(u64::from(host.0) ^ fnv1a(b"stale"))) % u64::from(n - 1))
            as u32;
    Some(CityId((actual.0 + step) % n))
}

/// A unit-interval draw keyed by `(seed, label, index)` — the same hashed
/// (never streamed) construction as `ipgeo::dbsim`, so every draw is
/// independent of evaluation order.
fn unit(seed: u64, label: &[u8], index: u32) -> f64 {
    let k = splitmix64(u64::from(index) ^ fnv1a(label));
    (splitmix64(seed ^ k) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use geo_model::rng::Seed;

    fn world() -> World {
        World::generate(WorldConfig::small(Seed(83))).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let cfg = RdnsConfig::new(0.7, 0.8);
        for &h in w.anchors.iter().chain(&w.probes) {
            assert_eq!(hostname(&w, &cfg, h), hostname(&w, &cfg, h));
        }
    }

    #[test]
    fn coverage_bounds_are_sharp() {
        let w = world();
        let none = RdnsConfig::new(0.0, 1.0);
        let all = RdnsConfig::new(1.0, 1.0);
        assert!(w.probes.iter().all(|&h| hostname(&w, &none, h).is_none()));
        assert!(w.probes.iter().all(|&h| hostname(&w, &all, h).is_some()));
    }

    #[test]
    fn coverage_fraction_roughly_configured() {
        let w = world();
        let cfg = RdnsConfig::new(0.5, 1.0);
        let named = w
            .probes
            .iter()
            .filter(|&&h| hostname(&w, &cfg, h).is_some())
            .count();
        let frac = named as f64 / w.probes.len() as f64;
        assert!((0.35..0.65).contains(&frac), "coverage {frac}");
    }

    #[test]
    fn full_truthfulness_encodes_the_actual_city() {
        let w = world();
        let cfg = RdnsConfig::new(1.0, 1.0);
        for &h in &w.probes {
            let n = hostname(&w, &cfg, h).unwrap();
            assert!(n.truthful);
            assert_eq!(n.city, w.host(h).city);
        }
    }

    #[test]
    fn zero_truthfulness_misleads() {
        let w = world();
        let cfg = RdnsConfig::new(1.0, 0.0);
        let misleading = w
            .probes
            .iter()
            .filter(|&&h| {
                let n = hostname(&w, &cfg, h).unwrap();
                !n.truthful && n.city != w.host(h).city
            })
            .count();
        // Every name should be stale (modulo the one-city fallback, which
        // cannot fire in a 50-city world).
        assert_eq!(misleading, w.probes.len());
    }

    #[test]
    fn names_embed_the_code_of_the_encoded_city() {
        let w = world();
        let cfg = RdnsConfig::new(1.0, 0.6);
        for &h in &w.probes {
            let n = hostname(&w, &cfg, h).unwrap();
            let code = match n.scheme {
                NamingScheme::Airport => airport_code(&w.city(n.city).name),
                NamingScheme::CityCode => city_code(&w.city(n.city).name),
            };
            assert!(n.name.contains(&code), "{} missing {code}", n.name);
            assert!(n.name.ends_with(".example.net"));
        }
    }

    #[test]
    fn airport_codes_are_three_letters_and_never_reserved() {
        let w = world();
        for c in &w.cities {
            let code = airport_code(&c.name);
            assert_eq!(code.len(), 3);
            assert!(code.bytes().all(|b| b.is_ascii_lowercase()));
            assert!(reserved_tokens().all(|r| r != code));
        }
    }

    #[test]
    fn city_codes_are_unique() {
        let w = world();
        let mut codes: Vec<String> = w.cities.iter().map(|c| city_code(&c.name)).collect();
        codes.sort();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before);
    }
}
