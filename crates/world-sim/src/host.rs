//! Host populations: anchors, probes, hitlist representatives, and the
//! address plan that ties `/24` prefixes to AS points of presence.
//!
//! The placement rules encode the properties the replication's analysis
//! depends on:
//!
//! - anchors are well-connected servers (negligible last-mile delay, §4.4.2)
//!   whose *registered* geolocation is usually — but not always — correct;
//!   the few wrong ones are what §4.3's sanitizer must catch;
//! - probes live disproportionately in access networks (Table 2) and suffer
//!   last-mile delay; a small fraction has a heavy tail, which is what makes
//!   some European targets hard to geolocate despite nearby probes (§5.1.5);
//! - each anchor's `/24` holds several responsive "representative"
//!   addresses, usually in the same city (the million-scale paper's core
//!   assumption) but occasionally split to a different site.

use crate::asn::{AsCategory, AutonomousSystem};
use crate::city::City;
use crate::config::{CategoryMix, WorldConfig};
use crate::ids::{AsId, CityId, HostId};
use geo_model::ip::{Ipv4, Prefix24};
use geo_model::point::GeoPoint;
use geo_model::units::Km;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};

/// What role a host plays in the replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostKind {
    /// A RIPE-Atlas-style anchor: target and street-level vantage point.
    Anchor,
    /// A RIPE-Atlas-style probe: million-scale vantage point.
    Probe,
    /// A responsive hitlist address in some target's /24.
    Representative,
    /// A web server (created later by `web-sim`).
    WebServer,
}

/// Last-mile delay profile of a host, sampled per-measurement by `net-sim`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LastMile {
    /// Well-connected server: sub-0.1 ms.
    Negligible,
    /// Residential access: gamma-distributed with the given mean (ms).
    Access {
        /// Mean extra delay in milliseconds.
        mean_ms: f64,
    },
}

/// A host in the synthetic world.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identifier (index into the world's host vector).
    pub id: HostId,
    /// The host's IPv4 address.
    pub ip: Ipv4,
    /// Role.
    pub kind: HostKind,
    /// The AS announcing the host's prefix.
    pub asn: AsId,
    /// The city whose PoP serves the host.
    pub city: CityId,
    /// True physical location.
    pub location: GeoPoint,
    /// Location *registered* in platform metadata — differs from
    /// `location` for mis-geolocated hosts.
    pub registered_location: GeoPoint,
    /// Last-mile delay profile.
    pub last_mile: LastMile,
}

impl Host {
    /// True if the registered location is (materially) wrong.
    pub fn is_mis_geolocated(&self) -> bool {
        self.location.distance(&self.registered_location).value() > 1.0
    }
}

/// Allocates `/24` prefixes to (AS, city) points of presence and addresses
/// within them.
#[derive(Debug, Clone, Default)]
pub struct AddressPlan {
    /// prefix -> owning PoP. A `BTreeMap` so `prefixes()` iterates in
    /// prefix order — downstream consumers draw randomness per prefix and
    /// must see a deterministic walk (geo-lint: D2).
    owners: BTreeMap<Prefix24, (AsId, CityId)>,
    /// Next free prefix (starts at 1.0.0.0/24 and grows linearly).
    next_prefix: u32,
    /// Next free host byte in the most recent prefix per PoP.
    cursors: HashMap<(AsId, CityId), (Prefix24, u8)>,
}

/// Hosts per /24 before a PoP gets a fresh prefix. Leaves room for the
/// hitlist representatives added into anchor prefixes.
const HOSTS_PER_PREFIX: u8 = 200;

impl AddressPlan {
    /// Creates an empty plan.
    pub fn new() -> AddressPlan {
        AddressPlan {
            owners: BTreeMap::new(),
            next_prefix: 1 << 16, // 1.0.0.0/24
            cursors: HashMap::new(),
        }
    }

    /// Allocates a fresh, dedicated /24 for the PoP (used for anchors so
    /// that each target owns its prefix, mirroring how the hitlist picks
    /// representatives per target /24).
    pub fn allocate_prefix(&mut self, asn: AsId, city: CityId) -> Prefix24 {
        let p = Prefix24(self.next_prefix);
        self.next_prefix += 1;
        self.owners.insert(p, (asn, city));
        p
    }

    /// Allocates the next address for a PoP, opening a new /24 when the
    /// current one is full.
    pub fn allocate_address(&mut self, asn: AsId, city: CityId) -> Ipv4 {
        let cursor = self.cursors.get(&(asn, city)).copied();
        let (prefix, byte) = match cursor {
            Some((p, b)) if b < HOSTS_PER_PREFIX => (p, b),
            _ => {
                let p = Prefix24(self.next_prefix);
                self.next_prefix += 1;
                self.owners.insert(p, (asn, city));
                (p, 1)
            }
        };
        self.cursors.insert((asn, city), (prefix, byte + 1));
        prefix.host(byte)
    }

    /// The PoP owning a prefix, if allocated.
    pub fn owner(&self, prefix: Prefix24) -> Option<(AsId, CityId)> {
        self.owners.get(&prefix).copied()
    }

    /// Number of allocated prefixes.
    pub fn allocated(&self) -> usize {
        self.owners.len()
    }

    /// Iterates all allocated prefixes with their owners, in prefix order.
    pub fn prefixes(&self) -> impl Iterator<Item = (Prefix24, (AsId, CityId))> + '_ {
        self.owners.iter().map(|(p, o)| (*p, *o))
    }
}

/// The generated host population.
#[derive(Debug, Clone)]
pub struct HostPopulation {
    /// All hosts, indexed by `HostId`.
    pub hosts: Vec<Host>,
    /// Ids of anchor hosts.
    pub anchors: Vec<HostId>,
    /// Ids of probe hosts.
    pub probes: Vec<HostId>,
    /// Ids of representative hosts, grouped per anchor (same order as
    /// `anchors`).
    pub representatives: Vec<Vec<HostId>>,
    /// The address plan.
    pub plan: AddressPlan,
}

/// Context shared by the placement helpers.
struct Placer {
    /// category -> AS ids, for host-to-AS assignment.
    by_category: HashMap<AsCategory, Vec<usize>>,
    /// city -> AS indices with a PoP there.
    pops_in_city: HashMap<CityId, Vec<usize>>,
}

impl Placer {
    fn new(ases: &[AutonomousSystem]) -> Placer {
        let mut by_category: HashMap<AsCategory, Vec<usize>> = HashMap::new();
        let mut pops_in_city: HashMap<CityId, Vec<usize>> = HashMap::new();
        for (i, a) in ases.iter().enumerate() {
            by_category.entry(a.category).or_default().push(i);
            for &c in &a.pops {
                pops_in_city.entry(c).or_default().push(i);
            }
        }
        Placer {
            by_category,
            pops_in_city,
        }
    }

    /// Picks an AS of `category` with a PoP in `city`; if none exists, adds
    /// a PoP there to a random AS of that category (hosting implies
    /// presence) and records it.
    fn as_for<R: Rng + ?Sized>(
        &mut self,
        ases: &mut [AutonomousSystem],
        category: AsCategory,
        city: CityId,
        rng: &mut R,
    ) -> AsId {
        let local = self
            .pops_in_city
            .get(&city)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&i| ases[i].category == category)
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        if let Some(&i) = local.choose(rng) {
            return ases[i].id;
        }
        let pool = self
            .by_category
            .get(&category)
            .or_else(|| self.by_category.get(&AsCategory::Access))
            .expect("at least one AS per fallback category");
        let i = pool[rng.gen_range(0..pool.len())];
        ases[i].pops.push(city);
        self.pops_in_city.entry(city).or_default().push(i);
        ases[i].id
    }
}

/// Picks a category index from a [`CategoryMix`].
fn pick_category<R: Rng + ?Sized>(mix: &CategoryMix, rng: &mut R) -> AsCategory {
    let mut u: f64 = rng.gen();
    for (i, &f) in mix.0.iter().enumerate() {
        if u < f {
            return AsCategory::ALL[i];
        }
        u -= f;
    }
    AsCategory::Unknown
}

/// Cumulative-weight city picker.
struct CityPicker {
    ids: Vec<CityId>,
    cumulative: Vec<f64>,
}

impl CityPicker {
    fn by_population(cities: &[City], filter: impl Fn(&City) -> bool) -> CityPicker {
        CityPicker::by_population_pow(cities, 1.0, filter)
    }

    /// Weights cities by `population^exponent`; exponents below 1 spread
    /// hosts into smaller cities (used for anchors, which volunteers host
    /// well beyond the megacities).
    fn by_population_pow(
        cities: &[City],
        exponent: f64,
        filter: impl Fn(&City) -> bool,
    ) -> CityPicker {
        let mut ids = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for c in cities.iter().filter(|c| filter(c)) {
            acc += c.population.powf(exponent);
            ids.push(c.id);
            cumulative.push(acc);
        }
        CityPicker { ids, cumulative }
    }

    fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CityId> {
        let total = *self.cumulative.last()?;
        let u = rng.gen_range(0.0..total);
        let i = match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("no NaN weights"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        Some(self.ids[i.min(self.ids.len() - 1)])
    }

    fn uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<CityId> {
        self.ids.choose(rng).copied()
    }
}

/// Scatters a location around a city center within the configured radius
/// (triangular-ish falloff toward the edge).
fn scatter<R: Rng + ?Sized>(center: &GeoPoint, radius_km: f64, rng: &mut R) -> GeoPoint {
    let bearing = rng.gen_range(0.0..360.0);
    // sqrt for areal uniformity, squared once more to bias toward center.
    let r = radius_km * rng.gen_range(0.0f64..1.0).sqrt();
    center.destination(bearing, Km(r))
}

/// Generates the host population. `ases` may gain PoPs (hosting implies
/// presence).
pub fn generate_hosts<R: Rng + ?Sized>(
    cfg: &WorldConfig,
    cities: &[City],
    ases: &mut [AutonomousSystem],
    rng: &mut R,
) -> HostPopulation {
    let mut placer = Placer::new(ases);
    let mut plan = AddressPlan::new();
    let mut hosts: Vec<Host> = Vec::new();
    let mut anchors = Vec::new();
    let mut probes = Vec::new();

    // --- Probes first: their footprint defines where close VPs exist. ---
    for mix in &cfg.mix {
        let continent = mix.continent;
        let pop_picker = CityPicker::by_population(cities, |c| c.continent == continent);
        for _ in 0..mix.probes {
            let city = if rng.gen::<f64>() < cfg.probe_population_affinity {
                pop_picker.pick(rng)
            } else {
                pop_picker.uniform(rng)
            }
            .expect("continent has cities");
            let category = pick_category(&cfg.probe_categories, rng);
            let asn = placer.as_for(ases, category, city, rng);
            let ip = plan.allocate_address(asn, city);
            let location = scatter(&cities[city.index()].center, cfg.city_radius_km, rng);
            let heavy = rng.gen::<f64>() < cfg.heavy_last_mile_fraction;
            // The fallback in `as_for` may land the probe in a different
            // category than sampled; last-mile behaviour follows the AS the
            // probe actually lives in.
            let actual_category = ases[asn.index()].category;
            let city_penalty = cities[city.index()].infrastructure_penalty_ms;
            let last_mile = match actual_category {
                AsCategory::Access | AsCategory::TransitAccess => LastMile::Access {
                    mean_ms: city_penalty
                        + if heavy {
                            rng.gen_range(8.0..20.0)
                        } else {
                            rng.gen_range(1.0..5.0)
                        },
                },
                _ if city_penalty > 0.0 => LastMile::Access {
                    mean_ms: city_penalty,
                },
                _ => {
                    if heavy {
                        LastMile::Access {
                            mean_ms: rng.gen_range(6.0..12.0),
                        }
                    } else {
                        LastMile::Negligible
                    }
                }
            };
            let id = HostId(hosts.len() as u32);
            hosts.push(Host {
                id,
                ip,
                kind: HostKind::Probe,
                asn,
                city,
                location,
                registered_location: location,
                last_mile,
            });
            probes.push(id);
        }
    }

    // --- Anchors: each in its own /24 so representatives share the prefix. ---
    let mut anchor_prefixes: Vec<Prefix24> = Vec::new();
    for mix in &cfg.mix {
        let continent = mix.continent;
        let pop_picker = CityPicker::by_population_pow(cities, cfg.anchor_city_exponent, |c| {
            c.continent == continent
        });
        for _ in 0..mix.anchors {
            let city = pop_picker.pick(rng).expect("continent has cities");
            let category = pick_category(&cfg.anchor_categories, rng);
            let asn = placer.as_for(ases, category, city, rng);
            let prefix = plan.allocate_prefix(asn, city);
            let ip = prefix.host(1);
            let location = scatter(&cities[city.index()].center, cfg.city_radius_km, rng);
            let id = HostId(hosts.len() as u32);
            hosts.push(Host {
                id,
                ip,
                kind: HostKind::Anchor,
                asn,
                city,
                location,
                registered_location: location,
                last_mile: LastMile::Negligible,
            });
            anchors.push(id);
            anchor_prefixes.push(prefix);
        }
    }

    // --- Representatives: responsive addresses in each anchor's /24. ---
    let mut representatives: Vec<Vec<HostId>> = Vec::with_capacity(anchors.len());
    for (idx, &anchor_id) in anchors.iter().enumerate() {
        let prefix = anchor_prefixes[idx];
        let anchor = hosts[anchor_id.index()].clone();
        let mut reps = Vec::with_capacity(cfg.hitlist_per_prefix);
        for k in 0..cfg.hitlist_per_prefix {
            // Host bytes 10, 20, ... avoid colliding with the anchor (.1).
            let ip = prefix.host((10 + 10 * k as u32).min(250) as u8);
            let split = rng.gen::<f64>() < cfg.prefix_split_probability;
            let (city, location) = if split {
                // Prefix split: the representative answers from another PoP
                // of the same AS (or the same city if the AS has only one).
                let asn = &ases[anchor.asn.index()];
                let other = asn.pops[rng.gen_range(0..asn.pops.len())];
                (
                    other,
                    scatter(&cities[other.index()].center, cfg.city_radius_km, rng),
                )
            } else {
                (
                    anchor.city,
                    scatter(&cities[anchor.city.index()].center, cfg.city_radius_km, rng),
                )
            };
            let id = HostId(hosts.len() as u32);
            hosts.push(Host {
                id,
                ip,
                kind: HostKind::Representative,
                asn: anchor.asn,
                city,
                location,
                registered_location: location,
                last_mile: LastMile::Negligible,
            });
            reps.push(id);
        }
        representatives.push(reps);
    }

    // --- Mis-geolocate a handful of anchors and probes (caught by §4.3). ---
    mis_geolocate(
        &mut hosts,
        &anchors,
        cfg.mis_geolocated_anchors,
        cfg.mis_geolocation_offset_km,
        rng,
    );
    mis_geolocate(
        &mut hosts,
        &probes,
        cfg.mis_geolocated_probes,
        cfg.mis_geolocation_offset_km,
        rng,
    );

    HostPopulation {
        hosts,
        anchors,
        probes,
        representatives,
        plan,
    }
}

fn mis_geolocate<R: Rng + ?Sized>(
    hosts: &mut [Host],
    pool: &[HostId],
    count: usize,
    offset_km: f64,
    rng: &mut R,
) {
    let mut ids: Vec<HostId> = pool.to_vec();
    ids.shuffle(rng);
    for &id in ids.iter().take(count) {
        let h = &mut hosts[id.index()];
        let bearing = rng.gen_range(0.0..360.0);
        let dist = offset_km * rng.gen_range(0.7..1.5);
        h.registered_location = h.location.destination(bearing, Km(dist));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::generate_ases;
    use crate::city::generate_cities;
    use geo_model::rng::Seed;

    fn build() -> (Vec<City>, Vec<AutonomousSystem>, HostPopulation) {
        let cfg = WorldConfig::small(Seed(31));
        let mut rng = cfg.seed.derive("world").rng();
        let (cities, _) = generate_cities(&cfg, &mut rng);
        let mut ases = generate_ases(&cfg, &cities, &mut rng);
        let pop = generate_hosts(&cfg, &cities, &mut ases, &mut rng);
        (cities, ases, pop)
    }

    #[test]
    fn counts_match_config() {
        let (_, _, pop) = build();
        assert_eq!(pop.anchors.len(), 30);
        assert_eq!(pop.probes.len(), 230);
        assert_eq!(pop.representatives.len(), 30);
        for reps in &pop.representatives {
            assert_eq!(reps.len(), 5);
        }
    }

    #[test]
    fn anchors_own_their_prefixes() {
        let (_, _, pop) = build();
        for (i, &aid) in pop.anchors.iter().enumerate() {
            let anchor = &pop.hosts[aid.index()];
            let prefix = anchor.ip.prefix24();
            // All representatives share the anchor's /24.
            for &rid in &pop.representatives[i] {
                let rep = &pop.hosts[rid.index()];
                assert_eq!(rep.ip.prefix24(), prefix);
                assert_ne!(rep.ip, anchor.ip);
            }
            // And the plan knows the owner.
            let (asn, _) = pop.plan.owner(prefix).unwrap();
            assert_eq!(asn, anchor.asn);
        }
    }

    #[test]
    fn representatives_mostly_share_anchor_city() {
        let (_, _, pop) = build();
        let mut same = 0;
        let mut total = 0;
        for (i, &aid) in pop.anchors.iter().enumerate() {
            let anchor_city = pop.hosts[aid.index()].city;
            for &rid in &pop.representatives[i] {
                total += 1;
                if pop.hosts[rid.index()].city == anchor_city {
                    same += 1;
                }
            }
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.8, "only {frac} of reps co-located");
    }

    #[test]
    fn misgeolocation_counts() {
        let (_, _, pop) = build();
        let bad_anchors = pop
            .anchors
            .iter()
            .filter(|id| pop.hosts[id.index()].is_mis_geolocated())
            .count();
        let bad_probes = pop
            .probes
            .iter()
            .filter(|id| pop.hosts[id.index()].is_mis_geolocated())
            .count();
        assert_eq!(bad_anchors, 1);
        assert_eq!(bad_probes, 4);
    }

    #[test]
    fn anchors_have_no_last_mile() {
        let (_, _, pop) = build();
        for &aid in &pop.anchors {
            assert_eq!(pop.hosts[aid.index()].last_mile, LastMile::Negligible);
        }
    }

    #[test]
    fn most_probes_in_access_have_last_mile() {
        let (_, ases, pop) = build();
        let mut access_with_lm = 0;
        let mut access_total = 0;
        for &pid in &pop.probes {
            let h = &pop.hosts[pid.index()];
            if ases[h.asn.index()].category == AsCategory::Access {
                access_total += 1;
                if matches!(h.last_mile, LastMile::Access { .. }) {
                    access_with_lm += 1;
                }
            }
        }
        assert!(access_total > 0);
        assert_eq!(access_with_lm, access_total);
    }

    #[test]
    fn hosts_near_their_city() {
        let (cities, _, pop) = build();
        for h in &pop.hosts {
            let d = h.location.distance(&cities[h.city.index()].center).value();
            assert!(d <= 16.0, "host {} is {d} km from its city", h.id);
        }
    }

    #[test]
    fn addresses_are_unique() {
        let (_, _, pop) = build();
        let mut ips: Vec<Ipv4> = pop.hosts.iter().map(|h| h.ip).collect();
        let n = ips.len();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), n);
    }

    #[test]
    fn plan_rolls_prefixes() {
        let mut plan = AddressPlan::new();
        let asn = AsId(1);
        let city = CityId(2);
        let mut prefixes = std::collections::HashSet::new();
        for _ in 0..450 {
            prefixes.insert(plan.allocate_address(asn, city).prefix24());
        }
        assert!(
            prefixes.len() >= 3,
            "expected rollover, got {}",
            prefixes.len()
        );
        for p in prefixes {
            assert_eq!(plan.owner(p), Some((asn, city)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, _, a) = build();
        let (_, _, b) = build();
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.location, y.location);
        }
    }
}
