//! The assembled world.
//!
//! [`World::generate`] runs every generation stage in a fixed order, each
//! with its own derived RNG stream, and exposes lookup tables the higher
//! layers need (ip → host, spatial index, density field).

use crate::asn::AutonomousSystem;
use crate::city::{City, CityIndex};
use crate::config::WorldConfig;
use crate::density::DensityField;
use crate::hitlist::Hitlist;
use crate::host::{generate_hosts, AddressPlan, Host, HostKind, LastMile};
use crate::ids::{AsId, CityId, HostId};
use crate::metadata::Metadata;
use geo_model::ip::Ipv4;
use geo_model::point::GeoPoint;
use std::collections::HashMap;

/// A fully generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// The configuration the world was generated from.
    pub config: WorldConfig,
    /// All cities.
    pub cities: Vec<City>,
    /// Number of distinct countries.
    pub num_countries: usize,
    /// All autonomous systems.
    pub ases: Vec<AutonomousSystem>,
    /// All hosts (anchors, probes, representatives, web servers).
    pub hosts: Vec<Host>,
    /// Anchor host ids.
    pub anchors: Vec<HostId>,
    /// Probe host ids.
    pub probes: Vec<HostId>,
    /// Representative host ids per anchor (parallel to `anchors`).
    pub representatives: Vec<Vec<HostId>>,
    /// The address plan.
    pub plan: AddressPlan,
    /// The responsiveness hitlist.
    pub hitlist: Hitlist,
    /// DNS / geofeed / WHOIS hints.
    pub metadata: Metadata,
    /// The population-density field.
    pub density: DensityField,
    /// Spatial index over city centers.
    pub city_index: CityIndex,
    ip_to_host: HashMap<Ipv4, HostId>,
    /// (AS, city) pairs with a PoP — O(1) membership for routing.
    pop_set: std::collections::HashSet<(u32, u32)>,
    /// Transit providers (tier-1s, else transit/access, else the largest
    /// AS) — the candidate pool for interdomain path synthesis.
    transit_pool: Vec<AsId>,
    /// Each AS's two upstream providers (multi-homing), drawn from the
    /// transit pool; members of the pool are their own provider.
    providers: Vec<[AsId; 2]>,
    /// Unit vectors of city centers for trig-free distance comparisons.
    city_units: Vec<[f64; 3]>,
}

/// Unit vector of a geographic point on the sphere.
fn unit_vector(p: &GeoPoint) -> [f64; 3] {
    let lat = p.lat().to_radians();
    let lon = p.lon().to_radians();
    [lat.cos() * lon.cos(), lat.cos() * lon.sin(), lat.sin()]
}

impl World {
    /// Generates a world from a configuration. Fails if the configuration
    /// is inconsistent.
    pub fn generate(config: WorldConfig) -> Result<World, String> {
        config.validate()?;
        let seed = config.seed;

        let mut rng = seed.derive("cities").rng();
        let (cities, num_countries) = crate::city::generate_cities(&config, &mut rng);

        let mut rng = seed.derive("ases").rng();
        let mut ases = crate::asn::generate_ases(&config, &cities, &mut rng);

        let mut rng = seed.derive("hosts").rng();
        let pop = generate_hosts(&config, &cities, &mut ases, &mut rng);

        let mut rng = seed.derive("hitlist").rng();
        let hitlist = Hitlist::build(&pop, &mut rng);

        let mut rng = seed.derive("metadata").rng();
        let metadata = Metadata::generate(
            &pop.hosts,
            &ases,
            &cities,
            &pop.plan,
            config.dns_hint_fraction,
            &mut rng,
        );

        let density = DensityField::build(&cities, seed);
        let city_index = CityIndex::build(&cities);
        let ip_to_host = pop.hosts.iter().map(|h| (h.ip, h.id)).collect();
        let mut pop_set = std::collections::HashSet::new();
        for a in &ases {
            for &c in &a.pops {
                pop_set.insert((a.id.0, c.0));
            }
        }
        let city_units = cities.iter().map(|c| unit_vector(&c.center)).collect();
        let transit_pool = {
            use crate::asn::AsCategory;
            let pick = |cat: AsCategory| -> Vec<AsId> {
                ases.iter()
                    .filter(|a| a.category == cat)
                    .map(|a| a.id)
                    .collect()
            };
            let tier1 = pick(AsCategory::Tier1);
            if !tier1.is_empty() {
                tier1
            } else {
                let transit = pick(AsCategory::TransitAccess);
                if !transit.is_empty() {
                    transit
                } else {
                    vec![
                        ases.iter()
                            .max_by_key(|a| a.pops.len())
                            .expect("world has ASes")
                            .id,
                    ]
                }
            }
        };

        let providers = {
            use geo_model::rng::splitmix64;
            let pool = &transit_pool;
            ases.iter()
                .map(|a| {
                    if pool.contains(&a.id) {
                        [a.id, a.id]
                    } else {
                        let h1 = splitmix64(a.id.0 as u64 ^ 0x9E37_79B9);
                        let h2 = splitmix64(h1);
                        let p1 = pool[(h1 % pool.len() as u64) as usize];
                        let mut p2 = pool[(h2 % pool.len() as u64) as usize];
                        if p2 == p1 && pool.len() > 1 {
                            p2 = pool[((h2 + 1) % pool.len() as u64) as usize];
                        }
                        [p1, p2]
                    }
                })
                .collect()
        };

        Ok(World {
            config,
            cities,
            num_countries,
            ases,
            hosts: pop.hosts,
            anchors: pop.anchors,
            probes: pop.probes,
            representatives: pop.representatives,
            plan: pop.plan,
            hitlist,
            metadata,
            density,
            city_index,
            ip_to_host,
            pop_set,
            city_units,
            transit_pool,
            providers,
        })
    }

    /// The transit-provider candidate pool (never empty).
    #[inline]
    pub fn transit_pool(&self) -> &[AsId] {
        &self.transit_pool
    }

    /// The two upstream providers of an AS (equal for single-homed and
    /// for transit-pool members themselves).
    #[inline]
    pub fn providers(&self, asn: AsId) -> [AsId; 2] {
        self.providers[asn.index()]
    }

    /// True if the AS has a PoP in the city — O(1), for routing hot paths.
    #[inline]
    pub fn has_pop(&self, asn: AsId, city: CityId) -> bool {
        self.pop_set.contains(&(asn.0, city.0))
    }

    /// The PoP city of `asn` nearest to `city`, compared via precomputed
    /// unit vectors (no trigonometry on the hot path).
    pub fn nearest_pop(&self, asn: AsId, city: CityId) -> CityId {
        let target = self.city_units[city.index()];
        let asys = self.asn(asn);
        let mut best = asys.pops[0];
        let mut best_dot = f64::NEG_INFINITY;
        for &p in &asys.pops {
            let u = self.city_units[p.index()];
            let dot = u[0] * target[0] + u[1] * target[1] + u[2] * target[2];
            if dot > best_dot {
                best_dot = dot;
                best = p;
            }
        }
        best
    }

    /// Looks up a host by id.
    #[inline]
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// Looks up a city by id.
    #[inline]
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    /// Looks up an AS by id.
    #[inline]
    pub fn asn(&self, id: AsId) -> &AutonomousSystem {
        &self.ases[id.index()]
    }

    /// Resolves an address to a simulated host, if one exists.
    pub fn host_by_ip(&self, ip: Ipv4) -> Option<&Host> {
        self.ip_to_host.get(&ip).map(|id| self.host(*id))
    }

    /// Adds a host created after generation (web servers from `web-sim`).
    /// Returns its id.
    pub fn add_web_server(&mut self, asn: AsId, city: CityId, location: GeoPoint) -> HostId {
        let ip = self.plan.allocate_address(asn, city);
        let id = HostId(self.hosts.len() as u32);
        let host = Host {
            id,
            ip,
            kind: HostKind::WebServer,
            asn,
            city,
            location,
            registered_location: location,
            last_mile: LastMile::Negligible,
        };
        self.ip_to_host.insert(ip, id);
        self.hosts.push(host);
        id
    }

    /// The anchor hosts.
    pub fn anchor_hosts(&self) -> impl Iterator<Item = &Host> {
        self.anchors.iter().map(move |id| self.host(*id))
    }

    /// The probe hosts.
    pub fn probe_hosts(&self) -> impl Iterator<Item = &Host> {
        self.probes.iter().map(move |id| self.host(*id))
    }

    /// The representatives of the anchor at position `idx` in `anchors`.
    pub fn representatives_of(&self, idx: usize) -> &[HostId] {
        &self.representatives[idx]
    }

    /// Population density (people/km²) at a point.
    pub fn density_at(&self, p: &GeoPoint) -> f64 {
        self.density.density_at(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;

    #[test]
    fn generates_small_world() {
        let w = World::generate(WorldConfig::small(Seed(61))).unwrap();
        assert_eq!(w.anchors.len(), 30);
        assert_eq!(w.probes.len(), 230);
        assert_eq!(w.cities.len(), 50);
        assert!(w.num_countries >= 2);
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = WorldConfig::small(Seed(61));
        cfg.hitlist_per_prefix = 0;
        assert!(World::generate(cfg).is_err());
    }

    #[test]
    fn ip_lookup_roundtrip() {
        let w = World::generate(WorldConfig::small(Seed(61))).unwrap();
        for h in &w.hosts {
            assert_eq!(w.host_by_ip(h.ip).unwrap().id, h.id);
        }
        assert!(w.host_by_ip(Ipv4::from_octets(250, 0, 0, 1)).is_none());
    }

    #[test]
    fn add_web_server_extends_world() {
        let mut w = World::generate(WorldConfig::small(Seed(61))).unwrap();
        let city = w.cities[0].id;
        let asn = w.ases[0].id;
        let loc = w.cities[0].center;
        let before = w.hosts.len();
        let id = w.add_web_server(asn, city, loc);
        assert_eq!(w.hosts.len(), before + 1);
        let h = w.host(id);
        assert_eq!(h.kind, HostKind::WebServer);
        assert_eq!(w.host_by_ip(h.ip).unwrap().id, id);
    }

    #[test]
    fn same_seed_same_world() {
        let a = World::generate(WorldConfig::small(Seed(62))).unwrap();
        let b = World::generate(WorldConfig::small(Seed(62))).unwrap();
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.location, y.location);
        }
    }

    #[test]
    fn different_seed_different_world() {
        let a = World::generate(WorldConfig::small(Seed(63))).unwrap();
        let b = World::generate(WorldConfig::small(Seed(64))).unwrap();
        let same = a
            .hosts
            .iter()
            .zip(&b.hosts)
            .filter(|(x, y)| x.location == y.location)
            .count();
        assert!(same < a.hosts.len() / 2);
    }
}
