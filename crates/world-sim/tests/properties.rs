//! Property-based tests for world generation invariants.

use geo_model::rng::Seed;
use proptest::prelude::*;
use world_sim::config::ContinentMix;
use world_sim::continent::Continent;
use world_sim::host::HostKind;
use world_sim::{World, WorldConfig};

fn arb_config() -> impl Strategy<Value = WorldConfig> {
    (
        0u64..1_000_000,
        5usize..25,
        2usize..12,
        20usize..80,
        0usize..3,
    )
        .prop_map(|(seed, cities, anchors, probes, bad)| {
            let mut cfg = WorldConfig::small(Seed(seed));
            cfg.mix = vec![ContinentMix {
                continent: Continent::Europe,
                cities,
                anchors,
                probes,
            }];
            cfg.mis_geolocated_anchors = bad.min(anchors);
            cfg.mis_geolocated_probes = bad.min(probes);
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated worlds honor their configured entity counts exactly.
    #[test]
    fn counts_match_config(cfg in arb_config()) {
        let w = World::generate(cfg.clone()).expect("valid config");
        prop_assert_eq!(w.cities.len(), cfg.total_cities());
        prop_assert_eq!(w.anchors.len(), cfg.total_anchors());
        prop_assert_eq!(w.probes.len(), cfg.total_probes());
        prop_assert_eq!(w.representatives.len(), w.anchors.len());
        let planted = w
            .hosts
            .iter()
            .filter(|h| h.kind == HostKind::Anchor && h.is_mis_geolocated())
            .count();
        prop_assert_eq!(planted, cfg.mis_geolocated_anchors);
    }

    /// All addresses are unique and resolvable back to their hosts.
    #[test]
    fn addresses_are_unique(cfg in arb_config()) {
        let w = World::generate(cfg).expect("valid config");
        let mut ips: Vec<_> = w.hosts.iter().map(|h| h.ip).collect();
        let n = ips.len();
        ips.sort();
        ips.dedup();
        prop_assert_eq!(ips.len(), n);
        for h in &w.hosts {
            prop_assert_eq!(w.host_by_ip(h.ip).expect("resolvable").id, h.id);
        }
    }

    /// Every anchor's representatives share its /24 prefix.
    #[test]
    fn representatives_share_prefix(cfg in arb_config()) {
        let w = World::generate(cfg).expect("valid config");
        for (i, &aid) in w.anchors.iter().enumerate() {
            let prefix = w.host(aid).ip.prefix24();
            for &rid in w.representatives_of(i) {
                prop_assert_eq!(w.host(rid).ip.prefix24(), prefix);
            }
        }
    }

    /// Every host's city has the host's AS among its PoPs (hosting implies
    /// presence), and the transit pool is never empty.
    #[test]
    fn hosting_implies_presence(cfg in arb_config()) {
        let w = World::generate(cfg).expect("valid config");
        for h in &w.hosts {
            prop_assert!(
                w.has_pop(h.asn, h.city),
                "host {} in {} but AS {} has no PoP there",
                h.id, h.city, h.asn
            );
        }
        prop_assert!(!w.transit_pool().is_empty());
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_is_pure(cfg in arb_config()) {
        let a = World::generate(cfg.clone()).expect("valid");
        let b = World::generate(cfg).expect("valid");
        prop_assert_eq!(a.hosts.len(), b.hosts.len());
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            prop_assert_eq!(x.ip, y.ip);
            prop_assert_eq!(x.location, y.location);
            prop_assert_eq!(x.asn, y.asn);
        }
    }
}
