// Timing measurement is this code's purpose; the workspace bans
// wall-clock reads by default (see clippy.toml).
#![allow(clippy::disallowed_methods)]
use geo_model::rng::Seed;
use world_sim::{World, WorldConfig};
fn main() {
    let t = std::time::Instant::now();
    let w = World::generate(WorldConfig::paper(Seed(2023))).unwrap();
    println!("gen in {:?}", t.elapsed());
    let c = world_sim::census::Census::of(&w);
    println!(
        "anchors={} probes={} cities w/anchor={} countries={} ases={} hosts={}",
        c.anchors,
        c.probes,
        c.anchor_cities,
        c.anchor_countries,
        c.anchor_ases,
        w.hosts.len()
    );
}
