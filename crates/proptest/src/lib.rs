//! # proptest (offline stand-in)
//!
//! The build environment has no crates.io access, so this in-repo crate
//! satisfies the `proptest` dev-dependency. It provides the surface the
//! workspace's property tests use — the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`], the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`prelude::any`] and `prop::collection::vec` — without shrinking.
//!
//! Cases are generated from a seed derived from the test function's name,
//! so every run of a property test exercises the same deterministic case
//! sequence: a failure reproduces exactly, which replaces shrinking as the
//! debugging workflow (the failing case's arguments are printed in full).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration: how many cases each property executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream's default; heavy suites lower it via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// The full-domain strategy behind [`prelude::any`].
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// A single constant value, generated every time.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derives the deterministic per-test RNG for `test_name` and `case`.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in test_name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32))
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// The whole-domain strategy for `T` (integers, bool, floats).
    pub fn any<T>() -> crate::Any<T>
    where
        crate::Any<T>: crate::Strategy,
    {
        crate::Any(std::marker::PhantomData)
    }

    /// The `prop::` module alias used by `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Declares deterministic property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let ctx = format!(
                    concat!("case {}", $(concat!("\n  ", stringify!($arg), " = {:?}"),)*),
                    case $(, &$arg)*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed: {}\n{}", stringify!($name), e, ctx);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17) {
            prop_assert!((3..17).contains(&x));
        }

        #[test]
        fn mapped_tuples_hold_invariant(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0f64..1.0, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "out of range: {x}");
            }
        }

        #[test]
        fn any_generates(raw in any::<u32>()) {
            let _ = raw;
            prop_assert_eq!(raw, raw);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0u64..1000;
        let a: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|c| s.generate(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_context() {
        // No `#[test]` on the inner fn: it is invoked by hand below
        // (rustc cannot register tests nested inside a function body).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
