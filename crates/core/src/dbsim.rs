//! Commercial geolocation database simulators (§6, Fig. 7).
//!
//! The replication compared CBG against MaxMind's free database and
//! IPinfo's free API, and IPinfo disclosed its recipe: latency
//! measurements refined with hints from DNS, WHOIS and geofeeds. The two
//! generators encode those mechanisms over the synthetic world's metadata:
//!
//! - [`GeoDatabase::maxmind_like`]: prefix → registration-derived city
//!   (right city a bit over half the time, WHOIS headquarters or a country
//!   centroid otherwise) — the staleness profile prior work measured;
//! - [`GeoDatabase::ipinfo_like`]: geofeed first, then reverse-DNS hints,
//!   then the provider's own latency mesh (shortest ping over a coverage
//!   subset of probes), then WHOIS.

use crate::two_step::greedy_coverage;
use geo_model::ip::{Ipv4, Prefix24};
use geo_model::point::GeoPoint;
use geo_model::rng::{fnv1a, splitmix64, Seed};
use net_sim::Network;
use std::collections::HashMap;
use world_sim::ids::HostId;
use world_sim::World;

/// A prefix-to-location database.
#[derive(Debug, Clone)]
pub struct GeoDatabase {
    name: &'static str,
    entries: HashMap<Prefix24, GeoPoint>,
}

/// Size of the latency mesh the IPinfo-like generator uses.
const IPINFO_MESH_SIZE: usize = 400;

impl GeoDatabase {
    /// Database name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of mapped prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an address.
    pub fn lookup(&self, ip: Ipv4) -> Option<GeoPoint> {
        self.entries.get(&ip.prefix24()).copied()
    }

    /// A MaxMind-free-like database over the given prefixes.
    pub fn maxmind_like(world: &World, prefixes: &[Prefix24], seed: Seed) -> GeoDatabase {
        let seed = seed.derive("maxmind-like");
        let mut entries = HashMap::new();
        for &prefix in prefixes {
            let Some((asn, city)) = world.plan.owner(prefix) else {
                continue;
            };
            let u = unit(seed, prefix.0 as u64);
            let location = if u < 0.50 {
                // Correct city (city-level accuracy).
                world.city(city).center
            } else if u < 0.84 {
                // Stale: the AS's WHOIS headquarters.
                world.city(world.asn(asn).whois_city).center
            } else {
                // Country-level only: centroid of the AS's home country's
                // cities.
                let country = world.asn(asn).country;
                let pts: Vec<GeoPoint> = world
                    .cities
                    .iter()
                    .filter(|c| c.country == country)
                    .map(|c| c.center)
                    .collect();
                GeoPoint::centroid(&pts)
                    .unwrap_or_else(|| world.city(world.asn(asn).whois_city).center)
            };
            entries.insert(prefix, location);
        }
        GeoDatabase {
            name: "MaxMind (free)-like",
            entries,
        }
    }

    /// An IPinfo-like database over the given prefixes.
    ///
    /// Per §6: "for 20% of the targets, their latency measurements gave an
    /// error of 42 km or less [...] to further refine the geolocation,
    /// hints extracted from DNS, WHOIS, geofeeds".
    pub fn ipinfo_like(
        world: &World,
        net: &Network,
        prefixes: &[Prefix24],
        seed: Seed,
    ) -> GeoDatabase {
        let seed = seed.derive("ipinfo-like");
        // The provider's own measurement mesh: a geographically spread
        // subset of the probe population.
        let clean: Vec<HostId> = world
            .probes
            .iter()
            .copied()
            .filter(|&p| !world.host(p).is_mis_geolocated())
            .collect();
        let mesh = greedy_coverage(world, &clean, IPINFO_MESH_SIZE.min(clean.len()));

        let mut entries = HashMap::new();
        for &prefix in prefixes {
            let Some((asn, _city)) = world.plan.owner(prefix) else {
                continue;
            };

            // 1. Geofeed, when published (self-declared, mostly right).
            if let Some(city) = world.metadata.geofeed_city(prefix) {
                entries.insert(prefix, world.city(city).center);
                continue;
            }

            // 2. Reverse-DNS hint of any host in the prefix.
            let hint = prefix.addresses().find_map(|ip| {
                let host = world.host_by_ip(ip)?;
                world.metadata.dns_hint(host.id)
            });
            if let Some(city) = hint {
                entries.insert(prefix, world.city(city).center);
                continue;
            }

            // 3. The provider's latency mesh: shortest ping to a
            // responsive address in the prefix.
            let responsive = prefix
                .addresses()
                .find(|&ip| world.host_by_ip(ip).is_some());
            if let Some(ip) = responsive {
                let nonce = splitmix64(seed.0 ^ prefix.0 as u64);
                let best = mesh
                    .iter()
                    .filter_map(|&vp| {
                        net.ping_min(world, vp, ip, 3, nonce)
                            .rtt()
                            .map(|rtt| (vp, rtt))
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((vp, _)) = best {
                    entries.insert(prefix, world.host(vp).registered_location);
                    continue;
                }
            }

            // 4. WHOIS fallback.
            entries.insert(prefix, world.city(world.asn(asn).whois_city).center);
        }
        GeoDatabase {
            name: "IPinfo-like",
            entries,
        }
    }
}

fn unit(seed: Seed, key: u64) -> f64 {
    let h = splitmix64(seed.0 ^ splitmix64(key ^ fnv1a(b"dbsim")));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::stats;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Vec<Prefix24>) {
        let w = World::generate(WorldConfig::small(Seed(221))).unwrap();
        let net = Network::new(Seed(221));
        let prefixes: Vec<Prefix24> = w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
        (w, net, prefixes)
    }

    #[test]
    fn maxmind_covers_all_prefixes() {
        let (w, _, prefixes) = setup();
        let db = GeoDatabase::maxmind_like(&w, &prefixes, Seed(1));
        assert_eq!(db.len(), prefixes.len());
        for &a in &w.anchors {
            assert!(db.lookup(w.host(a).ip).is_some());
        }
    }

    #[test]
    fn ipinfo_beats_maxmind() {
        let (w, net, prefixes) = setup();
        let mm = GeoDatabase::maxmind_like(&w, &prefixes, Seed(1));
        let ii = GeoDatabase::ipinfo_like(&w, &net, &prefixes, Seed(1));
        let errors = |db: &GeoDatabase| -> Vec<f64> {
            w.anchors
                .iter()
                .filter_map(|&a| {
                    let h = w.host(a);
                    db.lookup(h.ip).map(|p| p.distance(&h.location).value())
                })
                .collect()
        };
        let e_mm = errors(&mm);
        let e_ii = errors(&ii);
        let city_mm = stats::fraction_at_most(&e_mm, 40.0);
        let city_ii = stats::fraction_at_most(&e_ii, 40.0);
        assert!(
            city_ii > city_mm,
            "IPinfo-like ({city_ii}) not better than MaxMind-like ({city_mm})"
        );
        assert!(city_ii > 0.6, "IPinfo-like too weak: {city_ii}");
    }

    #[test]
    fn lookup_unknown_prefix_is_none() {
        let (w, _, prefixes) = setup();
        let db = GeoDatabase::maxmind_like(&w, &prefixes, Seed(1));
        assert!(db.lookup(Ipv4::from_octets(240, 1, 2, 3)).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let (w, net, prefixes) = setup();
        let a = GeoDatabase::ipinfo_like(&w, &net, &prefixes, Seed(9));
        let b = GeoDatabase::ipinfo_like(&w, &net, &prefixes, Seed(9));
        for &p in &prefixes {
            assert_eq!(
                a.entries.get(&p).map(|g| (g.lat(), g.lon())),
                b.entries.get(&p).map(|g| (g.lat(), g.lon()))
            );
        }
    }
}
