//! The resilient campaign executor.
//!
//! Real Atlas campaigns run through rate limits, 5xxs, probe churn and
//! partial result fetches (see `atlas_sim::faults`). This module is the
//! defense layer every driver routes its measurements through:
//!
//! - **bounded retries** — a batch that fails transiently is retried at
//!   most [`RetryPolicy::max_attempts`] times (geo-lint R3 forbids
//!   unbounded retry loops), with deterministic exponential backoff
//!   accounted in *virtual* seconds;
//! - **partial-result tolerance** — a batch is accepted once at least
//!   `required(n)` of the `n` requested vantage points delivered, and the
//!   lost constraints are recorded rather than silently ignored;
//! - **validation** — malformed RTTs (negative, NaN, absurd) are counted
//!   and discarded instead of poisoning CBG;
//! - **structured accounting** — every decision lands in a [`TargetLog`],
//!   and logs merge (in deterministic index order) into a
//!   [`CampaignReport`] of attempts, retries, faults seen, and credits
//!   burned against the fault-free baseline.
//!
//! With no fault plan the executor takes a direct path that issues
//! *exactly* the same `net-sim` calls as the pre-existing drivers, so
//! fault-free outputs stay byte-identical. Every fault decision is a pure
//! function of `(plan seed, batch key, attempt, vp)`, so faulty runs are
//! bit-identical at any `IPGEO_THREADS` setting too.

use atlas_sim::credits::CostSchedule;
use atlas_sim::faults::{ApiFault, FaultPlan};
use geo_model::ip::Ipv4;
use geo_model::rng::splitmix64;
use net_sim::{Network, PingOutcome, Traceroute};
use std::fmt;
use world_sim::ids::HostId;
use world_sim::World;

/// How hard the executor fights for a batch before degrading.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per batch, including the first (bounded by construction).
    pub max_attempts: u32,
    /// Backoff before the first retry, virtual seconds.
    pub backoff_base_secs: f64,
    /// Multiplier per further retry (exponential backoff).
    pub backoff_factor: f64,
    /// Fraction of requested vantage points that must answer for a batch
    /// to count as delivered.
    pub min_answered_fraction: f64,
    /// Absolute floor on answered vantage points (dominates the fraction
    /// for small batches).
    pub min_answered: usize,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_secs: 30.0,
            backoff_factor: 2.0,
            min_answered_fraction: 0.5,
            min_answered: 1,
        }
    }
}

impl RetryPolicy {
    /// Results required before an `n`-VP batch is accepted: the configured
    /// fraction of `n`, at least `min_answered`, never more than `n`.
    pub fn required(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let frac = (n as f64 * self.min_answered_fraction).ceil() as usize;
        frac.max(self.min_answered).min(n)
    }

    /// Backoff before retry number `retry` (0-based), virtual seconds.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        self.backoff_base_secs * self.backoff_factor.powi(retry as i32)
    }
}

/// The executor's configuration: an optional fault plan plus the policy.
#[derive(Debug, Clone)]
pub struct Resilience<'a> {
    plan: Option<&'a FaultPlan>,
    policy: RetryPolicy,
}

impl Resilience<'static> {
    /// No fault plan: batches take the direct path and are byte-identical
    /// to the pre-executor drivers.
    pub fn none() -> Resilience<'static> {
        Resilience {
            plan: None,
            policy: RetryPolicy::default(),
        }
    }
}

impl<'a> Resilience<'a> {
    /// An executor subjected to `plan`.
    pub fn with_plan(plan: &'a FaultPlan) -> Resilience<'a> {
        Resilience {
            plan: Some(plan),
            policy: RetryPolicy::default(),
        }
    }

    /// Overrides the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Resilience<'a> {
        self.policy = policy;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The plan, if it can actually fire.
    fn active(&self) -> Option<&'a FaultPlan> {
        self.plan.filter(|p| !p.is_zero())
    }
}

/// Faults observed (and survived) during a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// API calls rejected with a rate limit.
    pub rate_limited: u64,
    /// API calls failed with a server error.
    pub server_errors: u64,
    /// API result fetches that timed out.
    pub api_timeouts: u64,
    /// Vantage points skipped because their probe was disconnected.
    pub disconnects: u64,
    /// Replies lost beyond the last-mile loss model.
    pub replies_lost: u64,
    /// Replies discarded for carrying a malformed RTT.
    pub garbled: u64,
    /// Results dropped by batch truncation.
    pub truncated: u64,
}

impl FaultCounts {
    /// Every fault of any kind.
    pub fn total(&self) -> u64 {
        self.rate_limited
            + self.server_errors
            + self.api_timeouts
            + self.disconnects
            + self.replies_lost
            + self.garbled
            + self.truncated
    }

    fn merge(&mut self, other: &FaultCounts) {
        self.rate_limited += other.rate_limited;
        self.server_errors += other.server_errors;
        self.api_timeouts += other.api_timeouts;
        self.disconnects += other.disconnects;
        self.replies_lost += other.replies_lost;
        self.garbled += other.garbled;
        self.truncated += other.truncated;
    }
}

/// Credits burned, refunded, and the fault-free baseline for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CreditLog {
    /// Credits charged across all attempts.
    pub charged: u64,
    /// Credits refunded for undelivered measurements.
    pub refunded: u64,
    /// What one fault-free pass over the same batches would have cost.
    pub baseline: u64,
}

impl CreditLog {
    /// Credits actually consumed (charged minus refunded).
    pub fn net(&self) -> u64 {
        self.charged.saturating_sub(self.refunded)
    }

    fn merge(&mut self, other: &CreditLog) {
        self.charged += other.charged;
        self.refunded += other.refunded;
        self.baseline += other.baseline;
    }
}

/// Per-target executor accounting; merge into a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TargetLog {
    /// Batch attempts issued (first tries and retries).
    pub attempts: u64,
    /// Retries among the attempts.
    pub retries: u64,
    /// Vantage-point results requested across all batches.
    pub requested: u64,
    /// Results actually delivered and used.
    pub delivered: u64,
    /// Batches accepted with fewer results than requested.
    pub degraded_batches: u64,
    /// Batches that delivered nothing even after every retry.
    pub failed_batches: u64,
    /// Virtual seconds spent backing off before retries.
    pub backoff_secs: f64,
    /// Faults observed.
    pub faults: FaultCounts,
    /// Credit accounting.
    pub credits: CreditLog,
}

/// Aggregated accounting for a whole campaign. Built by absorbing
/// [`TargetLog`]s in deterministic (target index) order, so the report —
/// including its `Display` rendering — is bit-identical across thread
/// counts for the same seed and fault profile.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignReport {
    /// Targets processed.
    pub targets: u64,
    /// Batch attempts issued.
    pub attempts: u64,
    /// Retries among the attempts.
    pub retries: u64,
    /// Vantage-point results requested.
    pub requested: u64,
    /// Results delivered and used.
    pub delivered: u64,
    /// Batches accepted short of the full request.
    pub degraded_batches: u64,
    /// Batches that delivered nothing.
    pub failed_batches: u64,
    /// Virtual seconds spent in retry backoff.
    pub backoff_secs: f64,
    /// Faults observed.
    pub faults: FaultCounts,
    /// Credit accounting.
    pub credits: CreditLog,
}

impl CampaignReport {
    /// Folds one target's log into the report. Call in target index order.
    pub fn absorb(&mut self, log: &TargetLog) {
        self.targets += 1;
        self.attempts += log.attempts;
        self.retries += log.retries;
        self.requested += log.requested;
        self.delivered += log.delivered;
        self.degraded_batches += log.degraded_batches;
        self.failed_batches += log.failed_batches;
        self.backoff_secs += log.backoff_secs;
        self.faults.merge(&log.faults);
        self.credits.merge(&log.credits);
    }

    /// Merges another report (e.g. per-phase reports) into this one.
    pub fn merge(&mut self, other: &CampaignReport) {
        self.targets += other.targets;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.requested += other.requested;
        self.delivered += other.delivered;
        self.degraded_batches += other.degraded_batches;
        self.failed_batches += other.failed_batches;
        self.backoff_secs += other.backoff_secs;
        self.faults.merge(&other.faults);
        self.credits.merge(&other.credits);
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} targets, {} attempts ({} retries, backoff {:.0}s)",
            self.targets, self.attempts, self.retries, self.backoff_secs
        )?;
        writeln!(
            f,
            "results:  {}/{} delivered ({} degraded batches, {} failed)",
            self.delivered, self.requested, self.degraded_batches, self.failed_batches
        )?;
        writeln!(
            f,
            "faults:   rate-limited {}, server {}, timeout {}, disconnect {}, \
             lost {}, garbled {}, truncated {}",
            self.faults.rate_limited,
            self.faults.server_errors,
            self.faults.api_timeouts,
            self.faults.disconnects,
            self.faults.replies_lost,
            self.faults.garbled,
            self.faults.truncated
        )?;
        let overhead = if self.credits.baseline > 0 {
            (self.credits.net() as f64 / self.credits.baseline as f64 - 1.0) * 100.0
        } else {
            0.0
        };
        write!(
            f,
            "credits:  net {} (charged {}, refunded {}; baseline {}, {overhead:+.1}% overhead)",
            self.credits.net(),
            self.credits.charged,
            self.credits.refunded,
            self.credits.baseline
        )
    }
}

/// A plausible RTT: finite, positive, below 1000 seconds. Anything else is
/// API garbage and must not reach a constraint solver.
pub fn valid_rtt_ms(ms: f64) -> bool {
    ms.is_finite() && ms > 0.0 && ms < 1.0e6
}

/// Pings `target` from every VP with a per-VP nonce chosen by `vp_nonce`
/// (index and id of the VP), retrying transient faults under `res`.
///
/// The fault-free path issues exactly
/// `net.ping_min(world, vp, target, packets, vp_nonce(i, vp))` per VP —
/// byte-identical to the pre-executor drivers.
#[allow(clippy::too_many_arguments)]
pub fn ping_batch_keyed(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    target: Ipv4,
    packets: usize,
    batch_key: u64,
    vp_nonce: impl Fn(usize, HostId) -> u64,
    log: &mut TargetLog,
) -> Vec<(HostId, PingOutcome)> {
    let mut out = Vec::new();
    ping_batch_keyed_into(
        world, net, res, vps, target, packets, batch_key, vp_nonce, log, &mut out,
    );
    out
}

/// [`ping_batch_keyed`] delivering into a caller-owned buffer (cleared
/// first): per-target campaign loops reuse one buffer across batches, so
/// the fault-free path performs no allocations at all. Results are always
/// an ordered subsequence of `vps` — delivered in request order, with
/// churned VPs skipped and truncation dropping a suffix.
#[allow(clippy::too_many_arguments)]
pub fn ping_batch_keyed_into(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    target: Ipv4,
    packets: usize,
    batch_key: u64,
    vp_nonce: impl Fn(usize, HostId) -> u64,
    log: &mut TargetLog,
    out: &mut Vec<(HostId, PingOutcome)>,
) {
    out.clear();
    let n = vps.len();
    if n == 0 {
        return;
    }
    let per_vp_cost = packets as u64 * CostSchedule::default().per_ping_packet;
    log.requested += n as u64;
    log.credits.baseline += n as u64 * per_vp_cost;

    let Some(plan) = res.active() else {
        log.attempts += 1;
        log.credits.charged += n as u64 * per_vp_cost;
        log.delivered += n as u64;
        out.extend(vps.iter().enumerate().map(|(i, &vp)| {
            (
                vp,
                net.ping_min(world, vp, target, packets, vp_nonce(i, vp)),
            )
        }));
        return;
    };

    let required = res.policy.required(n);
    // One churn window per batch: backoff is short next to a churn window,
    // so a probe that is down stays down for the whole batch.
    let window = splitmix64(batch_key ^ 0xC0FF_EE11);
    let mut best: Vec<(HostId, PingOutcome)> = Vec::new();

    for attempt in 0..res.policy.max_attempts {
        log.attempts += 1;
        if attempt > 0 {
            log.retries += 1;
            log.backoff_secs += res.policy.backoff_secs(attempt - 1);
        }
        log.credits.charged += n as u64 * per_vp_cost;
        let call = splitmix64(batch_key ^ splitmix64(0x0A11_C0DE ^ attempt as u64));

        if let Some(fault) = plan.api_fault(call) {
            match fault {
                ApiFault::RateLimited => log.faults.rate_limited += 1,
                ApiFault::ServerError => log.faults.server_errors += 1,
                ApiFault::Timeout => log.faults.api_timeouts += 1,
            }
            // The call never ran: full refund, then back off and retry.
            log.credits.refunded += n as u64 * per_vp_cost;
            continue;
        }

        let mut delivered: Vec<(HostId, PingOutcome)> = Vec::with_capacity(n);
        for (i, &vp) in vps.iter().enumerate() {
            if plan.vp_disconnected(vp, window) {
                log.faults.disconnects += 1;
                log.credits.refunded += per_vp_cost;
                continue;
            }
            if plan.reply_lost(vp, call) {
                log.faults.replies_lost += 1;
                delivered.push((vp, PingOutcome::Timeout));
                continue;
            }
            if let Some(bad) = plan.garbled_rtt(vp, call) {
                // Validate, count, and discard malformed RTTs instead of
                // letting them poison the constraint solver.
                debug_assert!(!valid_rtt_ms(bad.value()));
                log.faults.garbled += 1;
                delivered.push((vp, PingOutcome::Timeout));
                continue;
            }
            let nonce = if attempt == 0 {
                vp_nonce(i, vp)
            } else {
                // Retries are genuinely new measurements.
                splitmix64(vp_nonce(i, vp) ^ splitmix64(0x5EED ^ attempt as u64))
            };
            delivered.push((vp, net.ping_min(world, vp, target, packets, nonce)));
        }
        let kept = plan.delivered_len(delivered.len(), call);
        log.faults.truncated += (delivered.len() - kept) as u64;
        delivered.truncate(kept);

        if delivered.len() > best.len() {
            best = delivered;
        }
        if best.len() >= required {
            break;
        }
    }

    if best.is_empty() {
        log.failed_batches += 1;
    } else if best.len() < n {
        log.degraded_batches += 1;
    }
    log.delivered += best.len() as u64;
    *out = best;
}

/// [`ping_batch_keyed`] with a single nonce for every VP — the common
/// driver pattern `net.ping_min(world, vp, target, packets, nonce)`.
#[allow(clippy::too_many_arguments)]
pub fn ping_batch(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    target: Ipv4,
    packets: usize,
    nonce: u64,
    log: &mut TargetLog,
) -> Vec<(HostId, PingOutcome)> {
    ping_batch_keyed(
        world,
        net,
        res,
        vps,
        target,
        packets,
        nonce,
        |_, _| nonce,
        log,
    )
}

/// [`ping_batch`] delivering into a caller-owned buffer (see
/// [`ping_batch_keyed_into`]).
#[allow(clippy::too_many_arguments)]
pub fn ping_batch_into(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    target: Ipv4,
    packets: usize,
    nonce: u64,
    log: &mut TargetLog,
    out: &mut Vec<(HostId, PingOutcome)>,
) {
    ping_batch_keyed_into(
        world,
        net,
        res,
        vps,
        target,
        packets,
        nonce,
        |_, _| nonce,
        log,
        out,
    );
}

/// Traceroutes `target` from every VP, retrying transient faults. Same
/// contract as [`ping_batch_keyed`]; traceroutes see API faults, churn and
/// truncation but no reply-level garbling (hop validation lives in
/// `net-sim`).
#[allow(clippy::too_many_arguments)]
pub fn traceroute_batch_keyed(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    target: Ipv4,
    batch_key: u64,
    vp_nonce: impl Fn(usize, HostId) -> u64,
    log: &mut TargetLog,
) -> Vec<(HostId, Traceroute)> {
    let n = vps.len();
    if n == 0 {
        return Vec::new();
    }
    let per_vp_cost = CostSchedule::default().per_traceroute;
    log.requested += n as u64;
    log.credits.baseline += n as u64 * per_vp_cost;

    let Some(plan) = res.active() else {
        log.attempts += 1;
        log.credits.charged += n as u64 * per_vp_cost;
        log.delivered += n as u64;
        return vps
            .iter()
            .enumerate()
            .map(|(i, &vp)| (vp, net.traceroute(world, vp, target, vp_nonce(i, vp))))
            .collect();
    };

    let required = res.policy.required(n);
    let window = splitmix64(batch_key ^ 0xC0FF_EE11);
    let mut best: Vec<(HostId, Traceroute)> = Vec::new();

    for attempt in 0..res.policy.max_attempts {
        log.attempts += 1;
        if attempt > 0 {
            log.retries += 1;
            log.backoff_secs += res.policy.backoff_secs(attempt - 1);
        }
        log.credits.charged += n as u64 * per_vp_cost;
        let call = splitmix64(batch_key ^ splitmix64(0x0A11_C0DE ^ attempt as u64));

        if let Some(fault) = plan.api_fault(call) {
            match fault {
                ApiFault::RateLimited => log.faults.rate_limited += 1,
                ApiFault::ServerError => log.faults.server_errors += 1,
                ApiFault::Timeout => log.faults.api_timeouts += 1,
            }
            log.credits.refunded += n as u64 * per_vp_cost;
            continue;
        }

        let mut delivered: Vec<(HostId, Traceroute)> = Vec::with_capacity(n);
        for (i, &vp) in vps.iter().enumerate() {
            if plan.vp_disconnected(vp, window) {
                log.faults.disconnects += 1;
                log.credits.refunded += per_vp_cost;
                continue;
            }
            let nonce = if attempt == 0 {
                vp_nonce(i, vp)
            } else {
                splitmix64(vp_nonce(i, vp) ^ splitmix64(0x5EED ^ attempt as u64))
            };
            delivered.push((vp, net.traceroute(world, vp, target, nonce)));
        }
        let kept = plan.delivered_len(delivered.len(), call);
        log.faults.truncated += (delivered.len() - kept) as u64;
        delivered.truncate(kept);

        if delivered.len() > best.len() {
            best = delivered;
        }
        if best.len() >= required {
            break;
        }
    }

    if best.is_empty() {
        log.failed_batches += 1;
    } else if best.len() < n {
        log.degraded_batches += 1;
    }
    log.delivered += best.len() as u64;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_sim::faults::{FaultConfig, FaultProfile};
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network) {
        let w = World::generate(WorldConfig::small(Seed(231))).unwrap();
        let net = Network::new(Seed(231));
        (w, net)
    }

    fn vps(w: &World, n: usize) -> Vec<HostId> {
        w.probes.iter().copied().take(n).collect()
    }

    #[test]
    fn required_respects_fraction_and_floor() {
        let p = RetryPolicy::default();
        assert_eq!(p.required(0), 0);
        assert_eq!(p.required(1), 1);
        assert_eq!(p.required(2), 1);
        assert_eq!(p.required(10), 5);
        assert_eq!(p.required(11), 6);
        let strict = RetryPolicy {
            min_answered_fraction: 1.0,
            ..RetryPolicy::default()
        };
        assert_eq!(strict.required(10), 10);
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_secs(0), 30.0);
        assert_eq!(p.backoff_secs(1), 60.0);
        assert_eq!(p.backoff_secs(2), 120.0);
    }

    #[test]
    fn fault_free_path_matches_direct_calls() {
        let (w, net) = setup();
        let vps = vps(&w, 12);
        let target = w.host(w.anchors[0]).ip;
        let mut log = TargetLog::default();
        let batch = ping_batch(&w, &net, &Resilience::none(), &vps, target, 3, 42, &mut log);
        let direct: Vec<_> = vps
            .iter()
            .map(|&vp| (vp, net.ping_min(&w, vp, target, 3, 42)))
            .collect();
        assert_eq!(batch.len(), direct.len());
        for ((va, oa), (vb, ob)) in batch.iter().zip(&direct) {
            assert_eq!(va, vb);
            assert_eq!(oa.rtt(), ob.rtt());
        }
        assert_eq!(log.attempts, 1);
        assert_eq!(log.retries, 0);
        assert_eq!(log.requested, 12);
        assert_eq!(log.delivered, 12);
        assert_eq!(log.credits.charged, log.credits.baseline);
        assert_eq!(log.faults.total(), 0);
    }

    #[test]
    fn zero_rate_plan_takes_the_direct_path() {
        let (w, net) = setup();
        let vps = vps(&w, 8);
        let target = w.host(w.anchors[1]).ip;
        let plan = FaultPlan::with_config(Seed(3), FaultConfig::none());
        let mut log_a = TargetLog::default();
        let mut log_b = TargetLog::default();
        let a = ping_batch(
            &w,
            &net,
            &Resilience::none(),
            &vps,
            target,
            3,
            7,
            &mut log_a,
        );
        let b = ping_batch(
            &w,
            &net,
            &Resilience::with_plan(&plan),
            &vps,
            target,
            3,
            7,
            &mut log_b,
        );
        let key = |v: &[(HostId, PingOutcome)]| -> Vec<_> {
            v.iter().map(|(h, o)| (*h, o.rtt())).collect()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn retries_are_bounded_and_accounted() {
        let (w, net) = setup();
        let vps = vps(&w, 6);
        let target = w.host(w.anchors[2]).ip;
        // API faults only, at certainty: every attempt fails, the executor
        // must give up after max_attempts with everything refunded.
        let cfg = FaultConfig {
            api_fault_rate: 1.0,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::with_config(Seed(8), cfg);
        let res = Resilience::with_plan(&plan);
        let mut log = TargetLog::default();
        let batch = ping_batch(&w, &net, &res, &vps, target, 3, 1, &mut log);
        assert!(batch.is_empty());
        assert_eq!(log.attempts, u64::from(res.policy().max_attempts));
        assert_eq!(log.retries, log.attempts - 1);
        assert_eq!(log.failed_batches, 1);
        assert_eq!(log.delivered, 0);
        assert_eq!(log.credits.charged, log.credits.refunded);
        assert!(log.backoff_secs > 0.0);
    }

    #[test]
    fn partial_results_are_tolerated_and_recorded() {
        let (w, net) = setup();
        let all = vps(&w, 30);
        let target = w.host(w.anchors[3]).ip;
        let cfg = FaultConfig {
            churn_rate: 0.3,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::with_config(Seed(4), cfg);
        let res = Resilience::with_plan(&plan);
        let mut log = TargetLog::default();
        let mut saw_degraded = false;
        for k in 0..20u64 {
            let batch = ping_batch(&w, &net, &res, &all, target, 3, k, &mut log);
            assert!(!batch.is_empty());
            if batch.len() < all.len() {
                saw_degraded = true;
            }
        }
        assert!(saw_degraded, "churn at 30% never shed a VP");
        assert!(log.degraded_batches > 0);
        assert!(log.faults.disconnects > 0);
        assert!(log.delivered < log.requested);
        // Refunds cover exactly the disconnected VPs' packets.
        assert_eq!(log.credits.refunded, log.faults.disconnects * 3);
    }

    #[test]
    fn faulty_batches_are_deterministic() {
        let (w, net) = setup();
        let all = vps(&w, 10);
        let target = w.host(w.anchors[4]).ip;
        let run = || {
            let plan = FaultPlan::new(Seed(99), FaultProfile::Hostile);
            let res = Resilience::with_plan(&plan);
            let mut log = TargetLog::default();
            let mut shape = Vec::new();
            for k in 0..15u64 {
                let batch = ping_batch(&w, &net, &res, &all, target, 3, k, &mut log);
                shape.push(batch.iter().map(|(h, o)| (*h, o.rtt())).collect::<Vec<_>>());
            }
            (shape, log)
        };
        let (shape_a, log_a) = run();
        let (shape_b, log_b) = run();
        assert_eq!(shape_a, shape_b);
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn traceroute_batches_survive_faults() {
        let (w, net) = setup();
        let all: Vec<HostId> = w.anchors.iter().copied().take(8).collect();
        let target = w.host(w.anchors[9]).ip;
        let plan = FaultPlan::new(Seed(7), FaultProfile::Hostile);
        let res = Resilience::with_plan(&plan);
        let mut log = TargetLog::default();
        let mut any = false;
        for k in 0..10u64 {
            let batch = traceroute_batch_keyed(&w, &net, &res, &all, target, k, |_, _| k, &mut log);
            any |= !batch.is_empty();
            for (_, tr) in &batch {
                assert!(!tr.hops.is_empty() || tr.dst_rtt.is_none());
            }
        }
        assert!(any, "every traceroute batch failed under hostile plan");
        assert!(log.faults.total() > 0);
    }

    #[test]
    fn report_absorbs_and_renders_stably() {
        let mut report = CampaignReport::default();
        let mut log = TargetLog {
            attempts: 3,
            retries: 2,
            requested: 10,
            delivered: 7,
            degraded_batches: 1,
            backoff_secs: 90.0,
            ..TargetLog::default()
        };
        log.faults.disconnects = 3;
        log.credits.charged = 90;
        log.credits.refunded = 9;
        log.credits.baseline = 30;
        report.absorb(&log);
        report.absorb(&log);
        assert_eq!(report.targets, 2);
        assert_eq!(report.attempts, 6);
        assert_eq!(report.delivered, 14);
        let text = report.to_string();
        assert!(text.contains("campaign: 2 targets"), "{text}");
        assert!(text.contains("14/20 delivered"), "{text}");
        assert!(text.contains("disconnect 6"), "{text}");
        assert!(text.contains("net 162"), "{text}");
        // Merging two reports equals absorbing all four logs.
        let mut doubled = report.clone();
        doubled.merge(&report);
        assert_eq!(doubled.targets, 4);
        assert_eq!(doubled.credits.charged, 360);
    }

    #[test]
    fn rtt_validation_rejects_garbage() {
        assert!(valid_rtt_ms(12.5));
        assert!(!valid_rtt_ms(-1.0));
        assert!(!valid_rtt_ms(f64::NAN));
        assert!(!valid_rtt_ms(f64::INFINITY));
        assert!(!valid_rtt_ms(86_400_000.0));
        assert!(!valid_rtt_ms(0.0));
    }
}
