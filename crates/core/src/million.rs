//! The million-scale paper's vantage-point selection (Hu et al., IMC 2012;
//! §3.1 of the replication).
//!
//! To geolocate a target without probing it from every vantage point:
//!
//! 1. take the three highest-scoring responsive *representatives* of the
//!    target's `/24` from the hitlist (falling back to random addresses if
//!    fewer exist, as for 8 of the paper's targets);
//! 2. ping the representatives from all VPs;
//! 3. keep the `k` VPs with the lowest median RTT to the representatives;
//! 4. geolocate the target with CBG (or Shortest Ping) using only those.
//!
//! The replication's Figure 3a varies `k` ∈ {1, 3, 10}; its headline
//! finding is that `k = 1` — a single well-chosen VP — is enough.

use crate::cbg::{cbg, CbgResult, VpMeasurement};
use geo_model::ip::Ipv4;
use geo_model::rng::Seed;
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use geo_model::units::Ms;
use net_sim::Network;
use world_sim::hitlist::HitlistEntry;
use world_sim::ids::HostId;
use world_sim::World;

/// Number of representatives per prefix, as in the original paper.
pub const REPRESENTATIVES: usize = 3;

/// The measured closeness of one VP to a target's representatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpScore {
    /// The vantage point.
    pub vp: HostId,
    /// Median min-RTT to the responsive representatives; `None` if no
    /// representative answered this VP.
    pub median_rtt: Option<Ms>,
}

/// Result of the representative-probing step.
#[derive(Debug, Clone)]
pub struct RepProbe {
    /// The representatives used (three when available).
    pub representatives: Vec<HitlistEntry>,
    /// Per-VP closeness scores, sorted best (lowest RTT) first; VPs with
    /// no responsive representative sort last.
    pub scores: Vec<VpScore>,
    /// Ping measurements issued: `|vps| * |representatives|`.
    pub measurements: u64,
}

/// Probes the representatives of `prefix_of` from every VP and ranks VPs.
pub fn probe_representatives(
    world: &World,
    net: &Network,
    vps: &[HostId],
    target: Ipv4,
    nonce: u64,
) -> RepProbe {
    let prefix = target.prefix24();
    let mut reps = world.hitlist.representatives(prefix, REPRESENTATIVES);
    if reps.len() < REPRESENTATIVES {
        // Fallback: random addresses in the /24 (almost surely
        // unresponsive), as the paper did for 8 sparse targets.
        let mut rng = Seed(nonce).derive("rep-fill").rng();
        reps = world
            .hitlist
            .fill_with_random(prefix, reps, REPRESENTATIVES, &mut rng);
    }

    let mut scores: Vec<VpScore> = vps
        .iter()
        .map(|&vp| {
            let rtts: Vec<f64> = reps
                .iter()
                .filter_map(|r| {
                    net.ping_min(world, vp, r.ip, 3, nonce ^ r.ip.0 as u64)
                        .rtt()
                        .map(|m| m.value())
                })
                .collect();
            VpScore {
                vp,
                median_rtt: stats::median(&rtts).map(Ms),
            }
        })
        .collect();
    scores.sort_by(|a, b| match (a.median_rtt, b.median_rtt) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });

    RepProbe {
        measurements: (vps.len() * reps.len()) as u64,
        representatives: reps,
        scores,
    }
}

/// Outcome of the full million-scale geolocation of one target.
#[derive(Debug, Clone)]
pub struct MillionScaleOutcome {
    /// The chosen vantage points (lowest median RTT to representatives).
    pub selected_vps: Vec<HostId>,
    /// CBG over the selected VPs' RTTs to the target.
    pub cbg: Option<CbgResult>,
    /// Total ping measurements (representatives + target probes).
    pub measurements: u64,
}

/// Geolocates `target` with the `k` best VPs from a representative probe.
pub fn geolocate_with_selection(
    world: &World,
    net: &Network,
    probe: &RepProbe,
    target: Ipv4,
    k: usize,
    nonce: u64,
) -> MillionScaleOutcome {
    let selected: Vec<HostId> = probe
        .scores
        .iter()
        .filter(|s| s.median_rtt.is_some())
        .take(k)
        .map(|s| s.vp)
        .collect();

    let measurements: Vec<VpMeasurement> = selected
        .iter()
        .filter_map(|&vp| {
            net.ping_min(world, vp, target, 3, nonce)
                .rtt()
                .map(|rtt| VpMeasurement {
                    vp,
                    location: world.host(vp).registered_location,
                    rtt,
                })
        })
        .collect();

    MillionScaleOutcome {
        measurements: probe.measurements + selected.len() as u64,
        cbg: cbg(&measurements, SpeedOfInternet::CBG),
        selected_vps: selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network) {
        let w = World::generate(WorldConfig::small(Seed(181))).unwrap();
        let net = Network::new(Seed(181));
        (w, net)
    }

    fn clean_probes(w: &World) -> Vec<HostId> {
        w.probes
            .iter()
            .copied()
            .filter(|&p| !w.host(p).is_mis_geolocated())
            .collect()
    }

    #[test]
    fn probes_representatives_and_ranks() {
        let (w, net) = setup();
        let vps = clean_probes(&w);
        let target = w.host(w.anchors[0]);
        let probe = probe_representatives(&w, &net, &vps, target.ip, 1);
        assert_eq!(probe.representatives.len(), REPRESENTATIVES);
        assert_eq!(probe.scores.len(), vps.len());
        assert_eq!(probe.measurements, (vps.len() * 3) as u64);
        // Sorted ascending among measured scores.
        let measured: Vec<f64> = probe
            .scores
            .iter()
            .filter_map(|s| s.median_rtt.map(|m| m.value()))
            .collect();
        for w2 in measured.windows(2) {
            assert!(w2[0] <= w2[1]);
        }
    }

    #[test]
    fn best_vp_is_geographically_close() {
        // The core hypothesis: low RTT to representatives implies
        // geographic closeness to the target.
        let (w, net) = setup();
        let vps = clean_probes(&w);
        let mut close_enough = 0;
        let mut total = 0;
        for (i, &aid) in w.anchors.iter().enumerate() {
            let target = w.host(aid);
            let probe = probe_representatives(&w, &net, &vps, target.ip, i as u64);
            let Some(best) = probe.scores.first().filter(|s| s.median_rtt.is_some()) else {
                continue;
            };
            let d = w.host(best.vp).location.distance(&target.location).value();
            total += 1;
            if d < 300.0 {
                close_enough += 1;
            }
        }
        assert!(total > 0);
        assert!(
            close_enough * 10 >= total * 7,
            "best VP rarely close: {close_enough}/{total}"
        );
    }

    #[test]
    fn geolocates_with_small_k() {
        let (w, net) = setup();
        let vps = clean_probes(&w);
        let target = w.host(w.anchors[1]);
        let probe = probe_representatives(&w, &net, &vps, target.ip, 2);
        for k in [1usize, 3, 10] {
            let out = geolocate_with_selection(&w, &net, &probe, target.ip, k, 2);
            assert!(out.selected_vps.len() <= k);
            let r = out.cbg.expect("CBG must produce an estimate");
            let err = r.estimate.distance(&target.location).value();
            assert!(err < 2000.0, "k={k} error {err} km");
        }
    }

    #[test]
    fn measurement_accounting() {
        let (w, net) = setup();
        let vps: Vec<HostId> = clean_probes(&w).into_iter().take(50).collect();
        let target = w.host(w.anchors[2]);
        let probe = probe_representatives(&w, &net, &vps, target.ip, 3);
        let out = geolocate_with_selection(&w, &net, &probe, target.ip, 10, 3);
        assert_eq!(out.measurements, 50 * 3 + out.selected_vps.len() as u64);
    }

    #[test]
    fn sparse_prefix_falls_back_to_random_fill() {
        let (w, net) = setup();
        // An address in an unknown /24 has no hitlist entries at all.
        let bogus = Ipv4::from_octets(203, 0, 113, 7);
        let vps: Vec<HostId> = clean_probes(&w).into_iter().take(10).collect();
        let probe = probe_representatives(&w, &net, &vps, bogus, 4);
        assert_eq!(probe.representatives.len(), REPRESENTATIVES);
        // All fills are unresponsive, so every VP has no score.
        assert!(probe.scores.iter().all(|s| s.median_rtt.is_none()));
    }
}
