//! The million-scale paper's vantage-point selection (Hu et al., IMC 2012;
//! §3.1 of the replication).
//!
//! To geolocate a target without probing it from every vantage point:
//!
//! 1. take the three highest-scoring responsive *representatives* of the
//!    target's `/24` from the hitlist (falling back to random addresses if
//!    fewer exist, as for 8 of the paper's targets);
//! 2. ping the representatives from all VPs;
//! 3. keep the `k` VPs with the lowest median RTT to the representatives;
//! 4. geolocate the target with CBG (or Shortest Ping) using only those.
//!
//! The replication's Figure 3a varies `k` ∈ {1, 3, 10}; its headline
//! finding is that `k = 1` — a single well-chosen VP — is enough.

use crate::cbg::{cbg, CbgResult, VpMeasurement};
use crate::resilient::{self, CampaignReport, Resilience, TargetLog};
use geo_model::ip::Ipv4;
use geo_model::rng::{splitmix64, Seed};
use geo_model::soi::SpeedOfInternet;
use geo_model::stats;
use geo_model::units::Ms;
use net_sim::Network;
use world_sim::hitlist::HitlistEntry;
use world_sim::ids::HostId;
use world_sim::World;

/// Number of representatives per prefix, as in the original paper.
pub const REPRESENTATIVES: usize = 3;

/// The measured closeness of one VP to a target's representatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpScore {
    /// The vantage point.
    pub vp: HostId,
    /// Median min-RTT to the responsive representatives; `None` if no
    /// representative answered this VP.
    pub median_rtt: Option<Ms>,
}

/// Result of the representative-probing step.
#[derive(Debug, Clone)]
pub struct RepProbe {
    /// The representatives used (three when available).
    pub representatives: Vec<HitlistEntry>,
    /// Per-VP closeness scores, sorted best (lowest RTT) first; VPs with
    /// no responsive representative sort last.
    pub scores: Vec<VpScore>,
    /// Ping measurements issued: `|vps| * |representatives|`.
    pub measurements: u64,
}

/// Probes the representatives of `prefix_of` from every VP and ranks VPs.
pub fn probe_representatives(
    world: &World,
    net: &Network,
    vps: &[HostId],
    target: Ipv4,
    nonce: u64,
) -> RepProbe {
    probe_representatives_resilient(
        world,
        net,
        &Resilience::none(),
        vps,
        target,
        nonce,
        &mut TargetLog::default(),
    )
}

/// [`probe_representatives`] with every representative batch routed
/// through the resilient executor. Fault-free, it issues exactly the same
/// `net-sim` calls.
pub fn probe_representatives_resilient(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    target: Ipv4,
    nonce: u64,
    log: &mut TargetLog,
) -> RepProbe {
    let prefix = target.prefix24();
    let mut reps = world.hitlist.representatives(prefix, REPRESENTATIVES);
    if reps.len() < REPRESENTATIVES {
        // Fallback: random addresses in the /24 (almost surely
        // unresponsive), as the paper did for 8 sparse targets.
        let mut rng = Seed(nonce).derive("rep-fill").rng();
        reps = world
            .hitlist
            .fill_with_random(prefix, reps, REPRESENTATIVES, &mut rng);
    }

    // One batch per representative; transpose delivered results into one
    // flat `vps.len() * reps.len()` slab (NaN = no measurement). Batch
    // results are an ordered subsequence of `vps`, so a cursor merge
    // replaces the per-target `HashMap` + vec-of-vecs the transpose used
    // to churn through.
    let mut rtts: Vec<f64> = vec![f64::NAN; vps.len() * reps.len()];
    let mut batch: Vec<(HostId, net_sim::PingOutcome)> = Vec::new();
    for (j, r) in reps.iter().enumerate() {
        let key = nonce ^ r.ip.0 as u64;
        resilient::ping_batch_into(world, net, res, vps, r.ip, 3, key, log, &mut batch);
        let mut cursor = 0usize;
        for &(vp, outcome) in &batch {
            while vps[cursor] != vp {
                cursor += 1;
            }
            if let Some(m) = outcome.rtt() {
                rtts[cursor * reps.len() + j] = m.value();
            }
            cursor += 1;
        }
    }

    // Per-VP medians over the responsive representatives, compacted in
    // representative order — the exact sequence the vec-of-vecs held.
    let mut vals = [0.0f64; REPRESENTATIVES];
    let mut scores: Vec<VpScore> = vps
        .iter()
        .enumerate()
        .map(|(i, &vp)| {
            let mut n = 0usize;
            for j in 0..reps.len() {
                let v = rtts[i * reps.len() + j];
                if !v.is_nan() {
                    vals[n] = v;
                    n += 1;
                }
            }
            VpScore {
                vp,
                median_rtt: stats::median(&vals[..n]).map(Ms),
            }
        })
        .collect();
    scores.sort_by(|a, b| match (a.median_rtt, b.median_rtt) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    });

    RepProbe {
        measurements: (vps.len() * reps.len()) as u64,
        representatives: reps,
        scores,
    }
}

/// Outcome of the full million-scale geolocation of one target.
#[derive(Debug, Clone)]
pub struct MillionScaleOutcome {
    /// The chosen vantage points (lowest median RTT to representatives).
    pub selected_vps: Vec<HostId>,
    /// CBG over the selected VPs' RTTs to the target.
    pub cbg: Option<CbgResult>,
    /// Total ping measurements (representatives + target probes).
    pub measurements: u64,
}

/// Geolocates `target` with the `k` best VPs from a representative probe.
pub fn geolocate_with_selection(
    world: &World,
    net: &Network,
    probe: &RepProbe,
    target: Ipv4,
    k: usize,
    nonce: u64,
) -> MillionScaleOutcome {
    geolocate_with_selection_resilient(
        world,
        net,
        &Resilience::none(),
        probe,
        target,
        k,
        nonce,
        &mut TargetLog::default(),
    )
}

/// [`geolocate_with_selection`] with the target pings routed through the
/// resilient executor.
#[allow(clippy::too_many_arguments)]
pub fn geolocate_with_selection_resilient(
    world: &World,
    net: &Network,
    res: &Resilience,
    probe: &RepProbe,
    target: Ipv4,
    k: usize,
    nonce: u64,
    log: &mut TargetLog,
) -> MillionScaleOutcome {
    let selected: Vec<HostId> = probe
        .scores
        .iter()
        .filter(|s| s.median_rtt.is_some())
        .take(k)
        .map(|s| s.vp)
        .collect();

    let batch = resilient::ping_batch(world, net, res, &selected, target, 3, nonce, log);
    let measurements: Vec<VpMeasurement> = batch
        .iter()
        .filter_map(|(vp, outcome)| {
            outcome.rtt().map(|rtt| VpMeasurement {
                vp: *vp,
                location: world.host(*vp).registered_location,
                rtt,
            })
        })
        .collect();

    MillionScaleOutcome {
        measurements: probe.measurements + selected.len() as u64,
        cbg: cbg(&measurements, SpeedOfInternet::CBG),
        selected_vps: selected,
    }
}

/// Runs the full million-scale campaign over `targets`, fanning out with
/// [`geo_model::runtime::par_map_indexed`] (bit-identical at any
/// `IPGEO_THREADS`) and folding per-target accounting into one
/// [`CampaignReport`] in target order.
pub fn campaign(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    targets: &[Ipv4],
    k: usize,
    nonce: u64,
) -> (Vec<MillionScaleOutcome>, CampaignReport) {
    let per: Vec<(MillionScaleOutcome, TargetLog)> =
        geo_model::runtime::par_map_indexed(targets.len(), |i| {
            let key = Seed(nonce).derive_index("million-campaign", i as u64).0;
            let mut log = TargetLog::default();
            let probe =
                probe_representatives_resilient(world, net, res, vps, targets[i], key, &mut log);
            let out = geolocate_with_selection_resilient(
                world,
                net,
                res,
                &probe,
                targets[i],
                k,
                splitmix64(key ^ 0x717A),
                &mut log,
            );
            (out, log)
        });
    let mut report = CampaignReport::default();
    let outcomes = per
        .into_iter()
        .map(|(out, log)| {
            report.absorb(&log);
            out
        })
        .collect();
    (outcomes, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network) {
        let w = World::generate(WorldConfig::small(Seed(181))).unwrap();
        let net = Network::new(Seed(181));
        (w, net)
    }

    fn clean_probes(w: &World) -> Vec<HostId> {
        w.probes
            .iter()
            .copied()
            .filter(|&p| !w.host(p).is_mis_geolocated())
            .collect()
    }

    #[test]
    fn probes_representatives_and_ranks() {
        let (w, net) = setup();
        let vps = clean_probes(&w);
        let target = w.host(w.anchors[0]);
        let probe = probe_representatives(&w, &net, &vps, target.ip, 1);
        assert_eq!(probe.representatives.len(), REPRESENTATIVES);
        assert_eq!(probe.scores.len(), vps.len());
        assert_eq!(probe.measurements, (vps.len() * 3) as u64);
        // Sorted ascending among measured scores.
        let measured: Vec<f64> = probe
            .scores
            .iter()
            .filter_map(|s| s.median_rtt.map(|m| m.value()))
            .collect();
        for w2 in measured.windows(2) {
            assert!(w2[0] <= w2[1]);
        }
    }

    #[test]
    fn best_vp_is_geographically_close() {
        // The core hypothesis: low RTT to representatives implies
        // geographic closeness to the target.
        let (w, net) = setup();
        let vps = clean_probes(&w);
        let mut close_enough = 0;
        let mut total = 0;
        for (i, &aid) in w.anchors.iter().enumerate() {
            let target = w.host(aid);
            let probe = probe_representatives(&w, &net, &vps, target.ip, i as u64);
            let Some(best) = probe.scores.first().filter(|s| s.median_rtt.is_some()) else {
                continue;
            };
            let d = w.host(best.vp).location.distance(&target.location).value();
            total += 1;
            if d < 300.0 {
                close_enough += 1;
            }
        }
        assert!(total > 0);
        assert!(
            close_enough * 10 >= total * 7,
            "best VP rarely close: {close_enough}/{total}"
        );
    }

    #[test]
    fn geolocates_with_small_k() {
        let (w, net) = setup();
        let vps = clean_probes(&w);
        let target = w.host(w.anchors[1]);
        let probe = probe_representatives(&w, &net, &vps, target.ip, 2);
        for k in [1usize, 3, 10] {
            let out = geolocate_with_selection(&w, &net, &probe, target.ip, k, 2);
            assert!(out.selected_vps.len() <= k);
            let r = out.cbg.expect("CBG must produce an estimate");
            let err = r.estimate.distance(&target.location).value();
            assert!(err < 2000.0, "k={k} error {err} km");
        }
    }

    #[test]
    fn measurement_accounting() {
        let (w, net) = setup();
        let vps: Vec<HostId> = clean_probes(&w).into_iter().take(50).collect();
        let target = w.host(w.anchors[2]);
        let probe = probe_representatives(&w, &net, &vps, target.ip, 3);
        let out = geolocate_with_selection(&w, &net, &probe, target.ip, 10, 3);
        assert_eq!(out.measurements, 50 * 3 + out.selected_vps.len() as u64);
    }

    #[test]
    fn campaign_survives_api_failures_with_correct_accounting() {
        use atlas_sim::faults::{FaultConfig, FaultPlan};
        let (w, net) = setup();
        let vps: Vec<HostId> = clean_probes(&w).into_iter().take(30).collect();
        let targets: Vec<Ipv4> = w.anchors.iter().take(6).map(|&a| w.host(a).ip).collect();
        // The acceptance scenario: 20% of API calls fail transiently.
        let cfg = FaultConfig {
            api_fault_rate: 0.2,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::with_config(Seed(42), cfg);
        let res = Resilience::with_plan(&plan);
        let (outs, report) = campaign(&w, &net, &res, &vps, &targets, 3, 9);
        assert_eq!(outs.len(), targets.len());
        assert!(outs.iter().all(|o| o.cbg.is_some()), "a target got no fix");
        let api_faults =
            report.faults.rate_limited + report.faults.server_errors + report.faults.api_timeouts;
        assert!(api_faults > 0, "20% fault rate never fired");
        assert!(report.retries > 0, "faults never retried");
        // Partial-result accounting: with API faults only, every refund
        // matches a failed call exactly, so net credits equal the cost of
        // what was delivered (3-packet pings at 1 credit per packet).
        assert_eq!(report.credits.net(), report.delivered * 3);
        assert_eq!(
            report.delivered, report.requested,
            "bounded retries failed to recover a batch: {report}"
        );
        assert_eq!(report.failed_batches, 0);
    }

    #[test]
    fn campaign_report_is_deterministic() {
        use atlas_sim::faults::{FaultPlan, FaultProfile};
        let (w, net) = setup();
        let vps: Vec<HostId> = clean_probes(&w).into_iter().take(20).collect();
        let targets: Vec<Ipv4> = w.anchors.iter().take(4).map(|&a| w.host(a).ip).collect();
        let run = || {
            let plan = FaultPlan::new(Seed(13), FaultProfile::Flaky);
            let res = Resilience::with_plan(&plan);
            let (outs, report) = campaign(&w, &net, &res, &vps, &targets, 3, 5);
            let shape: Vec<_> = outs
                .iter()
                .map(|o| {
                    (
                        o.selected_vps.clone(),
                        o.cbg.as_ref().map(|r| (r.estimate.lat(), r.estimate.lon())),
                    )
                })
                .collect();
            (shape, report.to_string())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sparse_prefix_falls_back_to_random_fill() {
        let (w, net) = setup();
        // An address in an unknown /24 has no hitlist entries at all.
        let bogus = Ipv4::from_octets(203, 0, 113, 7);
        let vps: Vec<HostId> = clean_probes(&w).into_iter().take(10).collect();
        let probe = probe_representatives(&w, &net, &vps, bogus, 4);
        assert_eq!(probe.representatives.len(), REPRESENTATIVES);
        // All fills are unresponsive, so every VP has no score.
        assert!(probe.scores.iter().all(|s| s.median_rtt.is_none()));
    }
}
