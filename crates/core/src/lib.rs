//! # ipgeo
//!
//! The geolocation techniques replicated by *"Replication: Towards a
//! Publicly Available Internet Scale IP Geolocation Dataset"* (Darwich,
//! Rimlinger, Dreyfus, Gouel, Vermeulen — ACM IMC 2023), implemented over
//! the simulated measurement ecosystem of this workspace:
//!
//! - [`cbg`] — the classic latency-based primitives: Constraint-Based
//!   Geolocation (Gueye et al.) and Shortest Ping;
//! - [`sanitize`] — the §4.3 speed-of-Internet sanitizer for vantage-point
//!   and target geolocation metadata;
//! - [`million`] — the million-scale paper's vantage-point selection
//!   (Hu et al., IMC 2012): probe three representatives in the target's
//!   `/24` from all VPs, keep the lowest-RTT VPs;
//! - [`two_step`] — the replication's own extension (§5.1.4): a greedy
//!   earth-covering first step that cuts the measurement overhead to
//!   ~13% of the original while keeping its accuracy;
//! - [`street`] — the street-level paper's three-tier system (Wang et
//!   al., NSDI 2011): CBG at 4/9 c, concentric-circle landmark discovery
//!   through a mapping service, traceroute-derived `D1 + D2` delays, and
//!   the final map-to-closest-landmark step;
//! - [`oracle`] — the closest-landmark oracle of Fig. 5a (the lower bound
//!   of the street-level technique's error);
//! - [`dbsim`] — the commercial geolocation database simulators of §6
//!   (MaxMind-free-like and IPinfo-like).
//!
//! Two extensions go beyond the paper's evaluation: [`multi_round`]
//! implements the §7.2.3 future-work idea (round-based selection beyond
//! two steps), and [`publish`] assembles the accurate/complete/explainable
//! dataset the paper motivates, with an evidence trail per prefix.
//!
//! Every pipeline reports not only an estimate but also its measurement
//! cost (pings, traceroutes, mapping queries, virtual time), because the
//! replication's headline results are as much about deployability as
//! about accuracy.
//!
//! Measurement batches route through [`resilient`], the campaign executor
//! that retries transient platform faults (`atlas_sim::faults`) with
//! bounded deterministic backoff, tolerates partial results, and records a
//! [`resilient::CampaignReport`]; without a fault plan it is byte-identical
//! to direct `net-sim` calls.

pub mod cbg;
pub mod dbsim;
pub mod million;
pub mod multi_round;
pub mod oracle;
pub mod publish;
pub mod resilient;
pub mod sanitize;
pub mod street;
pub mod two_step;

pub use cbg::{cbg, shortest_ping, CbgResult, VpMeasurement};
pub use resilient::{CampaignReport, Resilience, RetryPolicy, TargetLog};
pub use sanitize::{sanitize_anchors, sanitize_probes, SanitizeReport};
