//! Classic latency-based geolocation: CBG and Shortest Ping.
//!
//! Both consume the same input: vantage points with known (registered)
//! locations and a measured minimum RTT to the target.
//!
//! - **Shortest Ping** maps the target to the location of the VP with the
//!   smallest RTT.
//! - **CBG** converts each RTT into a maximum distance (via a
//!   speed-of-Internet factor), intersects the resulting circles, and
//!   estimates the target as the intersection's centroid.

use geo_model::constraint::{Circle, Region, RegionEstimate, RegionScratch};
use geo_model::point::GeoPoint;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Ms;
use world_sim::ids::HostId;

/// One vantage point's measurement of the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpMeasurement {
    /// The vantage point.
    pub vp: HostId,
    /// The VP's *registered* location (what the platform metadata claims).
    pub location: GeoPoint,
    /// Minimum RTT to the target.
    pub rtt: Ms,
}

/// The outcome of a CBG run.
#[derive(Debug, Clone)]
pub struct CbgResult {
    /// Estimated target location (centroid of the intersection).
    pub estimate: GeoPoint,
    /// Diagnostics of the intersection.
    pub region_estimate: RegionEstimate,
    /// The constraint region (useful for tier-2 sampling).
    pub region: Region,
    /// True if the requested speed factor produced an empty intersection
    /// and the conservative 2/3 c fallback was used instead (§5.2.1
    /// reports 5 such targets).
    pub used_fallback_soi: bool,
}

/// Runs CBG over the measurements with the given speed-of-Internet factor.
///
/// Returns `None` when there are no measurements or no intersection even
/// at the conservative 2/3 c fallback.
pub fn cbg(measurements: &[VpMeasurement], soi: SpeedOfInternet) -> Option<CbgResult> {
    cbg_with(measurements, soi, &mut RegionScratch::new())
}

/// [`cbg`] with caller-owned intersection buffers: bit-identical result;
/// solver loops over many targets should hold one [`RegionScratch`] and
/// pass it to every call.
pub fn cbg_with(
    measurements: &[VpMeasurement],
    soi: SpeedOfInternet,
    scratch: &mut RegionScratch,
) -> Option<CbgResult> {
    if measurements.is_empty() {
        return None;
    }
    let build = |factor: SpeedOfInternet| -> Region {
        Region::from_circles(
            measurements
                .iter()
                .map(|m| Circle::new(m.location, factor.max_distance(m.rtt)))
                .collect(),
        )
    };
    let region = build(soi);
    if let Some(est) = region.intersect_with(scratch) {
        return Some(CbgResult {
            estimate: est.centroid,
            region_estimate: est,
            region,
            used_fallback_soi: false,
        });
    }
    // Fallback: the paper keeps 2/3 c for targets whose 4/9 c constraints
    // are inconsistent.
    let fallback = SpeedOfInternet::CBG;
    if soi == fallback {
        return None;
    }
    let region = build(fallback);
    region.intersect_with(scratch).map(|est| CbgResult {
        estimate: est.centroid,
        region_estimate: est,
        region,
        used_fallback_soi: true,
    })
}

/// Shortest Ping: the VP with the lowest RTT *is* the estimate.
pub fn shortest_ping(measurements: &[VpMeasurement]) -> Option<&VpMeasurement> {
    measurements.iter().min_by(|a, b| a.rtt.total_cmp(&b.rtt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::units::Km;

    fn vp(id: u32, lat: f64, lon: f64, rtt: f64) -> VpMeasurement {
        VpMeasurement {
            vp: HostId(id),
            location: GeoPoint::new(lat, lon),
            rtt: Ms(rtt),
        }
    }

    /// Builds measurements whose RTTs are consistent with a target at
    /// `target` seen through a given inflation factor.
    fn consistent_measurements(target: GeoPoint, inflation: f64) -> Vec<VpMeasurement> {
        [
            (40.0, 500.0),
            (130.0, 800.0),
            (250.0, 300.0),
            (330.0, 1200.0),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(bearing, d))| {
            let loc = target.destination(bearing, Km(d));
            let rtt = SpeedOfInternet::CBG.min_rtt(Km(d)) * inflation;
            VpMeasurement {
                vp: HostId(i as u32),
                location: loc,
                rtt,
            }
        })
        .collect()
    }

    #[test]
    fn cbg_recovers_target_with_sound_constraints() {
        let target = GeoPoint::new(48.8, 2.3);
        let ms = consistent_measurements(target, 1.4);
        let r = cbg(&ms, SpeedOfInternet::CBG).unwrap();
        assert!(!r.used_fallback_soi);
        let err = r.estimate.distance(&target).value();
        assert!(err < 250.0, "error {err} km");
        assert!(r.region.contains(&target));
    }

    #[test]
    fn cbg_empty_input_is_none() {
        assert!(cbg(&[], SpeedOfInternet::CBG).is_none());
    }

    #[test]
    fn street_level_factor_falls_back_when_too_aggressive() {
        // Inflation 1.05: at 4/9 c the circles exclude the target and (for
        // these bearings) the intersection is empty; 2/3 c still works.
        let target = GeoPoint::new(48.8, 2.3);
        let ms = consistent_measurements(target, 1.05);
        let r = cbg(&ms, SpeedOfInternet::STREET_LEVEL).unwrap();
        assert!(r.used_fallback_soi, "expected 4/9c to fail here");
    }

    #[test]
    fn street_level_factor_works_with_heavy_inflation() {
        let target = GeoPoint::new(48.8, 2.3);
        let ms = consistent_measurements(target, 2.0);
        let r = cbg(&ms, SpeedOfInternet::STREET_LEVEL).unwrap();
        assert!(!r.used_fallback_soi);
    }

    #[test]
    fn tightest_constraint_bounds_cbg_error() {
        let target = GeoPoint::new(10.0, 10.0);
        let mut ms = consistent_measurements(target, 1.5);
        // Add a very close VP: 20 km away.
        let close = target.destination(77.0, Km(20.0));
        ms.push(VpMeasurement {
            vp: HostId(99),
            location: close,
            rtt: SpeedOfInternet::CBG.min_rtt(Km(20.0)) * 1.5,
        });
        let r = cbg(&ms, SpeedOfInternet::CBG).unwrap();
        let err = r.estimate.distance(&target).value();
        assert!(err <= 2.0 * 30.0 + 1.0, "close VP did not tighten: {err}");
    }

    #[test]
    fn shortest_ping_picks_minimum() {
        let ms = vec![
            vp(1, 0.0, 0.0, 30.0),
            vp(2, 10.0, 10.0, 5.0),
            vp(3, 20.0, 20.0, 50.0),
        ];
        let best = shortest_ping(&ms).unwrap();
        assert_eq!(best.vp, HostId(2));
    }

    #[test]
    fn shortest_ping_empty_is_none() {
        assert!(shortest_ping(&[]).is_none());
    }
}
