//! The street-level three-tier technique (Wang et al., NSDI 2011; §3.2 of
//! the replication).
//!
//! - **Tier 1**: ping the target from the vantage points (the replication
//!   uses the RIPE Atlas anchors), run CBG at 4/9 c (falling back to 2/3 c
//!   when the aggressive factor leaves no intersection, as happened for 5
//!   of the paper's targets), and take the centroid.
//! - **Tier 2**: sample concentric circles (radius step 5 km, angle 36°)
//!   around the centroid while they still cut the CBG region; reverse
//!   geocode each sample point, fetch the POIs of its zip code, and keep
//!   the websites that pass the three locality tests as landmarks. Run
//!   traceroutes from the 10 closest VPs to each landmark and to the
//!   target, and derive the landmark–target delay `D1 + D2` from the last
//!   common hop — a computation that needs reverse-path information the
//!   measurements do not carry, which is why many values come out negative
//!   (Appendix B, Fig. 6a). Landmark circles from the usable delays bound
//!   a new, smaller region.
//! - **Tier 3**: repeat tier 2 from the new centroid at finer granularity
//!   (step 1 km, angle 10°), then map the target to the landmark with the
//!   smallest usable delay.
//!
//! Every outcome carries its measurement cost and a virtual-time estimate
//! (mapping-service rate limits, locality-test fetches, measurement API
//! round trips) for the Fig. 6c scalability analysis.

use crate::cbg::{cbg_with, CbgResult, VpMeasurement};
use crate::resilient::{self, Resilience, TargetLog};
use geo_model::constraint::{Circle, Region, RegionScratch};
use geo_model::point::GeoPoint;
use geo_model::rng::splitmix64;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Km;
use net_sim::{Network, Traceroute};
use std::collections::HashSet;
use web_sim::ecosystem::WebEcosystem;
use web_sim::locality::{LocalityTester, Verdict};
use web_sim::services::MappingServices;
use web_sim::EntityId;
use world_sim::ids::HostId;
use world_sim::World;

/// Street-level pipeline parameters (paper values as defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct StreetConfig {
    /// Speed factor for constraint circles (4/9 c per the original paper).
    pub soi: SpeedOfInternet,
    /// Tier-2 ring spacing, km.
    pub tier2_step_km: f64,
    /// Tier-2 points per ring (360 / 36°).
    pub tier2_points: usize,
    /// Tier-3 ring spacing, km.
    pub tier3_step_km: f64,
    /// Tier-3 points per ring (360 / 10°).
    pub tier3_points: usize,
    /// Maximum rings per tier (safety cap; the stop rule is "no point of
    /// the ring is inside the region").
    pub max_rings: usize,
    /// Vantage points used per landmark (the replication's reduction: the
    /// 10 closest VPs instead of all of them).
    pub vps_per_landmark: usize,
    /// Cap on landmarks measured per target (cost control).
    pub max_landmarks: usize,
    /// Effective seconds per locality test (DNS + two fetches, with the
    /// pipeline's concurrency).
    pub secs_per_test: f64,
    /// Seconds per measurement-API round trip (create + poll).
    pub api_round_secs: f64,
}

impl Default for StreetConfig {
    fn default() -> StreetConfig {
        StreetConfig {
            soi: SpeedOfInternet::STREET_LEVEL,
            tier2_step_km: 5.0,
            tier2_points: 10,
            tier3_step_km: 1.0,
            tier3_points: 36,
            max_rings: 60,
            vps_per_landmark: 10,
            max_landmarks: 400,
            secs_per_test: 0.12,
            api_round_secs: 150.0,
        }
    }
}

/// One landmark's observation.
#[derive(Debug, Clone)]
pub struct LandmarkObs {
    /// The entity acting as landmark.
    pub entity: EntityId,
    /// Where its postal address claims it is.
    pub claimed_location: GeoPoint,
    /// All per-VP `D1 + D2` values (ms, one-way; negative = unusable).
    pub d1d2_values: Vec<f64>,
    /// The selected delay: minimum `D1 + D2` across VPs, if any pair of
    /// traceroutes shared a responsive common hop.
    pub delay_ms: Option<f64>,
}

impl LandmarkObs {
    /// True if the selected delay exists and is non-negative.
    pub fn usable(&self) -> bool {
        self.delay_ms.is_some_and(|d| d >= 0.0)
    }
}

/// The full outcome for one target.
#[derive(Debug, Clone)]
pub struct StreetOutcome {
    /// The target.
    pub target: HostId,
    /// Tier-1 CBG result.
    pub tier1: Option<CbgResult>,
    /// Final street-level estimate (landmark location, or a centroid
    /// fallback). `None` only if even tier 1 failed.
    pub estimate: Option<GeoPoint>,
    /// The landmark the target was mapped to, if any.
    pub chosen_landmark: Option<EntityId>,
    /// All landmarks observed across tiers 2 and 3.
    pub landmarks: Vec<LandmarkObs>,
    /// Vantage points used for tiers 2/3.
    pub vps_used: Vec<HostId>,
    /// Mapping-service queries (reverse geocoding + POI).
    pub mapping_queries: u64,
    /// Locality tests run.
    pub locality_tests: u64,
    /// Traceroutes run.
    pub traceroutes: u64,
    /// Virtual seconds the whole pipeline took.
    pub virtual_secs: f64,
    /// True if tier 1 needed the 2/3 c fallback.
    pub used_fallback_soi: bool,
}

/// Geolocates one target with the street-level technique.
///
/// `vps` are the tier-1 vantage points (anchors, excluding the target
/// itself); they must already be sanitized.
pub fn geolocate(
    world: &World,
    net: &Network,
    eco: &WebEcosystem,
    vps: &[HostId],
    target: HostId,
    cfg: &StreetConfig,
    nonce: u64,
) -> StreetOutcome {
    geolocate_resilient(
        world,
        net,
        eco,
        &Resilience::none(),
        vps,
        target,
        cfg,
        nonce,
        &mut TargetLog::default(),
    )
}

/// [`geolocate`] with every measurement batch routed through the resilient
/// executor. Fault-free, it issues exactly the same `net-sim` calls.
#[allow(clippy::too_many_arguments)]
pub fn geolocate_resilient(
    world: &World,
    net: &Network,
    eco: &WebEcosystem,
    res: &Resilience,
    vps: &[HostId],
    target: HostId,
    cfg: &StreetConfig,
    nonce: u64,
    log: &mut TargetLog,
) -> StreetOutcome {
    let target_ip = world.host(target).ip;
    let mut virtual_secs = 0.0;
    // One set of intersection buffers serves the tier-1 CBG and the
    // landmark-region intersections for this target.
    let mut scratch = RegionScratch::new();
    let mut services = MappingServices::new();
    let mut tester = LocalityTester::new(net.seed().derive_index("street", nonce));

    // ---- Tier 1 ----
    let tier1_batch = resilient::ping_batch_keyed(
        world,
        net,
        res,
        vps,
        target_ip,
        3,
        nonce,
        |_, vp: HostId| splitmix64(nonce ^ vp.0 as u64),
        log,
    );
    let tier1_ms: Vec<VpMeasurement> = tier1_batch
        .iter()
        .filter_map(|(vp, outcome)| {
            outcome.rtt().map(|rtt| VpMeasurement {
                vp: *vp,
                location: world.host(*vp).registered_location,
                rtt,
            })
        })
        .collect();
    virtual_secs += cfg.api_round_secs; // one ping campaign
    let tier1 = cbg_with(&tier1_ms, cfg.soi, &mut scratch);

    let Some(tier1_result) = tier1 else {
        return StreetOutcome {
            target,
            tier1: None,
            estimate: None,
            chosen_landmark: None,
            landmarks: Vec::new(),
            vps_used: Vec::new(),
            mapping_queries: services.geocoder.queries() + services.poi.queries(),
            locality_tests: 0,
            traceroutes: 0,
            virtual_secs,
            used_fallback_soi: false,
        };
    };
    let used_fallback_soi = tier1_result.used_fallback_soi;

    // The 10 VPs closest to the target by tier-1 RTT run the traceroutes.
    let mut by_rtt = tier1_ms.clone();
    by_rtt.sort_by(|a, b| a.rtt.total_cmp(&b.rtt));
    let trace_vps: Vec<HostId> = by_rtt
        .iter()
        .take(cfg.vps_per_landmark)
        .map(|m| m.vp)
        .collect();

    // Traceroutes from each VP to the target (reused for all landmarks).
    // Results pair with landmark traceroutes by VP id, so a VP lost to
    // churn here simply contributes no D1+D2 value later.
    let target_traces: Vec<(HostId, Traceroute)> = resilient::traceroute_batch_keyed(
        world,
        net,
        res,
        &trace_vps,
        target_ip,
        nonce ^ 0x7714,
        |_, vp: HostId| splitmix64(nonce ^ 0x7714 ^ vp.0 as u64),
        log,
    );
    let mut traceroutes: u64 = target_traces.len() as u64;

    let mut seen_entities: HashSet<EntityId> = HashSet::new();
    let mut landmarks: Vec<LandmarkObs> = Vec::new();

    // ---- Tier 2 ----
    let mut region = tier1_result.region.clone();
    let mut centroid = tier1_result.estimate;
    let found2 = discover(
        world,
        eco,
        &mut services,
        &mut tester,
        &centroid,
        &region,
        cfg.tier2_step_km,
        cfg.tier2_points,
        cfg,
        &mut seen_entities,
    );
    measure_landmarks(
        world,
        net,
        eco,
        res,
        &trace_vps,
        &target_traces,
        &found2,
        cfg,
        nonce,
        &mut landmarks,
        &mut traceroutes,
        log,
    );
    virtual_secs += cfg.api_round_secs; // the tier-2 traceroute wave

    // New region from usable landmark delays.
    let lm_circles: Vec<Circle> = landmarks
        .iter()
        .filter(|l| l.usable())
        .map(|l| {
            Circle::new(
                l.claimed_location,
                Km(l.delay_ms.expect("usable") * cfg.soi.km_per_ms()),
            )
        })
        .collect();
    if !lm_circles.is_empty() {
        let lm_region = Region::from_circles(lm_circles);
        if let Some(est) = lm_region.intersect_with(&mut scratch) {
            centroid = est.centroid;
            region = lm_region;
        }
    }

    // ---- Tier 3 ----
    let found3 = discover(
        world,
        eco,
        &mut services,
        &mut tester,
        &centroid,
        &region,
        cfg.tier3_step_km,
        cfg.tier3_points,
        cfg,
        &mut seen_entities,
    );
    measure_landmarks(
        world,
        net,
        eco,
        res,
        &trace_vps,
        &target_traces,
        &found3,
        cfg,
        nonce ^ 0x3333,
        &mut landmarks,
        &mut traceroutes,
        log,
    );
    virtual_secs += cfg.api_round_secs; // the tier-3 traceroute wave

    // ---- Final mapping: smallest usable delay wins. ----
    let chosen = landmarks.iter().filter(|l| l.usable()).min_by(|a, b| {
        a.delay_ms
            .expect("usable")
            .total_cmp(&b.delay_ms.expect("usable"))
    });
    let (estimate, chosen_landmark) = match chosen {
        Some(l) => (Some(l.claimed_location), Some(l.entity)),
        None => (Some(centroid), None),
    };

    virtual_secs += services.total_time_secs();
    virtual_secs += tester.tests_run() as f64 * cfg.secs_per_test;

    StreetOutcome {
        target,
        tier1: Some(tier1_result),
        estimate,
        chosen_landmark,
        landmarks,
        vps_used: trace_vps,
        mapping_queries: services.geocoder.queries() + services.poi.queries(),
        locality_tests: tester.tests_run(),
        traceroutes,
        virtual_secs,
        used_fallback_soi,
    }
}

/// Concentric-circle landmark discovery around `center` within `region`.
#[allow(clippy::too_many_arguments)]
fn discover(
    world: &World,
    eco: &WebEcosystem,
    services: &mut MappingServices,
    tester: &mut LocalityTester,
    center: &GeoPoint,
    region: &Region,
    step_km: f64,
    points_per_ring: usize,
    cfg: &StreetConfig,
    seen: &mut HashSet<EntityId>,
) -> Vec<EntityId> {
    let mut found = Vec::new();
    let mut queried_zips: HashSet<world_sim::ids::ZipCode> = HashSet::new();

    // Ring 0: the centroid itself.
    probe_point(
        world,
        eco,
        services,
        tester,
        center,
        seen,
        &mut queried_zips,
        &mut found,
    );

    for ring in 1..=cfg.max_rings {
        let radius = Km(ring as f64 * step_km);
        let step = 360.0 / points_per_ring as f64;
        let mut any_inside = false;
        for k in 0..points_per_ring {
            let p = center.destination(k as f64 * step, radius);
            if !region.contains(&p) {
                continue;
            }
            any_inside = true;
            if seen.len() >= cfg.max_landmarks * 50 || found.len() >= cfg.max_landmarks {
                continue;
            }
            probe_point(
                world,
                eco,
                services,
                tester,
                &p,
                seen,
                &mut queried_zips,
                &mut found,
            );
        }
        if !any_inside {
            break; // the paper's stop rule
        }
    }
    found
}

/// Reverse-geocodes one sample point and tests the POIs of its (uncached)
/// zip code, appending the landmarks that pass.
#[allow(clippy::too_many_arguments)]
fn probe_point(
    world: &World,
    eco: &WebEcosystem,
    services: &mut MappingServices,
    tester: &mut LocalityTester,
    p: &GeoPoint,
    seen: &mut HashSet<EntityId>,
    queried_zips: &mut HashSet<world_sim::ids::ZipCode>,
    found: &mut Vec<EntityId>,
) {
    let Some(zip) = services.reverse_geocode(world, p) else {
        return;
    };
    if !queried_zips.insert(zip) {
        return; // cached (§5.2.5: the paper caches mapping queries)
    }
    for eid in services.pois_with_website(eco, zip) {
        if !seen.insert(eid) {
            continue;
        }
        let entity = eco.entity(eid);
        if tester.test(eco, entity, zip) == Verdict::Landmark {
            found.push(eid);
        }
    }
}

/// Runs traceroutes to each new landmark and derives `D1 + D2`. Landmark
/// and target traceroutes pair by vantage-point id, so a VP whose probe
/// churned out of either wave contributes no value instead of misaligning
/// the computation.
#[allow(clippy::too_many_arguments)]
fn measure_landmarks(
    world: &World,
    net: &Network,
    eco: &WebEcosystem,
    res: &Resilience,
    trace_vps: &[HostId],
    target_traces: &[(HostId, Traceroute)],
    found: &[EntityId],
    cfg: &StreetConfig,
    nonce: u64,
    landmarks: &mut Vec<LandmarkObs>,
    traceroutes: &mut u64,
    log: &mut TargetLog,
) {
    for &eid in found.iter().take(cfg.max_landmarks) {
        let entity = eco.entity(eid);
        let lm_ip = world.host(eco.website(entity.website).server).ip;
        let lm_key = nonce ^ ((eid.0 as u64) << 20);
        let batch = resilient::traceroute_batch_keyed(
            world,
            net,
            res,
            trace_vps,
            lm_ip,
            lm_key,
            |_, vp: HostId| splitmix64(lm_key ^ vp.0 as u64),
            log,
        );
        *traceroutes += batch.len() as u64;
        let mut values = Vec::new();
        for (vp, tr_lm) in &batch {
            let Some((_, tr_t)) = target_traces.iter().find(|(v, _)| v == vp) else {
                continue;
            };
            let Some(d) = d1_plus_d2(tr_lm, tr_t) else {
                continue;
            };
            values.push(d);
        }
        let delay = values.iter().copied().min_by(|a, b| a.total_cmp(b));
        landmarks.push(LandmarkObs {
            entity: eid,
            claimed_location: entity.location,
            d1d2_values: values,
            delay_ms: delay,
        });
    }
}

/// The `D1 + D2` computation of Fig. 1c / Appendix B: find the last common
/// hop `R1` of the two traceroutes, subtract its RTT from the destination
/// RTTs (halving to approximate one-way delays), and sum. Requires both
/// destinations and both `R1` observations to have answered.
pub fn d1_plus_d2(to_landmark: &Traceroute, to_target: &Traceroute) -> Option<f64> {
    let (i_lm, wp) = to_landmark.last_common_hop(to_target)?;
    let rtt_l = to_landmark.dst_rtt?;
    let rtt_t = to_target.dst_rtt?;
    let r1_lm = to_landmark.hops[i_lm].rtt?;
    let r1_t = to_target
        .hops
        .iter()
        .find(|h| h.waypoint == wp)
        .and_then(|h| h.rtt)?;
    let d1 = (rtt_l - r1_lm).value() / 2.0;
    let d2 = (rtt_t - r1_t).value() / 2.0;
    Some(d1 + d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use web_sim::ecosystem::WebConfig;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, WebEcosystem) {
        let mut w = World::generate(WorldConfig::small(Seed(211))).unwrap();
        let eco = WebEcosystem::generate(&mut w, &WebConfig::default()).unwrap();
        let net = Network::new(Seed(211));
        (w, net, eco)
    }

    fn clean_anchor_vps(w: &World, exclude: HostId) -> Vec<HostId> {
        w.anchors
            .iter()
            .copied()
            .filter(|&a| a != exclude && !w.host(a).is_mis_geolocated())
            .collect()
    }

    #[test]
    fn pipeline_produces_estimate_and_costs() {
        let (w, net, eco) = setup();
        let target = w.anchors[0];
        let vps = clean_anchor_vps(&w, target);
        let out = geolocate(&w, &net, &eco, &vps, target, &StreetConfig::default(), 1);
        assert!(out.tier1.is_some());
        let est = out.estimate.expect("estimate");
        let err = est.distance(&w.host(target).location).value();
        assert!(err < 3000.0, "error {err} km");
        assert!(out.mapping_queries > 0, "no mapping queries issued");
        assert!(out.virtual_secs > 100.0, "virtual time unaccounted");
        assert!(out.vps_used.len() <= 10);
    }

    #[test]
    fn outcome_is_deterministic() {
        let (w, net, eco) = setup();
        let target = w.anchors[1];
        let vps = clean_anchor_vps(&w, target);
        let a = geolocate(&w, &net, &eco, &vps, target, &StreetConfig::default(), 5);
        let b = geolocate(&w, &net, &eco, &vps, target, &StreetConfig::default(), 5);
        assert_eq!(
            a.estimate.map(|p| (p.lat(), p.lon())),
            b.estimate.map(|p| (p.lat(), p.lon()))
        );
        assert_eq!(a.landmarks.len(), b.landmarks.len());
        assert_eq!(a.mapping_queries, b.mapping_queries);
    }

    #[test]
    fn some_landmarks_have_negative_delays() {
        // The Fig. 6a phenomenon: asymmetric reverse paths make D1 + D2
        // negative for a meaningful share of landmarks.
        let (w, net, eco) = setup();
        let mut negative = 0usize;
        let mut measured = 0usize;
        for &target in w.anchors.iter().take(8) {
            let vps = clean_anchor_vps(&w, target);
            let out = geolocate(&w, &net, &eco, &vps, target, &StreetConfig::default(), 77);
            for lm in &out.landmarks {
                if let Some(d) = lm.delay_ms {
                    measured += 1;
                    if d < 0.0 {
                        negative += 1;
                    }
                }
            }
        }
        // Miniature worlds may find few landmarks; only assert when there
        // is signal.
        if measured >= 20 {
            assert!(
                negative > 0,
                "no negative D1+D2 among {measured} landmarks — asymmetry model broken?"
            );
        }
    }

    #[test]
    fn resilient_street_survives_hostile_faults() {
        use atlas_sim::faults::{FaultPlan, FaultProfile};
        let (w, net, eco) = setup();
        let target = w.anchors[3];
        let vps = clean_anchor_vps(&w, target);
        let run = || {
            let plan = FaultPlan::new(Seed(31), FaultProfile::Hostile);
            let res = Resilience::with_plan(&plan);
            let mut log = TargetLog::default();
            let out = geolocate_resilient(
                &w,
                &net,
                &eco,
                &res,
                &vps,
                target,
                &StreetConfig::default(),
                6,
                &mut log,
            );
            (
                out.estimate.map(|p| (p.lat(), p.lon())),
                out.landmarks.len(),
                out.traceroutes,
                format!("{log:?}"),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "hostile street-level not deterministic");
    }

    #[test]
    fn d1d2_requires_common_responsive_hop() {
        let (w, net, _) = setup();
        let vp = w.anchors[2];
        let t1 = net.traceroute(&w, vp, w.host(w.anchors[3]).ip, 1);
        let t2 = net.traceroute(&w, vp, w.host(w.anchors[4]).ip, 1);
        // Either a value or None — must not panic.
        let _ = d1_plus_d2(&t1, &t2);
        // Traceroute with no hops yields None.
        let empty = Traceroute {
            src: vp,
            dst: w.host(w.anchors[3]).ip,
            hops: Vec::new(),
            dst_rtt: None,
        };
        assert!(d1_plus_d2(&empty, &t2).is_none());
    }
}
