//! Geolocation-metadata sanitization (§4.3).
//!
//! Platform metadata sometimes lies: a relocated anchor or probe keeps its
//! old coordinates. The sanitizer catches physically impossible
//! combinations: if the measured RTT between two hosts is smaller than the
//! speed-of-Internet minimum for their *claimed* distance, at least one
//! claim is wrong.
//!
//! - Anchors are checked against the meshed anchor-to-anchor RTTs,
//!   iteratively removing the anchor with the most violations until no
//!   violation remains (the paper removed 9).
//! - Probes are then checked against the surviving (trusted) anchors and
//!   removed on any violation (the paper removed 96).

use geo_model::matrix::DelayMatrix;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Ms;
use world_sim::ids::HostId;
use world_sim::World;

/// Outcome of a sanitization pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeReport {
    /// Hosts that survived, in input order.
    pub kept: Vec<HostId>,
    /// Hosts removed, in removal order.
    pub removed: Vec<HostId>,
    /// Iterations the greedy removal ran (anchors only; probes are a
    /// single pass).
    pub iterations: usize,
}

/// Sanitizes anchors using meshed RTTs: cell `(i, j)` of `mesh` is the
/// min-RTT from `anchors[i]` to `anchors[j]` (NaN on the diagonal or
/// timeout, as produced by `atlas_sim::Platform::anchor_mesh`). Distances
/// use the anchors' *registered* locations — that is all the platform
/// metadata offers. The mesh stays in the `f64` staging format
/// ([`DelayMatrix`]) so the physics comparison sees the exact measured
/// bits.
pub fn sanitize_anchors(
    world: &World,
    anchors: &[HostId],
    mesh: &DelayMatrix,
    soi: SpeedOfInternet,
) -> SanitizeReport {
    assert!(
        mesh.rows() == anchors.len() && mesh.cols() == anchors.len(),
        "mesh must be square over anchors"
    );
    let n = anchors.len();
    let mut alive: Vec<bool> = vec![true; n];
    let mut removed = Vec::new();
    let mut iterations = 0;

    // Precompute violation edges (symmetric union of both directions).
    let violates = |i: usize, j: usize| -> bool {
        let a = world.host(anchors[i]).registered_location;
        let b = world.host(anchors[j]).registered_location;
        let dist = a.distance(&b);
        let v_ij = mesh.get(i, j).is_some_and(|rtt| soi.violates(dist, rtt));
        let v_ji = mesh.get(j, i).is_some_and(|rtt| soi.violates(dist, rtt));
        v_ij || v_ji
    };
    let mut edges: Vec<Vec<bool>> = vec![vec![false; n]; n];
    #[allow(clippy::needless_range_loop)] // symmetric double-index fill
    for i in 0..n {
        for j in (i + 1)..n {
            if violates(i, j) {
                edges[i][j] = true;
                edges[j][i] = true;
            }
        }
    }
    let mut counts: Vec<usize> = (0..n)
        .map(|i| (0..n).filter(|&j| edges[i][j]).count())
        .collect();

    loop {
        iterations += 1;
        let worst = (0..n)
            .filter(|&i| alive[i] && counts[i] > 0)
            .max_by_key(|&i| counts[i]);
        let Some(worst) = worst else { break };
        alive[worst] = false;
        removed.push(anchors[worst]);
        for j in 0..n {
            if edges[worst][j] && alive[j] {
                counts[j] -= 1;
            }
        }
        counts[worst] = 0;
    }

    SanitizeReport {
        kept: anchors
            .iter()
            .zip(&alive)
            .filter(|(_, &a)| a)
            .map(|(&id, _)| id)
            .collect(),
        removed,
        iterations: iterations - 1,
    }
}

/// Sanitizes probes against trusted anchors: cell `(p, a)` of `rtts` is
/// the min-RTT from `probes[p]` to `trusted_anchors[a]` (NaN = timeout).
/// A probe is removed on any violation.
pub fn sanitize_probes(
    world: &World,
    probes: &[HostId],
    trusted_anchors: &[HostId],
    rtts: &DelayMatrix,
    soi: SpeedOfInternet,
) -> SanitizeReport {
    assert_eq!(rtts.rows(), probes.len(), "one RTT row per probe");
    assert_eq!(
        rtts.cols(),
        trusted_anchors.len(),
        "one RTT column per trusted anchor"
    );
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (p, &probe) in probes.iter().enumerate() {
        let ploc = world.host(probe).registered_location;
        let row = rtts.row(p);
        let violation = trusted_anchors.iter().enumerate().any(|(a, &anchor)| {
            let aloc = world.host(anchor).registered_location;
            !row[a].is_nan() && soi.violates(ploc.distance(&aloc), Ms(row[a]))
        });
        if violation {
            removed.push(probe);
        } else {
            kept.push(probe);
        }
    }
    SanitizeReport {
        kept,
        removed,
        iterations: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_sim::{CreditAccount, Platform};
    use geo_model::rng::Seed;
    use net_sim::Network;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network) {
        let w = World::generate(WorldConfig::small(Seed(171))).unwrap();
        let net = Network::new(Seed(171));
        (w, net)
    }

    #[test]
    fn catches_the_mis_geolocated_anchor() {
        let (w, net) = setup();
        let mut platform = Platform::new(CreditAccount::upgraded());
        let mesh = platform.anchor_mesh(&w, &net, &w.anchors).unwrap();
        let report = sanitize_anchors(&w, &w.anchors, &mesh, SpeedOfInternet::CBG);

        let truly_bad: Vec<HostId> = w
            .anchors
            .iter()
            .copied()
            .filter(|&id| w.host(id).is_mis_geolocated())
            .collect();
        assert_eq!(truly_bad.len(), 1);
        assert!(
            report.removed.contains(&truly_bad[0]),
            "sanitizer missed the planted bad anchor"
        );
        // Collateral damage must be small.
        assert!(report.removed.len() <= 3, "removed {:?}", report.removed);
        assert_eq!(report.kept.len() + report.removed.len(), w.anchors.len());
    }

    #[test]
    fn no_violations_removes_nothing() {
        let (w, _) = setup();
        // An all-NaN (unmeasured) mesh has no violations by construction.
        let n = w.anchors.len();
        let mesh = DelayMatrix::new(n, n);
        let report = sanitize_anchors(&w, &w.anchors, &mesh, SpeedOfInternet::CBG);
        assert!(report.removed.is_empty());
        assert_eq!(report.kept, w.anchors);
    }

    #[test]
    fn probe_sanitization_catches_planted_probes() {
        let (w, net) = setup();
        let mut platform = Platform::new(CreditAccount::upgraded());
        let mesh = platform.anchor_mesh(&w, &net, &w.anchors).unwrap();
        let anchors_report = sanitize_anchors(&w, &w.anchors, &mesh, SpeedOfInternet::CBG);

        // Probe -> trusted-anchor pings.
        let trusted = &anchors_report.kept;
        let rtts = DelayMatrix::par_build(w.probes.len(), trusted.len(), |p, row| {
            for (a, slot) in trusted.iter().zip(row.iter_mut()) {
                *slot = DelayMatrix::cell(net.ping_min(&w, w.probes[p], w.host(*a).ip, 3, 7).rtt());
            }
        });
        let report = sanitize_probes(&w, &w.probes, trusted, &rtts, SpeedOfInternet::CBG);

        let truly_bad: Vec<HostId> = w
            .probes
            .iter()
            .copied()
            .filter(|&id| w.host(id).is_mis_geolocated())
            .collect();
        assert_eq!(truly_bad.len(), 4);
        // SOI violations only expose hosts whose *claimed* location is
        // closer to some anchor than physics allows; a displacement that
        // moves a probe further from every anchor is undetectable (the
        // paper's sanitizer shares this blind spot). Require that most of
        // the planted probes are caught.
        let caught = truly_bad
            .iter()
            .filter(|bad| report.removed.contains(bad))
            .count();
        assert!(
            caught >= truly_bad.len() / 2,
            "sanitizer caught only {caught}/{} planted probes",
            truly_bad.len()
        );
        // Honest probes must survive overwhelmingly.
        assert!(
            report.removed.len() <= truly_bad.len() + 5,
            "too much collateral damage: {}",
            report.removed.len()
        );
    }

    #[test]
    #[should_panic(expected = "square")]
    fn mesh_shape_is_checked() {
        let (w, _) = setup();
        let _ = sanitize_anchors(
            &w,
            &w.anchors,
            &DelayMatrix::new(0, 0),
            SpeedOfInternet::CBG,
        );
    }
}
