//! Multi-round VP selection — the paper's §7.2.3 extension.
//!
//! "Round based geolocation is one key to scale": the two-step selection
//! generalizes to `R` rounds, each using the previous round's CBG region
//! to pick a smaller, better-placed probe set. More rounds cut the
//! measurement bill further at the cost of one platform API round trip
//! (minutes of latency) per extra round — the exact trade-off §7.2.3
//! describes.
//!
//! Round 1 probes the representatives from the fixed coverage subset.
//! Each later round keeps one VP per (AS, city) inside the current region,
//! *halving* the kept candidate count by RTT rank each round, re-probes
//! the representatives, and tightens the region. The final round's best
//! VP geolocates the target.

use crate::cbg::{cbg_with, CbgResult, VpMeasurement};
use crate::million::probe_representatives;
use geo_model::constraint::{Region, RegionScratch};
use geo_model::ip::Ipv4;
use geo_model::soi::SpeedOfInternet;
use net_sim::Network;
use std::collections::HashMap;
use world_sim::ids::HostId;
use world_sim::World;

/// Outcome of a multi-round selection.
#[derive(Debug, Clone)]
pub struct MultiRoundOutcome {
    /// Candidate-set size after each round (round 1 = coverage size).
    pub candidates_per_round: Vec<usize>,
    /// The VP that finally geolocated the target.
    pub chosen_vp: Option<HostId>,
    /// Final CBG result.
    pub cbg: Option<CbgResult>,
    /// Ping measurements spent across all rounds.
    pub measurements: u64,
    /// Platform API round trips consumed (one per round plus the final
    /// target probe) — the latency currency of §7.2.3.
    pub api_rounds: u32,
}

/// Runs `rounds >= 2` rounds of region-guided VP selection.
///
/// With `rounds == 2` this is exactly the two-step algorithm (§5.1.4).
pub fn geolocate(
    world: &World,
    net: &Network,
    coverage: &[HostId],
    all_vps: &[HostId],
    target: Ipv4,
    rounds: u32,
    nonce: u64,
) -> MultiRoundOutcome {
    assert!(rounds >= 2, "multi-round needs at least two rounds");
    let mut measurements = 0u64;
    let mut api_rounds = 0u32;
    // One set of intersection buffers serves every CBG run for this
    // target (round 1, per-round tightening, final estimate).
    let mut scratch = RegionScratch::new();
    let mut candidates_per_round = Vec::with_capacity(rounds as usize);

    // Round 1: the coverage subset bounds the region.
    let probe1 = probe_representatives(world, net, coverage, target, nonce);
    measurements += probe1.measurements;
    api_rounds += 1;
    candidates_per_round.push(coverage.len());
    let ms1: Vec<VpMeasurement> = probe1
        .scores
        .iter()
        .filter_map(|s| {
            s.median_rtt.map(|rtt| VpMeasurement {
                vp: s.vp,
                location: world.host(s.vp).registered_location,
                rtt,
            })
        })
        .collect();
    let Some(mut current) = cbg_with(&ms1, SpeedOfInternet::CBG, &mut scratch) else {
        return MultiRoundOutcome {
            candidates_per_round,
            chosen_vp: None,
            cbg: None,
            measurements,
            api_rounds,
        };
    };

    let mut chosen: Option<HostId> = None;
    let mut keep_cap = usize::MAX;
    for round in 1..rounds {
        // Candidates: one VP per (AS, city) inside the current region,
        // capped at half the previous round's candidate count.
        let active = Region::from_circles(current.region.active_circles());
        let mut per_pop: HashMap<(u32, u32), HostId> = HashMap::new();
        for &vp in all_vps {
            let h = world.host(vp);
            if active.contains(&h.registered_location) {
                per_pop.entry((h.asn.0, h.city.0)).or_insert(vp);
            }
        }
        let mut candidates: Vec<HostId> = per_pop.into_values().collect();
        candidates.sort();
        if candidates.is_empty() {
            break;
        }

        let probe = probe_representatives(
            world,
            net,
            &candidates,
            target,
            nonce ^ (round as u64) << 40,
        );
        measurements += probe.measurements;
        api_rounds += 1;

        // Rank, keep the best half for the next region (bounded below so
        // the loop always converges to a single choice).
        keep_cap = (keep_cap / 2).max(1).min(candidates.len());
        let ranked: Vec<&crate::million::VpScore> = probe
            .scores
            .iter()
            .filter(|s| s.median_rtt.is_some())
            .collect();
        candidates_per_round.push(candidates.len());
        let Some(best) = ranked.first() else { break };
        chosen = Some(best.vp);

        // Tighten the region with the kept candidates' measurements.
        let kept_ms: Vec<VpMeasurement> = ranked
            .iter()
            .take(keep_cap)
            .map(|s| VpMeasurement {
                vp: s.vp,
                location: world.host(s.vp).registered_location,
                rtt: s.median_rtt.expect("filtered"),
            })
            .collect();
        if let Some(next) = cbg_with(&kept_ms, SpeedOfInternet::CBG, &mut scratch) {
            current = next;
        }
    }

    // Final probe: the chosen VP pings the target itself.
    let final_cbg = chosen.and_then(|vp| {
        measurements += 1;
        api_rounds += 1;
        net.ping_min(world, vp, target, 3, nonce ^ 0xF1FA)
            .rtt()
            .and_then(|rtt| {
                cbg_with(
                    &[VpMeasurement {
                        vp,
                        location: world.host(vp).registered_location,
                        rtt,
                    }],
                    SpeedOfInternet::CBG,
                    &mut scratch,
                )
            })
    });

    MultiRoundOutcome {
        candidates_per_round,
        chosen_vp: chosen,
        cbg: final_cbg,
        measurements,
        api_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_step::greedy_coverage;
    use geo_model::rng::Seed;
    use geo_model::stats;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Vec<HostId>) {
        let w = World::generate(WorldConfig::small(Seed(341))).unwrap();
        let net = Network::new(Seed(341));
        let clean: Vec<HostId> = w
            .probes
            .iter()
            .copied()
            .filter(|&p| !w.host(p).is_mis_geolocated())
            .collect();
        (w, net, clean)
    }

    #[test]
    #[should_panic(expected = "two rounds")]
    fn rejects_single_round() {
        let (w, net, vps) = setup();
        let _ = geolocate(&w, &net, &vps[..5], &vps, w.host(w.anchors[0]).ip, 1, 0);
    }

    #[test]
    fn two_rounds_matches_two_step_shape() {
        let (w, net, vps) = setup();
        let coverage = greedy_coverage(&w, &vps, 20);
        let target = w.host(w.anchors[0]);
        let out = geolocate(&w, &net, &coverage, &vps, target.ip, 2, 1);
        assert_eq!(out.candidates_per_round.len(), 2);
        assert!(out.cbg.is_some());
        assert!(out.api_rounds >= 3); // 2 rounds + final probe
    }

    #[test]
    fn more_rounds_do_not_destroy_accuracy() {
        let (w, net, vps) = setup();
        let coverage = greedy_coverage(&w, &vps, 20);
        let mut errs2 = Vec::new();
        let mut errs4 = Vec::new();
        for (i, &aid) in w.anchors.iter().enumerate().take(12) {
            let target = w.host(aid);
            for (rounds, errs) in [(2u32, &mut errs2), (4u32, &mut errs4)] {
                let out = geolocate(&w, &net, &coverage, &vps, target.ip, rounds, i as u64);
                if let Some(r) = &out.cbg {
                    errs.push(r.estimate.distance(&target.location).value());
                }
            }
        }
        let m2 = stats::median(&errs2).unwrap();
        let m4 = stats::median(&errs4).unwrap();
        assert!(
            m4 < m2 * 6.0 + 60.0,
            "4 rounds ({m4} km) far worse than 2 ({m2} km)"
        );
    }

    #[test]
    fn rounds_trade_measurements_for_latency() {
        let (w, net, vps) = setup();
        let coverage = greedy_coverage(&w, &vps, 20);
        let target = w.host(w.anchors[1]);
        let o2 = geolocate(&w, &net, &coverage, &vps, target.ip, 2, 3);
        let o4 = geolocate(&w, &net, &coverage, &vps, target.ip, 4, 3);
        assert!(
            o4.api_rounds > o2.api_rounds,
            "extra rounds must cost latency"
        );
    }
}
