//! The paper's motivating deliverable: an *accurate, complete,
//! explainable* geolocation dataset.
//!
//! §2 argues that no public dataset satisfies all three criteria, and §6
//! closes with the recipe the community could use — combine latency
//! measurements with public hints. This module assembles exactly that:
//! for every requested prefix it records the **estimate, the technique
//! that produced it, and the evidence** (which VP, which hint), so each
//! entry can be audited — the explainability the commercial databases
//! lack.

use crate::cbg::{cbg, VpMeasurement};
use crate::resilient::{self, CampaignReport, Resilience, TargetLog};
use geo_model::ip::Prefix24;
use geo_model::point::GeoPoint;
use geo_model::soi::SpeedOfInternet;
use geo_model::units::Ms;
use net_sim::Network;
use std::fmt;
use world_sim::ids::HostId;
use world_sim::World;

/// How an entry's location was derived — the explainability record.
#[derive(Debug, Clone, PartialEq)]
pub enum Evidence {
    /// Self-published RFC 9092 geofeed entry.
    Geofeed,
    /// Reverse-DNS hostname hint on a host inside the prefix.
    DnsHint {
        /// The hostname carrying the hint.
        hostname: String,
    },
    /// Latency-based: CBG over the given number of vantage points, with
    /// the tightest constraint listed.
    Latency {
        /// Vantage points that answered.
        vps: usize,
        /// The lowest RTT observed.
        best_rtt: Ms,
        /// The VP behind the tightest constraint.
        best_vp: HostId,
    },
    /// WHOIS registration city — the weakest fallback.
    Whois,
    /// Multi-source fusion (`geo-hints`): CBG constraints combined with a
    /// latency-verified rDNS hint and a commercial-DB prior, scored into
    /// one confidence.
    Fused {
        /// Combined confidence in `[0, 1]` (noisy-or over the sources).
        confidence: f64,
        /// Bitmask of the sources that agreed (see [`fused_sources`]).
        sources: u8,
        /// Vantage points behind the CBG constraint region.
        vps: usize,
        /// The lowest RTT observed.
        best_rtt: Ms,
        /// The VP behind the tightest constraint.
        best_vp: HostId,
        /// The rDNS hostname whose hint survived verification, if any.
        hostname: Option<String>,
    },
}

/// Source bits of [`Evidence::Fused`].
pub mod fused_sources {
    /// The CBG constraint region contributed.
    pub const CBG: u8 = 1;
    /// A latency-verified rDNS hint contributed.
    pub const HINT: u8 = 2;
    /// The commercial-DB prior agreed with the chosen location.
    pub const DB_PRIOR: u8 = 4;
    /// A street-level tier estimate agreed.
    pub const STREET: u8 = 8;

    /// Human/CSV label for a mask, e.g. `cbg+hint+db`.
    pub fn label(mask: u8) -> String {
        let mut parts = Vec::new();
        for (bit, name) in [
            (CBG, "cbg"),
            (HINT, "hint"),
            (DB_PRIOR, "db"),
            (STREET, "street"),
        ] {
            if mask & bit != 0 {
                parts.push(name);
            }
        }
        if parts.is_empty() {
            "none".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl Evidence {
    /// Machine-readable method label.
    pub fn method(&self) -> &'static str {
        match self {
            Evidence::Geofeed => "geofeed",
            Evidence::DnsHint { .. } => "dns-hint",
            Evidence::Latency { .. } => "latency-cbg",
            Evidence::Whois => "whois",
            Evidence::Fused { .. } => "fused",
        }
    }

    /// Confidence in `[0, 1]` that the entry's location is city-accurate.
    /// Legacy methods carry the fixed priors of their evidence class
    /// (geofeeds and DNS hints mirror `world-sim`'s accuracy constants);
    /// fused entries carry the score the fusion estimator computed.
    pub fn confidence(&self) -> f64 {
        match self {
            Evidence::Geofeed => 0.95,
            Evidence::DnsHint { .. } => 0.90,
            Evidence::Latency { .. } => 0.70,
            Evidence::Whois => 0.30,
            Evidence::Fused { confidence, .. } => *confidence,
        }
    }

    /// The evidence trail behind the method, as a single CSV-safe field:
    /// `key=value` pairs joined by `;` (never a comma), `-` when the
    /// method carries no measurement detail (geofeed, WHOIS).
    pub fn detail(&self) -> String {
        match self {
            Evidence::Geofeed | Evidence::Whois => "-".to_string(),
            Evidence::DnsHint { hostname } => format!("hostname={hostname}"),
            Evidence::Latency {
                vps,
                best_rtt,
                best_vp,
            } => format!(
                "vps={vps};best_rtt_ms={:.3};best_vp={best_vp}",
                best_rtt.value()
            ),
            Evidence::Fused {
                sources,
                vps,
                best_rtt,
                best_vp,
                hostname,
                ..
            } => {
                let mut s = format!(
                    "sources={};vps={vps};best_rtt_ms={:.3};best_vp={best_vp}",
                    fused_sources::label(*sources),
                    best_rtt.value()
                );
                if let Some(name) = hostname {
                    s.push_str(";hostname=");
                    s.push_str(name);
                }
                s
            }
        }
    }
}

/// One dataset entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// The prefix this entry covers.
    pub prefix: Prefix24,
    /// Estimated location.
    pub location: GeoPoint,
    /// The evidence trail.
    pub evidence: Evidence,
}

impl fmt::Display for DatasetEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},{:.4},{:.4},{},{:.2},{}",
            self.prefix,
            self.location.lat(),
            self.location.lon(),
            self.evidence.method(),
            self.evidence.confidence(),
            self.evidence.detail()
        )
    }
}

/// Builds the public dataset for the given prefixes, preferring the most
/// reliable evidence: geofeed → DNS hint → latency (CBG over the supplied
/// vantage points) → WHOIS.
///
/// Each prefix is resolved independently — a pure function of
/// `(world, net, vps, prefix, nonce)` — so the campaign fans out over
/// [`geo_model::runtime::par_map_indexed`] and the result is bit-identical
/// at any `IPGEO_THREADS` setting.
pub fn build_dataset(
    world: &World,
    net: &Network,
    vps: &[HostId],
    prefixes: &[Prefix24],
    nonce: u64,
) -> Vec<DatasetEntry> {
    build_dataset_resilient(world, net, &Resilience::none(), vps, prefixes, nonce).0
}

/// [`build_dataset`] with latency campaigns routed through the resilient
/// executor, returning the per-campaign accounting alongside the entries.
/// Fault-free, the entries are byte-identical to [`build_dataset`]'s.
pub fn build_dataset_resilient(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    prefixes: &[Prefix24],
    nonce: u64,
) -> (Vec<DatasetEntry>, CampaignReport) {
    let per: Vec<(Option<DatasetEntry>, TargetLog)> =
        geo_model::runtime::par_map_indexed(prefixes.len(), |i| {
            let mut log = TargetLog::default();
            let entry = locate_prefix(world, net, res, vps, prefixes[i], nonce, &mut log);
            (entry, log)
        });
    let mut report = CampaignReport::default();
    let entries = per
        .into_iter()
        .filter_map(|(entry, log)| {
            report.absorb(&log);
            entry
        })
        .collect();
    (entries, report)
}

/// Resolves one prefix through the evidence ladder. `None` only for
/// prefixes with no registered owner (never allocated in this world).
fn locate_prefix(
    world: &World,
    net: &Network,
    res: &Resilience,
    vps: &[HostId],
    prefix: Prefix24,
    nonce: u64,
    log: &mut TargetLog,
) -> Option<DatasetEntry> {
    let (asn, _city) = world.plan.owner(prefix)?;

    // 1. Geofeed.
    if let Some(city) = world.metadata.geofeed_city(prefix) {
        return Some(DatasetEntry {
            prefix,
            location: world.city(city).center,
            evidence: Evidence::Geofeed,
        });
    }

    // 2. DNS hint on any host of the prefix.
    let hint = prefix.addresses().find_map(|ip| {
        let host = world.host_by_ip(ip)?;
        let city = world.metadata.dns_hint(host.id)?;
        let name = world.metadata.dns.get(&host.id)?.name.clone();
        Some((city, name))
    });
    if let Some((city, hostname)) = hint {
        return Some(DatasetEntry {
            prefix,
            location: world.city(city).center,
            evidence: Evidence::DnsHint { hostname },
        });
    }

    // 3. Latency: CBG toward a responsive address of the prefix.
    if let Some(ip) = prefix
        .addresses()
        .find(|&ip| world.host_by_ip(ip).is_some())
    {
        let batch =
            resilient::ping_batch(world, net, res, vps, ip, 3, nonce ^ prefix.0 as u64, log);
        let ms: Vec<VpMeasurement> = batch
            .iter()
            .filter_map(|(vp, outcome)| {
                outcome.rtt().map(|rtt| VpMeasurement {
                    vp: *vp,
                    location: world.host(*vp).registered_location,
                    rtt,
                })
            })
            .collect();
        if let Some(result) = cbg(&ms, SpeedOfInternet::CBG) {
            let best = ms
                .iter()
                .min_by(|a, b| a.rtt.total_cmp(&b.rtt))
                .expect("cbg implies measurements");
            return Some(DatasetEntry {
                prefix,
                location: result.estimate,
                evidence: Evidence::Latency {
                    vps: ms.len(),
                    best_rtt: best.rtt,
                    best_vp: best.vp,
                },
            });
        }
    }

    // 4. WHOIS fallback.
    Some(DatasetEntry {
        prefix,
        location: world.city(world.asn(asn).whois_city).center,
        evidence: Evidence::Whois,
    })
}

/// Renders the dataset as CSV with a header — the publishable artifact.
/// The `evidence` column carries the full audit trail ([`Evidence::detail`]).
pub fn to_csv(entries: &[DatasetEntry]) -> String {
    let mut out = String::from("prefix,lat,lon,method,confidence,evidence\n");
    for e in entries {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geo_model::rng::Seed;
    use geo_model::stats;
    use world_sim::WorldConfig;

    fn setup() -> (World, Network, Vec<HostId>, Vec<Prefix24>) {
        let w = World::generate(WorldConfig::small(Seed(351))).unwrap();
        let net = Network::new(Seed(351));
        let vps: Vec<HostId> = w
            .probes
            .iter()
            .copied()
            .filter(|&p| !w.host(p).is_mis_geolocated())
            .collect();
        let prefixes: Vec<Prefix24> = w.anchors.iter().map(|&a| w.host(a).ip.prefix24()).collect();
        (w, net, vps, prefixes)
    }

    #[test]
    fn covers_every_prefix_with_evidence() {
        let (w, net, vps, prefixes) = setup();
        let ds = build_dataset(&w, &net, &vps, &prefixes, 1);
        assert_eq!(ds.len(), prefixes.len());
        // All four evidence classes are reachable at this scale except
        // possibly WHOIS; at minimum two classes must appear.
        let mut methods: Vec<&str> = ds.iter().map(|e| e.evidence.method()).collect();
        methods.sort();
        methods.dedup();
        assert!(methods.len() >= 2, "evidence too uniform: {methods:?}");
    }

    #[test]
    fn dataset_is_reasonably_accurate() {
        let (w, net, vps, prefixes) = setup();
        let ds = build_dataset(&w, &net, &vps, &prefixes, 1);
        let errors: Vec<f64> = ds
            .iter()
            .map(|e| {
                let anchor = w
                    .anchors
                    .iter()
                    .map(|&a| w.host(a))
                    .find(|h| h.ip.prefix24() == e.prefix)
                    .expect("prefix belongs to an anchor");
                e.location.distance(&anchor.location).value()
            })
            .collect();
        let city_level = stats::fraction_at_most(&errors, 40.0);
        assert!(city_level > 0.5, "only {city_level} at city level");
    }

    #[test]
    fn resilient_dataset_matches_plain_when_fault_free() {
        let (w, net, vps, prefixes) = setup();
        let plain = build_dataset(&w, &net, &vps, &prefixes, 1);
        let (entries, report) =
            build_dataset_resilient(&w, &net, &Resilience::none(), &vps, &prefixes, 1);
        assert_eq!(plain, entries);
        assert_eq!(report.targets, prefixes.len() as u64);
        assert_eq!(report.retries, 0);
        assert_eq!(report.faults.total(), 0);
        assert_eq!(report.credits.charged, report.credits.baseline);
    }

    #[test]
    fn resilient_dataset_survives_hostile_faults() {
        use atlas_sim::faults::{FaultPlan, FaultProfile};
        let (w, net, vps, _) = setup();
        // Probe prefixes rarely carry geofeed/DNS evidence, so the ladder
        // reaches the latency step and its fault-exposed ping batches.
        let mut prefixes: Vec<Prefix24> = w
            .probes
            .iter()
            .take(40)
            .map(|&p| w.host(p).ip.prefix24())
            .collect();
        prefixes.sort();
        prefixes.dedup();
        let plan = FaultPlan::new(Seed(63), FaultProfile::Hostile);
        let res = Resilience::with_plan(&plan);
        let (entries, report) = build_dataset_resilient(&w, &net, &res, &vps, &prefixes, 1);
        // Every owned prefix still gets an entry: the evidence ladder
        // degrades (latency → WHOIS) rather than dropping coverage.
        assert_eq!(entries.len(), prefixes.len());
        assert!(report.attempts > 0, "latency step never reached");
        assert!(report.faults.total() > 0, "hostile plan never fired");
        assert!(report.credits.charged >= report.credits.baseline);
    }

    #[test]
    fn csv_is_well_formed() {
        let (w, net, vps, prefixes) = setup();
        let ds = build_dataset(&w, &net, &vps, &prefixes[..5], 1);
        let csv = to_csv(&ds);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "prefix,lat,lon,method,confidence,evidence");
        assert_eq!(lines.len(), 6);
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 6, "bad row: {line}");
            let confidence: f64 = line.split(',').nth(4).unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&confidence), "bad confidence: {line}");
        }
    }

    #[test]
    fn csv_carries_the_evidence_trail() {
        let (w, net, vps, prefixes) = setup();
        let ds = build_dataset(&w, &net, &vps, &prefixes, 1);
        for e in &ds {
            let detail = e.evidence.detail();
            assert!(!detail.contains(','), "evidence breaks CSV: {detail}");
            match &e.evidence {
                Evidence::DnsHint { hostname } => {
                    assert_eq!(detail, format!("hostname={hostname}"));
                }
                Evidence::Latency { vps, best_vp, .. } => {
                    assert!(detail.starts_with(&format!("vps={vps};best_rtt_ms=")));
                    assert!(detail.ends_with(&format!("best_vp={best_vp}")));
                }
                Evidence::Geofeed | Evidence::Whois => assert_eq!(detail, "-"),
                Evidence::Fused { sources, .. } => {
                    assert!(
                        detail.starts_with(&format!("sources={}", fused_sources::label(*sources)))
                    );
                }
            }
            let row = e.to_string();
            assert!(row.ends_with(&detail), "row drops evidence: {row}");
        }
    }

    #[test]
    fn latency_evidence_names_its_vp() {
        let (w, net, vps, prefixes) = setup();
        let ds = build_dataset(&w, &net, &vps, &prefixes, 1);
        for e in &ds {
            if let Evidence::Latency {
                vps: n,
                best_rtt,
                best_vp,
            } = &e.evidence
            {
                assert!(*n > 0);
                assert!(best_rtt.value() > 0.0);
                assert!(vps.contains(best_vp));
            }
        }
    }
}
